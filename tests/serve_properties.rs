//! Property tests for the resumable session machinery.
//!
//! The serving API's idempotency contract: no schedule of duplicated,
//! reordered, or re-sent answer submissions may change what the session
//! consumes — the final report must be the one the clean in-order
//! sequence produces, every duplicate must be acknowledged (never
//! re-applied), and every out-of-order submission must bounce without
//! touching the journal. Plus the two degradation guarantees: deadline
//! expiry at *any* point yields a PARTIAL REPORT (never a panic or a
//! wedge), and a session whose journal device fails mid-run degrades the
//! same way while counting `journal.write_errors`.

use std::io::Write;

use proptest::prelude::*;
use qoco::core::{
    clean_view, figure1_ground, figure1_spec, CleaningConfig, SessionMachine, SessionState,
    SubmitError, SubmitOutcome,
};
use qoco::crowd::{Journal, JournalRecord, Oracle, PerfectOracle, SingleExpert};
use qoco::engine::answer_set;

/// The canonical Figure 1 run: final report text + the journal that
/// produced it.
fn canonical_run() -> (String, Vec<JournalRecord>) {
    let mut m = SessionMachine::new(figure1_spec());
    let mut oracle = PerfectOracle::new(figure1_ground());
    for _ in 0..100 {
        let Some(p) = m.pending().cloned() else { break };
        let answer = oracle.answer(&p.question).expect("perfect oracle");
        m.submit(p.seq, Ok(answer)).expect("in-order submission");
    }
    let SessionState::Finished(f) = m.state() else {
        panic!("figure 1 converges under a perfect oracle");
    };
    (f.report.to_string(), m.log().to_vec())
}

proptest! {
    /// Any prefix of duplicated/reordered submissions, followed by the
    /// clean sequence, converges to the canonical report; duplicates are
    /// acknowledged and out-of-order attempts bounce, neither growing
    /// the journal.
    #[test]
    fn noisy_submission_schedules_converge_to_the_canonical_report(
        noise in proptest::collection::vec(0usize..6, 0..24)
    ) {
        let (canonical_report, log) = canonical_run();
        let mut m = SessionMachine::new(figure1_spec());
        let mut cursor = 0usize; // answers actually consumed so far
        // interleave: before each in-order submission, replay some noise
        for step in 0..log.len() {
            for &n in noise.iter().skip(step * 3).take(3) {
                let record = &log[n % log.len()];
                let journal_before = m.log().len();
                match m.submit(record.seq, record.outcome.clone()) {
                    Ok(SubmitOutcome::Applied) => {
                        // only legal if this noise item happened to be
                        // exactly the next expected answer
                        prop_assert_eq!(record.seq as usize, cursor + 1);
                        cursor += 1;
                    }
                    Ok(SubmitOutcome::Duplicate) => {
                        prop_assert!(record.seq as usize <= cursor);
                        prop_assert_eq!(m.log().len(), journal_before);
                    }
                    Err(SubmitError::OutOfOrder { expected }) => {
                        prop_assert!(record.seq as usize > cursor + 1);
                        prop_assert_eq!(expected as usize, cursor + 1);
                        prop_assert_eq!(m.log().len(), journal_before);
                    }
                    Err(e) => prop_assert!(false, "unexpected rejection: {e}"),
                }
            }
            // the clean in-order submission for this step (skip if noise
            // already applied it)
            if cursor == step {
                let record = &log[step];
                prop_assert_eq!(
                    m.submit(record.seq, record.outcome.clone()),
                    Ok(SubmitOutcome::Applied)
                );
                cursor += 1;
            }
        }
        let SessionState::Finished(f) = m.state() else {
            return Err(TestCaseError::fail("session did not finish"));
        };
        prop_assert_eq!(f.report.to_string(), canonical_report);
        // after finishing, every consumed seq re-acks as a duplicate
        for record in &log {
            prop_assert_eq!(
                m.submit(record.seq, record.outcome.clone()),
                Ok(SubmitOutcome::Duplicate)
            );
        }
    }

    /// Deadline expiry at any point of the session — including after
    /// rehydration from that prefix — terminates in a PARTIAL REPORT,
    /// never a panic or a wedged machine.
    #[test]
    fn expiry_at_any_prefix_yields_a_partial_report(k in 0usize..4) {
        let (_, log) = canonical_run();
        let k = k % log.len();
        let mut m = SessionMachine::rehydrate(figure1_spec(), log[..k].to_vec());
        prop_assert!(m.pending().is_some());
        let record = m.expire().expect("expiring an awaiting session records a fault");
        prop_assert_eq!(record.seq as usize, k + 1);
        let SessionState::Finished(f) = m.state() else {
            return Err(TestCaseError::fail("expiry must still finish the session"));
        };
        prop_assert!(f.report.is_partial());
        prop_assert!(!f.report.unresolved.is_empty());
        prop_assert!(f.report.to_string().contains("PARTIAL REPORT"));
        // expiring again is a no-op: the session already ended
        prop_assert!(m.expire().is_none());
    }
}

/// A writer whose device fails permanently after `good` successful writes
/// — the satellite fault-injection double for the session journal.
struct FailingWriter {
    good: usize,
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.good == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "no space left on device (simulated)",
            ));
        }
        self.good -= 1;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Satellite: a cleaning session whose journal device dies mid-run must
/// degrade to a PARTIAL REPORT — the write-ahead invariant fails the
/// answer rather than consuming an unjournaled outcome — and count the
/// failure, not panic.
#[test]
fn journal_device_failure_degrades_the_session_to_a_partial_report() {
    let spec = figure1_spec();
    let journal = Journal::to_writer(Box::new(FailingWriter { good: 1 }));
    let mut crowd = SingleExpert::new(journal.wrap(PerfectOracle::new(figure1_ground())));
    let mut db = spec.dirty.clone();
    let report = clean_view(&spec.query, &mut db, &mut crowd, CleaningConfig::default())
        .expect("degrade, don't error");
    assert!(
        report.is_partial(),
        "lost journal writes leave items unresolved"
    );
    assert!(!report.unresolved.is_empty());
    assert!(journal.write_errors() >= 1, "the failure must be counted");
    assert_eq!(
        journal.records().len() as u64,
        journal.seq(),
        "the in-memory log stays consistent with what the session consumed"
    );
    // the view still never contains an answer the crowd rejected
    let view = answer_set(&spec.query, &db);
    assert!(view.len() <= 1);
}
