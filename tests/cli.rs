//! Integration test for the `qoco-cli` binary: drives a full session —
//! declare schema, save fixture databases, load them, define the Figure 1
//! query, clean, and save the result.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use qoco::data::{load_dir, save_dir, tup, Database, Schema};
use qoco::engine::answer_set;
use qoco::query::parse_query;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qoco-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn schema() -> std::sync::Arc<Schema> {
    Schema::builder()
        .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
        .relation("Teams", &["country", "continent"])
        .build()
        .unwrap()
}

fn fixtures() -> (PathBuf, PathBuf, PathBuf) {
    let s = schema();
    let mut d = Database::empty(s.clone());
    for (dt, w, r, st, u) in [
        ("11.07.10", "ESP", "NED", "Final", "1:0"),
        ("12.07.98", "ESP", "NED", "Final", "4:2"), // false
        ("13.07.14", "GER", "ARG", "Final", "1:0"),
        ("08.07.90", "GER", "ARG", "Final", "1:0"),
    ] {
        d.insert_named("Games", tup![dt, w, r, st, u]).unwrap();
    }
    d.insert_named("Teams", tup!["ESP", "EU"]).unwrap();
    d.insert_named("Teams", tup!["GER", "EU"]).unwrap();
    let mut g = Database::empty(s.clone());
    for (dt, w, r, st, u) in [
        ("11.07.10", "ESP", "NED", "Final", "1:0"),
        ("13.07.14", "GER", "ARG", "Final", "1:0"),
        ("08.07.90", "GER", "ARG", "Final", "1:0"),
    ] {
        g.insert_named("Games", tup![dt, w, r, st, u]).unwrap();
    }
    g.insert_named("Teams", tup!["ESP", "EU"]).unwrap();
    g.insert_named("Teams", tup!["GER", "EU"]).unwrap();

    let dirty_dir = tmp("dirty");
    let ground_dir = tmp("ground");
    let out_dir = tmp("out");
    save_dir(&d, &dirty_dir).unwrap();
    save_dir(&g, &ground_dir).unwrap();
    (dirty_dir, ground_dir, out_dir)
}

fn run_cli(script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qoco-cli"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn qoco-cli");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("write script");
    let output = child.wait_with_output().expect("cli exits");
    assert!(output.status.success(), "cli failed: {output:?}");
    String::from_utf8(output.stdout).expect("utf8 output")
}

#[test]
fn full_session_cleans_and_saves() {
    let (dirty, ground, out_dir) = fixtures();
    let script = format!(
        "relation Games date winner runner_up stage result\n\
         relation Teams country continent\n\
         load {dirty}\n\
         ground {ground}\n\
         query Q1(x) :- Games(d1, x, y, \"Final\", u1), Games(d2, x, z, \"Final\", u2), Teams(x, \"EU\"), d1 != d2.\n\
         show Q1\n\
         diff\n\
         clean Q1 qoco provenance\n\
         show Q1\n\
         save {out}\n\
         quit\n",
        dirty = dirty.display(),
        ground = ground.display(),
        out = out_dir.display(),
    );
    let output = run_cli(&script);
    // before cleaning: ESP and GER answer; after: only GER
    assert!(output.contains("Q1(D): 2 answer(s)"), "{output}");
    assert!(output.contains("Q1(D): 1 answer(s)"), "{output}");
    assert!(output.contains("wrong answer(s) removed"), "{output}");
    assert!(output.contains("distance 1"), "{output}");

    // the saved database reloads and matches the cleaned view
    let s = schema();
    let cleaned = load_dir(s.clone(), &out_dir).unwrap();
    let q = parse_query(
        &s,
        r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
    )
    .unwrap();
    assert_eq!(answer_set(&q, &cleaned), vec![tup!["GER"]]);

    for d in [dirty, ground, out_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn telemetry_flag_exports_jsonl_trace() {
    let (dirty, ground, _) = fixtures();
    let trace =
        std::env::temp_dir().join(format!("qoco-cli-test-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&trace);
    let script = format!(
        "relation Games date winner runner_up stage result\n\
         relation Teams country continent\n\
         load {dirty}\n\
         ground {ground}\n\
         query Q1(x) :- Games(d1, x, y, \"Final\", u1), Games(d2, x, z, \"Final\", u2), Teams(x, \"EU\"), d1 != d2.\n\
         clean Q1 qoco provenance\n\
         quit\n",
        dirty = dirty.display(),
        ground = ground.display(),
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_qoco-cli"))
        .arg("--telemetry")
        .arg(&trace)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn qoco-cli");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("write");
    let output = child.wait_with_output().expect("cli exits");
    assert!(output.status.success(), "cli failed: {output:?}");

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(!text.trim().is_empty(), "trace must not be empty");
    // every line is a single JSON object
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not JSONL: {line}"
        );
    }
    // spans cover the eval, deletion, insertion and crowd phases
    for name in [
        "\"name\":\"clean.session\"",
        "\"name\":\"eval.assignments\"",
        "\"name\":\"clean.deletion_phase\"",
        "\"name\":\"clean.insertion_phase\"",
        "\"name\":\"deletion.remove_answer\"",
    ] {
        assert!(text.contains(name), "missing {name} in trace:\n{text}");
    }
    assert!(text.contains("\"type\":\"span\""), "{text}");
    assert!(text.contains("\"type\":\"event\""), "{text}");
    assert!(text.contains("crowd."), "crowd events missing:\n{text}");
    // the final metrics snapshot is appended
    assert!(text.contains("eval.assignments_tried"), "{text}");
    assert!(text.contains("crowd.questions_asked"), "{text}");

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_dir_all(dirty);
    let _ = std::fs::remove_dir_all(ground);
}

#[test]
fn errors_are_reported_not_fatal() {
    let script = "bogus-command\n\
                  relation Teams country continent\n\
                  show NoSuchQuery\n\
                  clean NoSuchQuery\n\
                  facts\n\
                  quit\n";
    let output = run_cli(script);
    assert!(output.contains("unknown command"), "{output}");
    assert!(output.contains("unknown query"), "{output}");
    assert!(output.contains("Teams: 0 fact(s)"), "{output}");
}

#[test]
fn explain_minimize_and_transcript_commands() {
    let (dirty, ground, _) = fixtures();
    let script = format!(
        "relation Games date winner runner_up stage result\n\
         relation Teams country continent\n\
         load {dirty}\n\
         ground {ground}\n\
         query QM(x) :- Teams(x, c), Teams(x, k)\n\
         minimize QM\n\
         query Q1(x) :- Games(d1, x, y, \"Final\", u1), Games(d2, x, z, \"Final\", u2), Teams(x, \"EU\"), d1 != d2.\n\
         explain Q1\n\
         transcript\n\
         clean Q1\n\
         transcript\n\
         quit\n",
        dirty = dirty.display(),
        ground = ground.display(),
    );
    let output = run_cli(&script);
    assert!(
        output.contains("QM minimized from 2 to 1 atoms"),
        "{output}"
    );
    assert!(output.contains("plan for Q1"), "{output}");
    assert!(
        output.contains("no cleaning session recorded yet"),
        "{output}"
    );
    assert!(output.contains("interaction(s):"), "{output}");
    assert!(output.contains("TRUE("), "{output}");
    let _ = std::fs::remove_dir_all(dirty);
    let _ = std::fs::remove_dir_all(ground);
}

#[test]
fn witnesses_command_lists_supporting_facts() {
    let (dirty, ground, _) = fixtures();
    let script = format!(
        "relation Games date winner runner_up stage result\n\
         relation Teams country continent\n\
         load {dirty}\n\
         ground {ground}\n\
         query Q1(x) :- Games(d1, x, y, \"Final\", u1), Games(d2, x, z, \"Final\", u2), Teams(x, \"EU\"), d1 != d2.\n\
         witnesses Q1 ESP\n\
         quit\n",
        dirty = dirty.display(),
        ground = ground.display(),
    );
    let output = run_cli(&script);
    assert!(output.contains("witness(es) for (ESP)"), "{output}");
    assert!(output.contains("witness 1:"), "{output}");
    let _ = std::fs::remove_dir_all(dirty);
    let _ = std::fs::remove_dir_all(ground);
}
