//! Chaos-engineering integration tests: deterministic fault injection
//! across the full cleaning pipeline.
//!
//! Every fault here is scripted through a [`FaultPlan`], so each scenario
//! is exactly reproducible: a dropped expert must degrade the session to a
//! clean *partial* report (never a panic), a majority panel must degrade
//! its quorum and still converge, a no-fault plan must be question-for-
//! question identical to no fault injection at all, and the fault counters
//! must surface in the Prometheus exposition.

use std::collections::BTreeSet;
use std::sync::Arc;

use qoco::core::{clean_view, CleaningConfig};
use qoco::crowd::{
    CrowdAccess, FaultPlan, FaultyOracle, MajorityCrowd, PerfectOracle, SingleExpert,
};
use qoco::data::{tup, Database, Schema};
use qoco::engine::answer_set;
use qoco::query::{parse_query, ConjunctiveQuery};

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
        .relation("Teams", &["country", "continent"])
        .build()
        .unwrap()
}

/// The Figure 1 fixture: ESP's 1998 final is a false fact, so (ESP) is a
/// wrong answer of the two-finals query while (GER) is a true one.
fn fixtures() -> (Database, Database) {
    let s = schema();
    let mut dirty = Database::empty(s.clone());
    for (dt, w, r, st, u) in [
        ("11.07.10", "ESP", "NED", "Final", "1:0"),
        ("12.07.98", "ESP", "NED", "Final", "4:2"), // false
        ("13.07.14", "GER", "ARG", "Final", "1:0"),
        ("08.07.90", "GER", "ARG", "Final", "1:0"),
    ] {
        dirty.insert_named("Games", tup![dt, w, r, st, u]).unwrap();
    }
    dirty.insert_named("Teams", tup!["ESP", "EU"]).unwrap();
    dirty.insert_named("Teams", tup!["GER", "EU"]).unwrap();
    let mut ground = dirty.clone();
    let games = s.rel_id("Games").unwrap();
    ground
        .apply(&qoco::data::Edit::delete(qoco::data::Fact::new(
            games,
            tup!["12.07.98", "ESP", "NED", "Final", "4:2"],
        )))
        .unwrap();
    (dirty, ground)
}

fn fig1_query(s: &Arc<Schema>) -> ConjunctiveQuery {
    parse_query(
        s,
        r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2"#,
    )
    .unwrap()
}

fn faulty(ground: &Database, spec: &str) -> FaultyOracle<PerfectOracle> {
    FaultyOracle::new(PerfectOracle::new(ground.clone()), spec.parse().unwrap())
}

#[test]
fn a_dropped_expert_yields_a_clean_partial_report() {
    let (mut dirty, ground) = fixtures();
    let q = fig1_query(&schema());
    // the sole expert drops out at its second question: the session must
    // finish without panicking and account for everything it had to skip
    let mut crowd = SingleExpert::new(faulty(&ground, "drop@2"));
    let report = clean_view(&q, &mut dirty, &mut crowd, CleaningConfig::default())
        .expect("a crowd failure is a partial report, not an error");
    assert!(report.is_partial());
    assert!(!report.unresolved.is_empty());
    // the session dies mid-deletion of (ESP), so all three phases have
    // something to confess: the aborted delete, the unverifiable (GER),
    // and the unreachable completeness probe
    let phases: BTreeSet<String> = report
        .unresolved
        .iter()
        .map(|u| u.phase.to_string())
        .collect();
    for phase in ["delete", "verify", "insert"] {
        assert!(phases.contains(phase), "missing {phase} in {phases:?}");
    }
    assert!(crowd.stats().faults >= 1);
}

#[test]
fn majority_crowd_degrades_quorum_and_still_converges() {
    let (mut dirty, ground) = fixtures();
    let q = fig1_query(&schema());
    // one of three panelists drops out immediately; the survivors carry
    // the vote with a degraded quorum and the session fully converges
    let mut crowd = MajorityCrowd::new(vec![
        faulty(&ground, "drop@1"),
        faulty(&ground, ""),
        faulty(&ground, ""),
    ]);
    let report = clean_view(&q, &mut dirty, &mut crowd, CleaningConfig::default()).unwrap();
    assert!(!report.is_partial(), "{report}");
    assert_eq!(crowd.alive(), 2);
    assert!(crowd.stats().faults >= 1);
    assert_eq!(answer_set(&q, &dirty), answer_set(&q, &ground.clone()));
}

#[test]
fn an_empty_fault_plan_is_question_for_question_identical() {
    let (dirty, ground) = fixtures();
    let q = fig1_query(&schema());
    let mut plain_db = dirty.clone();
    let mut plain = SingleExpert::new(PerfectOracle::new(ground.clone()));
    let plain_report =
        clean_view(&q, &mut plain_db, &mut plain, CleaningConfig::default()).unwrap();
    let mut chaos_db = dirty;
    let mut chaos = SingleExpert::new(FaultyOracle::new(
        PerfectOracle::new(ground),
        FaultPlan::none(),
    ));
    let chaos_report =
        clean_view(&q, &mut chaos_db, &mut chaos, CleaningConfig::default()).unwrap();
    assert_eq!(
        plain.stats(),
        chaos.stats(),
        "fault machinery must be free when off"
    );
    assert_eq!(plain_report.edits.edits(), chaos_report.edits.edits());
    assert_eq!(plain_db.sorted_facts(), chaos_db.sorted_facts());
    assert!(!chaos_report.is_partial());
}

#[test]
fn fault_counters_are_visible_in_prometheus_exposition() {
    let collector = Arc::new(qoco::telemetry::InMemoryCollector::new());
    let session = qoco::telemetry::session(collector);
    let (dirty, ground) = fixtures();
    let q = fig1_query(&schema());
    // a transient timeout on question 2 exercises the retry path…
    let mut d1 = dirty.clone();
    let mut retrying = SingleExpert::new(faulty(&ground, "fail@2=timeout"));
    clean_view(&q, &mut d1, &mut retrying, CleaningConfig::default()).unwrap();
    assert!(retrying.stats().retries >= 1);
    // …and a dropped panelist exercises escalation within the majority vote
    let mut d2 = dirty;
    let mut panel = MajorityCrowd::new(vec![
        faulty(&ground, "drop@1"),
        faulty(&ground, ""),
        faulty(&ground, ""),
    ]);
    clean_view(&q, &mut d2, &mut panel, CleaningConfig::default()).unwrap();
    assert!(panel.stats().escalations >= 1);
    let text = qoco::telemetry::metrics().snapshot().to_prometheus_text();
    for metric in [
        "qoco_crowd_faults_total",
        "qoco_crowd_retries_total",
        "qoco_crowd_escalations_total",
    ] {
        assert!(text.contains(metric), "missing {metric} in:\n{text}");
    }
    drop(session);
}
