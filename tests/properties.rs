//! Property-based tests on the core invariants, using proptest.
//!
//! * evaluation agrees with a brute-force semantics oracle;
//! * `clean_view` with a perfect oracle always reaches `Q(D′) = Q(D_G)`;
//! * every edit weakly decreases `|D − D_G|` (Proposition 3.3);
//! * edits are idempotent (Section 3.1);
//! * hitting-set machinery agrees with exhaustive search (Theorem 4.5);
//! * noise injection hits its cleanliness target;
//! * a session killed at any point and resumed from its write-ahead
//!   journal converges bit-identically to the uninterrupted run.

use std::collections::BTreeSet;

use proptest::prelude::*;

use qoco::core::hitting_set::HittingSetInstance;
use qoco::core::{clean_view, CleaningConfig};
use qoco::crowd::{CrowdAccess, FaultPlan, FaultyOracle, Journal, PerfectOracle, SingleExpert};
use qoco::data::{diff, tup, Database, Edit, Fact, Schema, Value};
use qoco::datasets::{inject_noise, NoiseSpec};
use qoco::engine::{answer_set, evaluate, Assignment};
use qoco::query::{parse_query, ConjunctiveQuery, Var};

/// A tiny two-relation schema: E(a, b) and L(a).
fn small_schema() -> std::sync::Arc<Schema> {
    Schema::builder()
        .relation("E", &["a", "b"])
        .relation("L", &["a"])
        .build()
        .unwrap()
}

const DOMAIN: [&str; 4] = ["v0", "v1", "v2", "v3"];

/// Strategy: a database over the small schema with up to `max` facts.
fn db_strategy(max: usize) -> impl Strategy<Value = Database> {
    let e_facts = proptest::collection::vec((0..4usize, 0..4usize), 0..max);
    let l_facts = proptest::collection::vec(0..4usize, 0..max);
    (e_facts, l_facts).prop_map(|(es, ls)| {
        let mut db = Database::empty(small_schema());
        for (a, b) in es {
            db.insert_named("E", tup![DOMAIN[a], DOMAIN[b]]).unwrap();
        }
        for a in ls {
            db.insert_named("L", tup![DOMAIN[a]]).unwrap();
        }
        db
    })
}

/// A pool of queries over the small schema exercising joins, constants,
/// self-joins and inequalities.
fn query_pool() -> Vec<ConjunctiveQuery> {
    let s = small_schema();
    [
        r#"(x) :- L(x)"#,
        r#"(x, y) :- E(x, y)"#,
        r#"(x) :- E(x, y), L(y)"#,
        r#"(x) :- E(x, y), E(y, z)"#,
        r#"(x, z) :- E(x, y), E(y, z), x != z"#,
        r#"(x) :- E(x, x)"#,
        r#"(x) :- E(x, y), y != "v0""#,
        r#"(x) :- E(x, y), L(x), L(y)"#,
    ]
    .iter()
    .map(|t| parse_query(&s, t).unwrap())
    .collect()
}

/// Brute-force semantics: enumerate every total assignment over the active
/// domain and keep the heads of the valid ones.
fn brute_force_answers(q: &ConjunctiveQuery, db: &Database) -> BTreeSet<qoco::data::Tuple> {
    let vars = q.vars();
    let domain: Vec<Value> = DOMAIN.iter().map(|d| Value::text(*d)).collect();
    let mut out = BTreeSet::new();
    let total = domain.len().pow(vars.len() as u32);
    for code in 0..total {
        let mut rem = code;
        let mut asg = Assignment::new();
        for v in &vars {
            asg.bind(v.clone(), domain[rem % domain.len()].clone());
            rem /= domain.len();
        }
        // valid? every atom grounds to a fact, every inequality holds
        let atoms_ok = q
            .atoms()
            .iter()
            .all(|a| asg.ground_atom(a).map(|f| db.contains(&f)).unwrap_or(false));
        let ineq_ok = q
            .inequalities()
            .iter()
            .all(|e| asg.check_inequality(e) == Some(true));
        if atoms_ok && ineq_ok {
            out.insert(asg.ground_head(q).unwrap());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn evaluation_matches_brute_force(db in db_strategy(12), qi in 0..8usize) {
        let q = &query_pool()[qi];
        let dbm = db.clone();
        let fast: BTreeSet<_> = answer_set(q, &dbm).into_iter().collect();
        let brute = brute_force_answers(q, &db);
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn all_assignments_are_valid_and_distinct(db in db_strategy(10), qi in 0..8usize) {
        let q = &query_pool()[qi];
        let dbm = db.clone();
        let res = evaluate(q, &dbm);
        let mut seen = BTreeSet::new();
        for a in &res.assignments {
            prop_assert!(seen.insert(a.clone()), "duplicate assignment");
            for atom in q.atoms() {
                let f = a.ground_atom(atom).expect("total");
                prop_assert!(db.contains(&f));
            }
            for e in q.inequalities() {
                prop_assert_eq!(a.check_inequality(e), Some(true));
            }
        }
    }

    #[test]
    fn cleaning_converges_and_is_monotone(
        dirty in db_strategy(10),
        ground in db_strategy(10),
        qi in 0..8usize,
    ) {
        let q = &query_pool()[qi];
        let mut d = dirty.clone();
        let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
        let config = CleaningConfig { max_iterations: 200, ..Default::default() };
        let report = clean_view(q, &mut d, &mut crowd, config).unwrap();
        // convergence: the repaired view equals the true result
        let gm = ground.clone();
        prop_assert_eq!(answer_set(q, &d), answer_set(q, &gm));
        // Proposition 3.3: monotone distance along the edit log
        let mut replay = dirty.clone();
        let mut dist = diff(&replay, &ground).unwrap().distance();
        for e in report.edits.edits() {
            replay.apply(e).unwrap();
            let next = diff(&replay, &ground).unwrap().distance();
            prop_assert!(next <= dist);
            dist = next;
        }
        prop_assert_eq!(report.anomalies, 0);
    }

    #[test]
    fn edits_are_idempotent(db in db_strategy(8), a in 0..4usize, b in 0..4usize, del in any::<bool>()) {
        let fact = Fact::new(
            small_schema().rel_id("E").unwrap(),
            tup![DOMAIN[a], DOMAIN[b]],
        );
        let e = if del { Edit::delete(fact) } else { Edit::insert(fact) };
        let mut once = db.clone();
        once.apply(&e).unwrap();
        let mut twice = once.clone();
        let changed = twice.apply(&e).unwrap();
        prop_assert!(!changed, "second application must be a no-op");
        prop_assert_eq!(once.sorted_facts(), twice.sorted_facts());
    }

    #[test]
    fn unique_minimal_hitting_set_matches_exhaustive_search(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u32..6, 1..4),
            1..6,
        )
    ) {
        let inst = HittingSetInstance::new(sets.clone());
        // exhaustive: all minimal hitting sets over the universe
        let universe: Vec<u32> = inst.universe().into_iter().collect();
        let mut hitting: Vec<BTreeSet<u32>> = Vec::new();
        for mask in 0u32..(1 << universe.len()) {
            let h: BTreeSet<u32> = universe
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, v)| *v)
                .collect();
            if inst.is_hitting_set(&h) {
                hitting.push(h);
            }
        }
        let minimal: Vec<&BTreeSet<u32>> = hitting
            .iter()
            .filter(|h| {
                h.iter().all(|e| {
                    let mut smaller = (*h).clone();
                    smaller.remove(e);
                    !inst.is_hitting_set(&smaller)
                })
            })
            .collect();
        match inst.unique_minimal_hitting_set() {
            Some(m) => {
                prop_assert_eq!(minimal.len(), 1, "claimed unique but found {}", minimal.len());
                prop_assert_eq!(minimal[0], &m);
            }
            None => prop_assert!(minimal.len() != 1, "missed a unique minimal hitting set"),
        }
        // the exact minimum is a hitting set no larger than greedy
        let exact = inst.minimum_hitting_set();
        prop_assert!(inst.is_hitting_set(&exact));
        let greedy = inst.greedy_hitting_set();
        prop_assert!(inst.is_hitting_set(&greedy));
        prop_assert!(exact.len() <= greedy.len());
    }

    #[test]
    fn noise_injection_hits_cleanliness_target(
        clean_pct in 50u32..99,
        skew_pct in 0u32..=100,
        seed in 0u64..50,
    ) {
        // a mid-sized ground truth so rounding error stays small
        let mut ground = Database::empty(small_schema());
        for i in 0..40 {
            ground
                .insert_named("E", tup![format!("g{i}"), format!("h{i}")])
                .unwrap();
        }
        let spec = NoiseSpec {
            cleanliness: clean_pct as f64 / 100.0,
            skewness: skew_pct as f64 / 100.0,
            seed,
        };
        let d = inject_noise(&ground, spec);
        let r = diff(&d, &ground).unwrap();
        prop_assert!((r.cleanliness() - spec.cleanliness).abs() < 0.08,
            "target {} got {}", spec.cleanliness, r.cleanliness());
    }

    #[test]
    fn killed_and_resumed_sessions_converge_identically(
        dirty in db_strategy(8),
        ground in db_strategy(8),
        qi in 0..8usize,
        seed in 0u64..20,
    ) {
        // Run one journaled session to completion (under a transiently
        // faulty crowd), then simulate killing it at the ¼, ½ and ¾ marks
        // of its answer stream: resuming from each journal prefix must
        // reproduce the same edits, the same final database, the same
        // question counts — with zero replay divergences.
        let q = &query_pool()[qi];
        let plan: FaultPlan = format!("seed={seed},timeout=0.15").parse().unwrap();
        let config = CleaningConfig { max_iterations: 200, ..Default::default() };

        let full_journal = Journal::recording();
        let mut full_db = dirty.clone();
        let mut full_crowd = SingleExpert::new(full_journal.wrap(FaultyOracle::new(
            PerfectOracle::new(ground.clone()),
            plan.clone(),
        )));
        let full_report = clean_view(q, &mut full_db, &mut full_crowd, config).unwrap();
        let full_stats = full_crowd.stats();
        let records = full_journal.records();

        for frac in [1usize, 2, 3] {
            let k = records.len() * frac / 4;
            let journal = Journal::replaying(records[..k].to_vec());
            let mut db = dirty.clone();
            let mut crowd = SingleExpert::new(journal.wrap(FaultyOracle::new(
                PerfectOracle::new(ground.clone()),
                plan.clone(),
            )));
            let report = clean_view(q, &mut db, &mut crowd, config).unwrap();
            prop_assert_eq!(journal.divergences(), 0, "kill point {k}: inputs diverged");
            prop_assert_eq!(journal.replayed(), k as u64);
            prop_assert_eq!(journal.seq(), records.len() as u64,
                "kill point {k}: different question count");
            prop_assert_eq!(report.edits.edits(), full_report.edits.edits());
            prop_assert_eq!(db.sorted_facts(), full_db.sorted_facts());
            prop_assert_eq!(crowd.stats(), full_stats);
        }
    }

    #[test]
    fn substitution_preserves_safety(db in db_strategy(6), qi in 0..8usize, v in 0..4usize) {
        // substituting any single variable by a constant yields a valid
        // query whose answers embed into the original's
        let q = &query_pool()[qi];
        let vars = q.vars();
        let var: Var = vars[v % vars.len()].clone();
        let value = Value::text(DOMAIN[v]);
        let Ok(sub) = q.substitute(&|x: &Var| (x == &var).then(|| value.clone())) else {
            return Ok(()); // substitution violated an inequality: fine
        };
        // every valid assignment of the substituted query extends to one of
        // the original with var := value
        let dbm = db.clone();
        let sub_res = evaluate(&sub, &dbm);
        for a in &sub_res.assignments {
            let mut full = a.clone();
            prop_assert!(full.bind(var.clone(), value.clone()));
            for atom in q.atoms() {
                let f = full.ground_atom(atom).expect("total for q");
                prop_assert!(db.contains(&f));
            }
        }
    }
}
