//! Property tests for the extension modules: parser round-trips on
//! generated queries, group-testing correctness, view-monitor equivalence
//! with full recomputation, constraint-repair soundness, and TSV
//! persistence round-trips.

use std::collections::BTreeSet;

use proptest::prelude::*;

use qoco::core::find_false_facts;
use qoco::crowd::{PerfectOracle, SingleExpert};
use qoco::data::{load_dir, save_dir, tup, Database, Edit, Fact, Schema, Value};
use qoco::engine::{answer_set, ViewMonitor};
use qoco::query::{parse_query, Atom, ConjunctiveQuery, Inequality, Term, UnionQuery, Var};

fn small_schema() -> std::sync::Arc<Schema> {
    Schema::builder()
        .relation("E", &["a", "b"])
        .relation("L", &["a"])
        .build()
        .unwrap()
}

const DOMAIN: [&str; 4] = ["v0", "v1", "v2", "v3"];
const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// Strategy: a random well-formed conjunctive query over the small schema.
fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    // atoms encoded as (relation_choice, term codes); term code < 4 = var,
    // ≥ 4 = constant
    let atom = (0..2usize, proptest::collection::vec(0..8usize, 2));
    (
        proptest::collection::vec(atom, 1..4),
        0..4usize,
        any::<bool>(),
    )
        .prop_filter_map(
            "query must be well-formed",
            |(atom_specs, ineq_seed, with_ineq)| {
                let s = small_schema();
                let e = s.rel_id("E").unwrap();
                let l = s.rel_id("L").unwrap();
                let term = |code: usize| -> Term {
                    if code < 4 {
                        Term::var(VARS[code])
                    } else {
                        Term::cons(DOMAIN[code - 4])
                    }
                };
                let mut atoms = Vec::new();
                for (rel_choice, codes) in atom_specs {
                    if rel_choice == 0 {
                        atoms.push(Atom::new(e, vec![term(codes[0]), term(codes[1])]));
                    } else {
                        atoms.push(Atom::new(l, vec![term(codes[0])]));
                    }
                }
                // head: every variable that occurs (keeps the query safe)
                let mut head = Vec::new();
                let mut seen = BTreeSet::new();
                for a in &atoms {
                    for v in a.vars() {
                        if seen.insert(v.clone()) {
                            head.push(Term::Var(v));
                        }
                    }
                }
                if head.is_empty() {
                    return None; // all-constant query: legal but dull for the parser test
                }
                let vars: Vec<Var> = seen.into_iter().collect();
                let inequalities = if with_ineq && vars.len() >= 2 {
                    let a = vars[ineq_seed % vars.len()].clone();
                    let b = vars[(ineq_seed + 1) % vars.len()].clone();
                    if a == b {
                        vec![]
                    } else {
                        vec![Inequality::new(a, Term::Var(b))]
                    }
                } else {
                    vec![]
                };
                ConjunctiveQuery::new(s, "G", head, atoms, inequalities).ok()
            },
        )
}

fn db_strategy(max: usize) -> impl Strategy<Value = Database> {
    let e_facts = proptest::collection::vec((0..4usize, 0..4usize), 0..max);
    let l_facts = proptest::collection::vec(0..4usize, 0..max);
    (e_facts, l_facts).prop_map(|(es, ls)| {
        let mut db = Database::empty(small_schema());
        for (a, b) in es {
            db.insert_named("E", tup![DOMAIN[a], DOMAIN[b]]).unwrap();
        }
        for a in ls {
            db.insert_named("L", tup![DOMAIN[a]]).unwrap();
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parser_round_trips_generated_queries(q in query_strategy()) {
        let rendered = q.display();
        let reparsed = parse_query(q.schema(), &rendered)
            .unwrap_or_else(|e| panic!("reparse of `{rendered}` failed: {e}"));
        prop_assert_eq!(q.atoms(), reparsed.atoms());
        prop_assert_eq!(q.inequalities(), reparsed.inequalities());
        prop_assert_eq!(q.head(), reparsed.head());
    }

    #[test]
    fn generated_queries_evaluate_identically_after_round_trip(
        q in query_strategy(),
        db in db_strategy(10),
    ) {
        let reparsed = parse_query(q.schema(), &q.display()).unwrap();
        let d1 = db.clone();
        let d2 = db.clone();
        prop_assert_eq!(answer_set(&q, &d1), answer_set(&reparsed, &d2));
    }

    #[test]
    fn group_testing_finds_exactly_the_false_facts(
        facts in proptest::collection::btree_set((0..4usize, 0..4usize), 1..12),
        truth_mask in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let s = small_schema();
        let e = s.rel_id("E").unwrap();
        let mut ground = Database::empty(s.clone());
        let all: Vec<Fact> = facts
            .iter()
            .map(|(a, b)| Fact::new(e, tup![DOMAIN[*a], DOMAIN[*b]]))
            .collect();
        let mut expected_false = BTreeSet::new();
        for (i, f) in all.iter().enumerate() {
            if truth_mask[i % truth_mask.len()] {
                ground.insert(f.clone()).unwrap();
            } else {
                expected_false.insert(f.clone());
            }
        }
        let mut crowd = SingleExpert::new(PerfectOracle::new(ground));
        let (found, questions) = find_false_facts(&mut crowd, &all).unwrap();
        let found: BTreeSet<Fact> = found.into_iter().collect();
        prop_assert_eq!(found, expected_false);
        prop_assert!(questions <= 2 * all.len() + 1, "group testing asked {questions} about {} facts", all.len());
    }

    #[test]
    fn monitor_tracks_full_recompute(
        db in db_strategy(8),
        edits in proptest::collection::vec(
            (any::<bool>(), 0..2usize, 0..4usize, 0..4usize),
            1..20,
        ),
        qi in 0..3usize,
    ) {
        let s = small_schema();
        let queries = [
            parse_query(&s, "(x) :- E(x, y), L(y)").unwrap(),
            parse_query(&s, "(x, z) :- E(x, y), E(y, z), x != z").unwrap(),
            parse_query(&s, r#"(x) :- E(x, x)"#).unwrap(),
        ];
        let q = &queries[qi];
        let mut live = db.clone();
        let mut monitor = ViewMonitor::new(q.clone(), &live);
        for (del, rel_choice, a, b) in edits {
            let fact = if rel_choice == 0 {
                Fact::new(s.rel_id("E").unwrap(), tup![DOMAIN[a], DOMAIN[b]])
            } else {
                Fact::new(s.rel_id("L").unwrap(), tup![DOMAIN[a]])
            };
            let e = if del { Edit::delete(fact) } else { Edit::insert(fact) };
            live.apply(&e).unwrap();
            let delta = monitor.apply_edit(&live, &e);
            let expected = answer_set(q, &live);
            prop_assert_eq!(monitor.answers(), expected, "after {:?}", e);
            // deltas are consistent: added ∩ removed = ∅
            for t in &delta.added {
                prop_assert!(!delta.removed.contains(t));
            }
        }
    }

    /// The incremental deltas of [`ViewMonitor::apply_edit`] must be
    /// exactly the set difference between consecutive full re-evaluations
    /// — not just leave the maintained answer set correct.
    #[test]
    fn monitor_deltas_agree_with_full_reevaluation(
        db in db_strategy(8),
        edits in proptest::collection::vec(
            (any::<bool>(), 0..2usize, 0..4usize, 0..4usize),
            1..24,
        ),
        qi in 0..3usize,
    ) {
        let s = small_schema();
        let queries = [
            parse_query(&s, "(x) :- E(x, y), L(y)").unwrap(),
            parse_query(&s, "(x, z) :- E(x, y), E(y, z), x != z").unwrap(),
            parse_query(&s, r#"(x) :- E(x, x)"#).unwrap(),
        ];
        let q = &queries[qi];
        let mut live = db.clone();
        let mut monitor = ViewMonitor::new(q.clone(), &live);
        let mut previous: BTreeSet<qoco::data::Tuple> =
            answer_set(q, &live).into_iter().collect();
        for (del, rel_choice, a, b) in edits {
            let fact = if rel_choice == 0 {
                Fact::new(s.rel_id("E").unwrap(), tup![DOMAIN[a], DOMAIN[b]])
            } else {
                Fact::new(s.rel_id("L").unwrap(), tup![DOMAIN[a]])
            };
            let e = if del { Edit::delete(fact) } else { Edit::insert(fact) };
            live.apply(&e).unwrap();
            let delta = monitor.apply_edit(&live, &e);
            let expected: BTreeSet<qoco::data::Tuple> =
                answer_set(q, &live).into_iter().collect();
            let added: BTreeSet<qoco::data::Tuple> =
                expected.difference(&previous).cloned().collect();
            let removed: BTreeSet<qoco::data::Tuple> =
                previous.difference(&expected).cloned().collect();
            prop_assert_eq!(
                delta.added.iter().cloned().collect::<BTreeSet<_>>(),
                added,
                "added delta diverged from full re-evaluation after {:?}", e
            );
            prop_assert_eq!(
                delta.removed.iter().cloned().collect::<BTreeSet<_>>(),
                removed,
                "removed delta diverged from full re-evaluation after {:?}", e
            );
            previous = expected;
        }
    }

    #[test]
    fn minimized_union_is_answer_equivalent(
        disjunct_picks in proptest::collection::vec(0..5usize, 1..4),
        db in db_strategy(10),
    ) {
        let s = small_schema();
        let pool = [
            parse_query(&s, "(x) :- E(x, y)").unwrap(),
            parse_query(&s, "(x) :- E(x, y), E(y, z)").unwrap(),
            parse_query(&s, "(x) :- L(x)").unwrap(),
            parse_query(&s, "(x) :- E(x, x)").unwrap(),
            parse_query(&s, "(x) :- E(x, y), L(y)").unwrap(),
        ];
        let disjuncts: Vec<ConjunctiveQuery> =
            disjunct_picks.iter().map(|&i| pool[i].clone()).collect();
        let u = UnionQuery::new("U", disjuncts).unwrap();
        let m = u.minimized();
        prop_assert!(m.disjuncts().len() <= u.disjuncts().len());
        prop_assert!(!m.disjuncts().is_empty());
        let answers = |uq: &UnionQuery| -> BTreeSet<qoco::data::Tuple> {
            let d = db.clone();
            uq.disjuncts()
                .iter()
                .flat_map(|q| answer_set(q, &d))
                .collect()
        };
        prop_assert_eq!(answers(&u), answers(&m));
    }

    #[test]
    fn tsv_round_trip_any_database(db in db_strategy(12), tag in 0u32..1_000_000) {
        let dir = std::env::temp_dir().join(format!(
            "qoco-prop-io-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        save_dir(&db, &dir).unwrap();
        let loaded = load_dir(small_schema(), &dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(db.sorted_facts(), loaded.sorted_facts());
    }

    #[test]
    fn tsv_round_trip_arbitrary_text(texts in proptest::collection::vec(".*", 1..8)) {
        let s = Schema::builder().relation("T", &["v"]).build().unwrap();
        let mut db = Database::empty(s.clone());
        for t in &texts {
            db.insert(Fact::new(
                s.rel_id("T").unwrap(),
                qoco::data::Tuple::new(vec![Value::text(t)]),
            ))
            .unwrap();
        }
        let dir = std::env::temp_dir().join(format!(
            "qoco-prop-text-{}-{}",
            std::process::id(),
            texts.len() * 31 + texts.first().map(|t| t.len()).unwrap_or(0),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        save_dir(&db, &dir).unwrap();
        let loaded = load_dir(s, &dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(db.sorted_facts(), loaded.sorted_facts());
    }
}
