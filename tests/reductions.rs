//! The appendix's NP-hardness reduction gadgets, run end-to-end.
//!
//! The paper proves Theorem 4.2 (deletion question search is NP-hard) by
//! reduction from Hitting Set, and Theorem 5.2 (insertion question search
//! is NP-hard) by reduction from One-3SAT. These tests *construct the
//! reduction instances exactly as the proofs describe* and check that the
//! QOCO algorithms behave as the proofs require: removing the planted
//! answer yields a hitting set; inserting the missing answer yields a
//! satisfying assignment.

use std::collections::{BTreeSet, HashMap};

use qoco::core::{
    crowd_add_missing_answer, crowd_remove_wrong_answer, DeletionStrategy, InsertionOptions,
    NaiveSplit,
};
use qoco::crowd::{PerfectOracle, SingleExpert};
use qoco::data::{Database, Schema, Tuple, Value};
use qoco::engine::answer_set;
use qoco::query::{parse_query, ConjunctiveQuery};

// --------------------------------------------------------------------
// Theorem 4.2: Hitting Set → deletion question search
// --------------------------------------------------------------------

/// Build the proof's instance for universe size `n` and sets `sets`
/// (the proof's own example: U = {u1..u4}, S = {{u2,u3,u4}, {u1,u2}}).
fn hitting_set_gadget(
    n: usize,
    sets: &[BTreeSet<usize>],
) -> (Database, Database, ConjunctiveQuery) {
    let mut builder = Schema::builder();
    for i in 1..=n {
        builder = builder.relation(&format!("R{i}"), &["x"]);
    }
    // R(Z, A, X_1..X_n)
    let attrs: Vec<String> = std::iter::once("z".to_string())
        .chain(std::iter::once("a".to_string()))
        .chain((1..=n).map(|i| format!("x{i}")))
        .collect();
    let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
    builder = builder.relation("R", &attr_refs);
    let schema = builder.build().unwrap();

    let u = |i: usize| Value::text(format!("u{i}"));
    let d = Value::text("d");

    let mut db = Database::empty(schema.clone());
    let mut ground = Database::empty(schema.clone());
    for i in 1..=n {
        let rel = format!("R{i}");
        db.insert_named(&rel, Tuple::new(vec![u(i)])).unwrap();
        db.insert_named(&rel, Tuple::new(vec![d.clone()])).unwrap();
        ground
            .insert_named(&rel, Tuple::new(vec![d.clone()]))
            .unwrap();
    }
    // characteristic vector per set
    for (si, set) in sets.iter().enumerate() {
        let mut row = vec![d.clone(), Value::text(format!("S{}", si + 1))];
        for j in 1..=n {
            row.push(if set.contains(&j) { u(j) } else { d.clone() });
        }
        db.insert_named("R", Tuple::new(row)).unwrap();
    }
    // (z) :- R(z, y, w1..wn), R1(w1), …, Rn(wn)
    let body_vars: Vec<String> = (1..=n).map(|i| format!("w{i}")).collect();
    let mut text = format!("(z) :- R(z, y, {})", body_vars.join(", "));
    for i in 1..=n {
        text.push_str(&format!(", R{i}(w{i})"));
    }
    let q = parse_query(&schema, &text).unwrap();
    (db, ground, q)
}

#[test]
fn theorem_4_2_gadget_shape() {
    // the proof's example instance
    let sets = vec![BTreeSet::from([2usize, 3, 4]), BTreeSet::from([1usize, 2])];
    let (db, ground, q) = hitting_set_gadget(4, &sets);
    // Q(D) = {(d)}, Q(D_G) = ∅ — exactly as the proof states
    assert_eq!(
        answer_set(&q, &db),
        vec![Tuple::new(vec![Value::text("d")])]
    );
    assert!(answer_set(&q, &ground).is_empty());
}

#[test]
fn theorem_4_2_deletions_form_a_hitting_set() {
    for (n, sets) in [
        (
            4usize,
            vec![BTreeSet::from([2usize, 3, 4]), BTreeSet::from([1usize, 2])],
        ),
        (
            5,
            vec![
                BTreeSet::from([1usize, 2]),
                BTreeSet::from([3usize, 4]),
                BTreeSet::from([2usize, 5]),
            ],
        ),
    ] {
        let (mut db, ground, q) = hitting_set_gadget(n, &sets);
        let target = Tuple::new(vec![Value::text("d")]);
        let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
        let out =
            crowd_remove_wrong_answer(&q, &mut db, &target, &mut crowd, DeletionStrategy::Qoco)
                .unwrap();
        assert!(
            answer_set(&q, &db).is_empty(),
            "the wrong answer must be gone"
        );
        // the deleted facts, projected to the elements u_i, must hit every
        // set of the instance (the proof's ⇐ direction)
        let mut hit: BTreeSet<usize> = BTreeSet::new();
        for e in out.edits.edits() {
            let rel_name = db.schema().rel_name(e.fact.rel).to_string();
            if let Some(i) = rel_name
                .strip_prefix('R')
                .and_then(|s| s.parse::<usize>().ok())
            {
                if e.fact.tuple.values()[0] == Value::text(format!("u{i}")) {
                    hit.insert(i);
                }
            }
        }
        for (si, set) in sets.iter().enumerate() {
            assert!(
                set.iter().any(|el| hit.contains(el))
                    || out.edits.edits().iter().any(|e| {
                        // alternatively the characteristic-vector row itself
                        // was deleted, which also destroys the witness
                        db.schema().rel_name(e.fact.rel) == "R"
                            && e.fact.tuple.values()[1] == Value::text(format!("S{}", si + 1))
                    }),
                "set S{} not hit; edits: {:?}",
                si + 1,
                out.edits.edits()
            );
        }
    }
}

// --------------------------------------------------------------------
// Theorem 5.2: One-3SAT → insertion question search
// --------------------------------------------------------------------

/// A 3-CNF clause: three (variable index, positive?) literals.
type Clause = [(usize, bool); 3];

/// Build the proof's instance for the formula `clauses` over `nvars`
/// boolean variables: one relation `R_i(A, X_i1, X_i2, X_i3)` per clause,
/// ground truth = the satisfying rows of each clause, dirty DB empty.
fn one_3sat_gadget(nvars: usize, clauses: &[Clause]) -> (Database, Database, ConjunctiveQuery) {
    let mut builder = Schema::builder();
    for i in 0..clauses.len() {
        builder = builder.relation(&format!("C{i}"), &["a", "l1", "l2", "l3"]);
    }
    let schema = builder.build().unwrap();
    let db = Database::empty(schema.clone());
    let mut ground = Database::empty(schema.clone());
    for (i, clause) in clauses.iter().enumerate() {
        for bits in 0..8u32 {
            let vals: Vec<bool> = (0..3).map(|b| bits >> b & 1 == 1).collect();
            let satisfied = clause
                .iter()
                .zip(&vals)
                .any(|((_, positive), v)| *v == *positive);
            if satisfied {
                let mut row = vec![Value::text("d")];
                row.extend(vals.iter().map(|&v| Value::Int(v as i64)));
                ground
                    .insert_named(&format!("C{i}"), Tuple::new(row))
                    .unwrap();
            }
        }
    }
    // (x) :- C0(x, v_a, v_b, v_c), C1(x, …), … with variables shared per
    // boolean variable
    let mut body = Vec::new();
    for (i, clause) in clauses.iter().enumerate() {
        let lits: Vec<String> = clause.iter().map(|(v, _)| format!("v{v}")).collect();
        body.push(format!("C{i}(x, {})", lits.join(", ")));
    }
    let _ = nvars;
    let text = format!("(x) :- {}", body.join(", "));
    let q = parse_query(&schema, &text).unwrap();
    (db, ground, q)
}

#[test]
fn theorem_5_2_gadget_shape() {
    // Φ = (X1 ∨ X2 ∨ ¬X3) ∧ (¬X1 ∨ X3 ∨ X4): satisfiable
    let clauses: Vec<Clause> = vec![
        [(1, true), (2, true), (3, false)],
        [(1, false), (3, true), (4, true)],
    ];
    let (db, ground, q) = one_3sat_gadget(4, &clauses);
    assert!(answer_set(&q, &db).is_empty(), "Q(D) = ∅ on the empty DB");
    assert_eq!(
        answer_set(&q, &ground),
        vec![Tuple::new(vec![Value::text("d")])],
        "Q(D_G) = {{(d)}} for a satisfiable formula"
    );
}

#[test]
fn theorem_5_2_insertion_encodes_a_satisfying_assignment() {
    let clauses: Vec<Clause> = vec![
        [(1, true), (2, true), (3, false)],
        [(1, false), (3, true), (4, true)],
        [(2, false), (4, false), (1, true)],
    ];
    let (mut db, ground, q) = one_3sat_gadget(4, &clauses);
    let target = Tuple::new(vec![Value::text("d")]);
    let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
    let out = crowd_add_missing_answer(
        &q,
        &mut db,
        &target,
        &mut crowd,
        &mut NaiveSplit,
        InsertionOptions::default(),
    )
    .unwrap();
    assert!(out.achieved);
    assert!(answer_set(&q, &db).contains(&target));
    // reconstruct the boolean assignment from the inserted facts: since the
    // query shares variables across clauses, the inserted rows must agree —
    // and must satisfy every clause
    let mut assignment: HashMap<usize, bool> = HashMap::new();
    for e in out.edits.edits() {
        let rel_name = db.schema().rel_name(e.fact.rel).to_string();
        let ci: usize = rel_name.strip_prefix('C').unwrap().parse().unwrap();
        for (slot, (var, _)) in clauses[ci].iter().enumerate() {
            let bit = e.fact.tuple.values()[slot + 1].as_int().expect("0/1 value") == 1;
            if let Some(prev) = assignment.insert(*var, bit) {
                assert_eq!(prev, bit, "inconsistent assignment for X{var}");
            }
        }
    }
    for (i, clause) in clauses.iter().enumerate() {
        let sat = clause
            .iter()
            .any(|(var, positive)| assignment[var] == *positive);
        assert!(sat, "clause {i} unsatisfied by {assignment:?}");
    }
}

#[test]
fn theorem_5_2_unsatisfiable_formula_cannot_be_inserted() {
    // Φ = (X1) ∧ (¬X1), padded to 3 literals with the same variable:
    // (X1 ∨ X1 ∨ X1) ∧ (¬X1 ∨ ¬X1 ∨ ¬X1) — unsatisfiable
    let clauses: Vec<Clause> = vec![
        [(1, true), (1, true), (1, true)],
        [(1, false), (1, false), (1, false)],
    ];
    let (mut db, ground, q) = one_3sat_gadget(1, &clauses);
    assert!(
        answer_set(&q, &ground).is_empty(),
        "no satisfying assignment ⇒ (d) ∉ Q(D_G)"
    );
    let target = Tuple::new(vec![Value::text("d")]);
    let mut crowd = SingleExpert::new(PerfectOracle::new(ground));
    let out = crowd_add_missing_answer(
        &q,
        &mut db,
        &target,
        &mut crowd,
        &mut NaiveSplit,
        InsertionOptions::default(),
    )
    .unwrap();
    assert!(
        !out.achieved,
        "the oracle must refuse to witness an unsatisfiable formula"
    );
    assert!(out.edits.is_empty());
}
