//! End-to-end chaos tests for `qoco-serve`: real processes, real HTTP,
//! real `SIGKILL`.
//!
//! The acceptance criterion for the serving layer: a session driven over
//! the API, killed with `kill -9` mid-session, rehydrated by a fresh
//! process over the same store, and then finished, must produce a report
//! **byte-identical** to an uninterrupted run's — and every duplicate or
//! pre-crash (stale-epoch) submission along the way must be acknowledged
//! without being applied twice.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use qoco::core::{figure1_ground, figure1_spec, SessionMachine};
use qoco::crowd::{tagged_value, Answer, Oracle, PerfectOracle};

/// A running `qoco-serve` child plus the address it bound. The stdout
/// pipe stays open for the server's lifetime — dropping it would EPIPE
/// the child's later banner prints.
struct Server {
    child: Child,
    addr: String,
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Server {
    fn start(store: &std::path::Path, extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_qoco-serve"))
            .arg("serve")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--store")
            .arg(store)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn qoco-serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut first = String::new();
        reader.read_line(&mut first).expect("readable stdout");
        let addr = first
            .trim_end()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {first}"))
            .to_string();
        Server {
            child,
            addr,
            _stdout: reader,
        }
    }

    /// `kill -9`: no shutdown handler runs, nothing gets flushed.
    fn kill_9(&mut self) {
        self.child.kill().expect("SIGKILL");
        self.child.wait().expect("reap");
    }

    fn http(&self, method: &str, path: &str, body: &str) -> (String, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("HTTP response");
        let status = head
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("HTTP/1.1 "))
            .expect("status line");
        (status.to_string(), body.to_string())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qoco-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The correct Figure 1 answer sequence, as `POST /answers` item JSON,
/// computed from a local mirror of the deterministic session.
fn figure1_answer_items() -> Vec<String> {
    let mut m = SessionMachine::new(figure1_spec());
    let mut oracle = PerfectOracle::new(figure1_ground());
    let mut items = Vec::new();
    while let Some(p) = m.pending().cloned() {
        let answer = oracle.answer(&p.question).expect("perfect oracle");
        let item = match &answer {
            Answer::Bool(b) => format!("{{\"seq\":{},\"bool\":{b}}}", p.seq),
            Answer::MissingAnswer(None) => format!("{{\"seq\":{},\"missing\":null}}", p.seq),
            Answer::MissingAnswer(Some(t)) => {
                let cells: Vec<String> = t
                    .values()
                    .iter()
                    .map(|v| format!("\"{}\"", tagged_value(v)))
                    .collect();
                format!("{{\"seq\":{},\"missing\":[{}]}}", p.seq, cells.join(","))
            }
            other => panic!("figure 1 never asks for {other:?}"),
        };
        items.push(item);
        m.submit(p.seq, Ok(answer)).expect("mirror submission");
    }
    assert!(items.len() >= 3, "figure 1 takes a few questions");
    items
}

fn report_text(body: &str) -> String {
    // pull the `"report_text":"…"` JSON string field out by hand
    let start = body
        .find("\"report_text\":\"")
        .expect("report_text present")
        + "\"report_text\":\"".len();
    let mut out = String::new();
    let mut chars = body[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => break,
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(c) => out.push(c),
                None => break,
            },
            c => out.push(c),
        }
    }
    out
}

#[test]
fn killed_and_rehydrated_session_matches_the_uninterrupted_run_byte_for_byte() {
    let items = figure1_answer_items();

    // --- the uninterrupted baseline ---
    let store_a = tmp_store("baseline");
    let server_a = Server::start(&store_a, &[]);
    let (status, _) = server_a.http("POST", "/sessions", "{\"example\":\"figure1\"}");
    assert_eq!(status, "201 Created");
    let batch = format!("{{\"epoch\":1,\"answers\":[{}]}}", items.join(","));
    let (status, body) = server_a.http("POST", "/sessions/s1/answers", &batch);
    assert_eq!(status, "200 OK", "{body}");
    assert_eq!(body.matches("\"status\":\"applied\"").count(), items.len());
    let (status, body) = server_a.http("GET", "/sessions/s1/report", "");
    assert_eq!(status, "200 OK", "{body}");
    assert!(body.contains("\"partial\":false"), "{body}");
    let baseline = report_text(&body);
    assert!(baseline.contains("1 wrong answer(s) removed"), "{baseline}");
    drop(server_a);
    let _ = std::fs::remove_dir_all(&store_a);

    // --- the chaos run: kill -9 after the first answer ---
    let store_b = tmp_store("chaos");
    let mut server_b = Server::start(&store_b, &[]);
    let (status, _) = server_b.http("POST", "/sessions", "{\"example\":\"figure1\"}");
    assert_eq!(status, "201 Created");
    let first = format!("{{\"epoch\":1,\"answers\":[{}]}}", items[0]);
    let (status, body) = server_b.http("POST", "/sessions/s1/answers", &first);
    assert_eq!(status, "200 OK", "{body}");
    assert!(body.contains("\"status\":\"applied\""), "{body}");
    server_b.kill_9();

    // a fresh process over the same store rehydrates the parked session
    let server_c = Server::start(&store_b, &[]);
    let (status, body) = server_c.http("GET", "/sessions/s1/pending", "");
    assert_eq!(status, "200 OK", "{body}");
    assert!(
        body.contains("\"epoch\":2"),
        "restart bumps the epoch: {body}"
    );
    assert!(
        body.contains("\"seq\":2"),
        "parked on the next question: {body}"
    );

    // a pre-crash submitter retries its answer under the old epoch:
    // acknowledged as stale, not applied
    let (status, body) = server_c.http("POST", "/sessions/s1/answers", &first);
    assert_eq!(status, "200 OK", "{body}");
    assert!(body.contains("\"status\":\"stale\""), "{body}");
    assert!(body.contains("\"seq\":2"), "still parked on seq 2: {body}");

    // a duplicate of the consumed answer under the current epoch
    let dup = format!("{{\"epoch\":2,\"answers\":[{}]}}", items[0]);
    let (status, body) = server_c.http("POST", "/sessions/s1/answers", &dup);
    assert_eq!(status, "200 OK", "{body}");
    assert!(body.contains("\"status\":\"duplicate\""), "{body}");

    // finish under the new epoch and compare reports byte for byte
    let rest = format!("{{\"epoch\":2,\"answers\":[{}]}}", items[1..].join(","));
    let (status, body) = server_c.http("POST", "/sessions/s1/answers", &rest);
    assert_eq!(status, "200 OK", "{body}");
    let (status, body) = server_c.http("GET", "/sessions/s1/report", "");
    assert_eq!(status, "200 OK", "{body}");
    assert!(body.contains("\"partial\":false"), "{body}");
    assert_eq!(
        report_text(&body),
        baseline,
        "killed+rehydrated report must be byte-identical to the uninterrupted run"
    );
    drop(server_c);
    let _ = std::fs::remove_dir_all(&store_b);
}

#[test]
fn health_and_404_expose_the_session_routes() {
    let store = tmp_store("routes");
    let server = Server::start(&store, &[]);
    let (status, _) = server.http("POST", "/sessions", "{\"example\":\"figure1\"}");
    assert_eq!(status, "201 Created");
    let (status, body) = server.http("GET", "/health", "");
    assert_eq!(status, "200 OK");
    assert!(
        body.contains("\"sessions\":{\"active\":1,\"parked\":1}"),
        "{body}"
    );
    let (status, body) = server.http("GET", "/no-such-route", "");
    assert_eq!(status, "404 Not Found");
    assert!(body.contains("POST /sessions"), "{body}");
    assert!(body.contains("GET /sessions/{id}/report"), "{body}");
    drop(server);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn the_reaper_expires_abandoned_sessions_into_partial_reports() {
    let store = tmp_store("reaper");
    let server = Server::start(&store, &["--deadline-ms", "50", "--reap-interval-ms", "25"]);
    let (status, _) = server.http("POST", "/sessions", "{\"example\":\"figure1\"}");
    assert_eq!(status, "201 Created");
    // abandon the session; the reaper thread must expire it
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = server.http("GET", "/sessions/s1/report", "");
        if status == "200 OK" {
            assert!(body.contains("\"partial\":true"), "{body}");
            assert!(body.contains("PARTIAL REPORT"), "{body}");
            break;
        }
        assert_eq!(status, "409 Conflict", "{body}");
        assert!(
            std::time::Instant::now() < deadline,
            "reaper never expired the session"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&store);
}
