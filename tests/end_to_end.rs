//! Cross-crate integration: the full QOCO pipeline on the paper-scale
//! Soccer and DBGroup datasets.

use std::collections::BTreeSet;

use qoco::core::{clean_view, CleaningConfig, DeletionStrategy, SplitStrategyKind};
use qoco::crowd::{Chao92Estimator, PerfectOracle, SamplingOracle, SingleExpert};
use qoco::data::{diff, Database, Tuple};
use qoco::datasets::{
    dbgroup_queries, generate_dbgroup, generate_soccer, inject_noise, plant_mixed, soccer_queries,
    DbGroupConfig, NoiseSpec, SoccerConfig,
};
use qoco::engine::answer_set;
use qoco::query::ConjunctiveQuery;

fn true_answers(ground: &Database, q: &ConjunctiveQuery) -> Vec<Tuple> {
    let gm = ground.clone();
    answer_set(q, &gm)
}

#[test]
fn every_soccer_query_converges_after_planted_noise() {
    let ground = generate_soccer(SoccerConfig::default());
    for (i, q) in soccer_queries(ground.schema()).iter().enumerate() {
        let planted = plant_mixed(q, &ground, 2, 2, 100 + i as u64);
        assert_eq!(planted.wrong.len(), 2, "{}", q.name());
        assert_eq!(planted.missing.len(), 2, "{}", q.name());
        let mut d = planted.db;
        let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
        let report = clean_view(q, &mut d, &mut crowd, CleaningConfig::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", q.name()));
        assert_eq!(
            answer_set(q, &d),
            true_answers(&ground, q),
            "{} did not converge to the true result",
            q.name()
        );
        // removing one planted error can fix another as a side effect
        // (shared facts), so the report's counts are lower-bounded by 1,
        // not by the planted count
        assert!(report.wrong_answers >= 1, "{}", q.name());
        assert!(report.missing_answers >= 1, "{}", q.name());
        assert_eq!(report.anomalies, 0, "{}", q.name());
    }
}

#[test]
fn every_dbgroup_query_converges_after_planted_noise() {
    let ground = generate_dbgroup(DbGroupConfig::default());
    for (i, q) in dbgroup_queries(ground.schema()).iter().enumerate() {
        let planted = plant_mixed(q, &ground, 1, 2, 300 + i as u64);
        let mut d = planted.db;
        let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
        clean_view(q, &mut d, &mut crowd, CleaningConfig::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", q.name()));
        assert_eq!(answer_set(q, &d), true_answers(&ground, q), "{}", q.name());
    }
}

#[test]
fn cleanliness_noise_cleans_up_on_q1() {
    // global (query-oblivious) noise at the paper's default 80% cleanliness
    let ground = generate_soccer(SoccerConfig::default());
    let q = &soccer_queries(ground.schema())[0];
    let mut d = inject_noise(
        &ground,
        NoiseSpec {
            cleanliness: 0.9,
            skewness: 0.5,
            seed: 5,
        },
    );
    let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
    let config = CleaningConfig {
        max_iterations: 60,
        ..Default::default()
    };
    clean_view(q, &mut d, &mut crowd, config).expect("perfect-oracle cleaning converges");
    assert_eq!(answer_set(q, &d), true_answers(&ground, q));
}

#[test]
fn edits_never_increase_the_distance_to_ground_truth() {
    // Proposition 3.3 on a full paper-scale run
    let ground = generate_soccer(SoccerConfig::default());
    let q = &soccer_queries(ground.schema())[2]; // Q3, the biggest
    let planted = plant_mixed(q, &ground, 3, 3, 9);
    let d0 = planted.db;
    let mut d = d0.clone();
    let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
    let report = clean_view(q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
    let mut replay = d0;
    let mut dist = diff(&replay, &ground).unwrap().distance();
    for e in report.edits.edits() {
        replay.apply(e).unwrap();
        let next = diff(&replay, &ground).unwrap().distance();
        assert!(next <= dist, "edit {e:?} violates Proposition 3.3");
        dist = next;
    }
}

#[test]
fn all_strategy_combinations_converge_on_q4() {
    let ground = generate_soccer(SoccerConfig::default());
    let q = &soccer_queries(ground.schema())[3];
    let planted = plant_mixed(q, &ground, 2, 1, 77);
    let truth = true_answers(&ground, q);
    for deletion in [
        DeletionStrategy::Qoco,
        DeletionStrategy::QocoMinus,
        DeletionStrategy::Random(13),
    ] {
        for split in [
            SplitStrategyKind::Provenance,
            SplitStrategyKind::MinCut,
            SplitStrategyKind::Random(13),
            SplitStrategyKind::Naive,
        ] {
            let mut d = planted.db.clone();
            let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
            let config = CleaningConfig {
                deletion,
                split,
                ..Default::default()
            };
            clean_view(q, &mut d, &mut crowd, config)
                .unwrap_or_else(|e| panic!("{deletion:?}/{split:?}: {e}"));
            assert_eq!(answer_set(q, &d), truth, "{deletion:?}/{split:?}");
        }
    }
}

#[test]
fn qoco_never_asks_more_deletion_questions_than_qoco_minus() {
    let ground = generate_soccer(SoccerConfig::default());
    for (qi, seed) in [(0usize, 41u64), (1, 42), (2, 43)] {
        let q = &soccer_queries(ground.schema())[qi];
        let planted = qoco::datasets::plant_wrong_answers(q, &ground, 3, 3, seed);
        let run = |strategy| {
            let mut d = planted.db.clone();
            let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
            let config = CleaningConfig {
                deletion: strategy,
                ..Default::default()
            };
            let report = clean_view(q, &mut d, &mut crowd, config).unwrap();
            report.deletion_stats.verify_fact_questions
        };
        let qoco = run(DeletionStrategy::Qoco);
        let minus = run(DeletionStrategy::QocoMinus);
        assert!(
            qoco <= minus,
            "{}: QOCO asked {qoco} > QOCO- {minus}",
            q.name()
        );
    }
}

#[test]
fn statistical_stopping_rule_with_a_sampling_crowd() {
    // The full Trushkowsky-style pipeline: an enumerating crowd that
    // answers COMPL(Q(D)) by sampling the true answer set, with the Chao92
    // black-box deciding when the result is complete (Section 6.1).
    let ground = generate_soccer(SoccerConfig::default());
    let q = &soccer_queries(ground.schema())[0]; // Q1 (7 true answers)
    let planted = qoco::datasets::plant_missing_answers(q, &ground, 2, 3);
    let mut d = planted.db;
    let mut crowd = SingleExpert::new(SamplingOracle::new(ground.clone(), 5, 0.0));
    let mut estimator = Chao92Estimator::new();
    let config = CleaningConfig {
        max_iterations: 40,
        ..Default::default()
    };
    let report = qoco::core::cleaner::clean_view_with_estimator(
        q,
        &mut d,
        &mut crowd,
        config,
        &mut estimator,
    )
    .expect("sampling crowd converges under the statistical stopping rule");
    // the statistical rule can stop marginally early, but with only 2
    // planted missing answers and repeated sampling the repaired view must
    // reach the truth
    assert_eq!(answer_set(q, &d), true_answers(&ground, q));
    assert!(
        report.total_stats.complete_result_tasks >= 2,
        "sampling asks repeatedly"
    );
    assert!(estimator.estimate().is_some());
}

#[test]
fn cleaning_is_idempotent() {
    // running the cleaner again on the already-clean view asks only
    // verification questions and applies no edits
    let ground = generate_soccer(SoccerConfig::default());
    let q = &soccer_queries(ground.schema())[0];
    let planted = plant_mixed(q, &ground, 2, 1, 55);
    let mut d = planted.db;
    let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
    clean_view(q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
    let mut crowd2 = SingleExpert::new(PerfectOracle::new(ground.clone()));
    let second = clean_view(q, &mut d, &mut crowd2, CleaningConfig::default()).unwrap();
    assert!(second.edits.is_empty());
    assert_eq!(second.wrong_answers, 0);
    assert_eq!(second.missing_answers, 0);
}

#[test]
fn cleaning_one_view_may_leave_the_database_dirty() {
    // The paper: Q(D') = Q(D_G) may hold while D' ≠ D_G — QOCO cleans only
    // what the view needs.
    let ground = generate_soccer(SoccerConfig::default());
    let q = &soccer_queries(ground.schema())[0];
    // noise touching relations Q1 never reads (Clubs)
    let mut d = ground.clone();
    let clubs = ground.schema().rel_id("Clubs").unwrap();
    let some_club = ground.relation(clubs).sorted()[0].clone();
    d.remove(&qoco::data::Fact::new(clubs, some_club)).unwrap();
    let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
    let report = clean_view(q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
    assert!(report.edits.is_empty(), "Q1 does not read Clubs");
    assert_ne!(
        diff(&d, &ground).unwrap().distance(),
        0,
        "D' is still not D_G"
    );
    assert_eq!(answer_set(q, &d), true_answers(&ground, q));
}

#[test]
fn planted_answer_sets_are_disjoint_from_truth() {
    let ground = generate_soccer(SoccerConfig::default());
    let q = &soccer_queries(ground.schema())[4]; // Q5
    let planted = plant_mixed(q, &ground, 3, 2, 21);
    let d = planted.db.clone();
    let dirty: BTreeSet<Tuple> = answer_set(q, &d).into_iter().collect();
    let truth: BTreeSet<Tuple> = true_answers(&ground, q).into_iter().collect();
    for w in &planted.wrong {
        assert!(dirty.contains(w) && !truth.contains(w));
    }
    for m in &planted.missing {
        assert!(!dirty.contains(m) && truth.contains(m));
    }
}

#[test]
fn count_threshold_unfolding_matches_aggregate_semantics() {
    // Section 9's aggregate fragment: `at least k distinct d` unfolds into
    // a self-join CQ; checked against real counting on the soccer DB.
    use qoco::query::{parse_query, unfold_at_least, Var};
    let ground = generate_soccer(SoccerConfig::default());
    let template = parse_query(
        ground.schema(),
        r#"W(x) :- Games(d, x, y, "Final", u), Teams(x, "EU")"#,
    )
    .unwrap();
    // ground-truth final-win counts per European team
    let games = ground.schema().rel_id("Games").unwrap();
    let teams = ground.schema().rel_id("Teams").unwrap();
    let eu: BTreeSet<qoco::data::Value> = ground
        .relation(teams)
        .iter()
        .filter(|t| t.values()[1] == qoco::data::Value::text("EU"))
        .map(|t| t.values()[0].clone())
        .collect();
    let mut wins: std::collections::HashMap<qoco::data::Value, BTreeSet<qoco::data::Value>> =
        Default::default();
    for g in ground.relation(games).iter() {
        if g.values()[3] == qoco::data::Value::text("Final") && eu.contains(&g.values()[1]) {
            wins.entry(g.values()[1].clone())
                .or_default()
                .insert(g.values()[0].clone());
        }
    }
    for k in 1..=4usize {
        let q = unfold_at_least(&template, &Var::new("d"), k).unwrap();
        let db = ground.clone();
        let got: BTreeSet<qoco::data::Value> = answer_set(&q, &db)
            .into_iter()
            .map(|t| t.values()[0].clone())
            .collect();
        let expected: BTreeSet<qoco::data::Value> = wins
            .iter()
            .filter(|(_, dates)| dates.len() >= k)
            .map(|(team, _)| team.clone())
            .collect();
        assert_eq!(got, expected, "k = {k}");
    }
}

#[test]
fn count_threshold_view_cleans_like_any_other() {
    // the unfolded aggregate view runs through the unchanged Algorithm 3
    use qoco::query::{parse_query, unfold_at_least, Var};
    let ground = generate_soccer(SoccerConfig::default());
    let template = parse_query(
        ground.schema(),
        r#"W(x) :- Games(d, x, y, "Final", u), Teams(x, "EU")"#,
    )
    .unwrap();
    let q = unfold_at_least(&template, &Var::new("d"), 2).unwrap();
    let planted = plant_mixed(&q, &ground, 1, 1, 33);
    let mut d = planted.db;
    let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
    clean_view(&q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
    assert_eq!(answer_set(&q, &d), true_answers(&ground, &q));
}
