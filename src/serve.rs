//! The `qoco-serve` session service: parked cleaning sessions over HTTP.
//!
//! This module turns the resumable [`SessionMachine`] into a multi-session
//! JSON API served by the telemetry crate's [`MetricsServer`] listener:
//!
//! | route | effect |
//! |-------|--------|
//! | `POST /sessions` | create a session (inline spec or `{"example":"figure1"}`), park on its first question |
//! | `GET /sessions` | list sessions with state and epoch |
//! | `GET /sessions/{id}/pending` | the question batch the session is parked on |
//! | `POST /sessions/{id}/answers` | submit answers (idempotent; see below) |
//! | `GET /sessions/{id}/report` | the final cleaning report once finished |
//!
//! ## Robustness model
//!
//! Every accepted answer is persisted to the session's write-ahead journal
//! (`SessionStore::append_answer`) *before* it is applied in memory, so a
//! `kill -9` at any point loses nothing that was acknowledged. On restart
//! the registry rehydrates every session directory it finds — spec +
//! journal → [`SessionMachine::rehydrate`] — and, because cleaning is a
//! deterministic function of the answer sequence, each session parks on
//! exactly the question it was parked on, and its eventual report is
//! byte-identical to an uninterrupted run's.
//!
//! Submission is idempotent, keyed by question id (`seq`) + session
//! *epoch*. The epoch counts rehydrations: answers addressed to an older
//! epoch raced a crash and are acknowledged as `stale` without being
//! applied; re-submitting an already-consumed `seq` under the current
//! epoch is acknowledged as `duplicate`. Only the answer for the exact
//! pending `seq` is applied.
//!
//! Sessions carry an idle deadline; [`SessionRegistry::reap_idle`]
//! (driven by the binary's reaper thread) expires sessions that outlive
//! it by recording a `dropped` fault — the cleaner then terminates with a
//! PARTIAL REPORT through the ordinary unresolved machinery, and the
//! report stays fetchable. The registry also bounds the number of live
//! parked sessions, shedding creation with `429` beyond the cap.
//!
//! `sessions.active` / `sessions.parked` gauges and the
//! `sessions.reaped` / `serve.rejected` / `journal.write_errors` counters
//! make all of the above observable on `/metrics` and `/health`.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use qoco_bench::json::Json;
use qoco_core::{
    deletion_from_str, split_from_str, CleaningConfig, SessionMachine, SessionSpec, SessionState,
    SessionStore, SubmitError, SubmitOutcome,
};
use qoco_crowd::{
    parse_tagged_value, tagged_value, Answer, OracleError, PendingQuestion, Question,
};
use qoco_data::{Database, Fact, Schema, Tuple, Value};
use qoco_engine::Assignment;
use qoco_query::{parse_query, Var};
use qoco_telemetry::{HttpRequest, HttpResponse, RouteHandler};

// ---------------------------------------------------------------------------
// JSON rendering

/// Append `s` as a JSON string literal.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_tuple(out: &mut String, t: &Tuple) {
    out.push('[');
    for (i, v) in t.values().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, &tagged_value(v));
    }
    out.push(']');
}

fn push_fact(out: &mut String, schema: &Schema, f: &Fact) {
    out.push_str("{\"rel\":");
    push_json_str(out, schema.rel_name(f.rel));
    out.push_str(",\"tuple\":");
    push_tuple(out, &f.tuple);
    out.push('}');
}

fn push_assignment(out: &mut String, a: &Assignment) {
    out.push('{');
    for (i, (var, value)) in a.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, var.name());
        out.push(':');
        push_json_str(out, &tagged_value(value));
    }
    out.push('}');
}

/// Render a pending question for the API: the flat envelope (seq, kind,
/// prompt, decision) plus a kind-specific payload rich enough for a
/// remote answerer to answer without access to this process.
fn push_pending(out: &mut String, schema: &Schema, p: &PendingQuestion) {
    out.push_str(&format!("{{\"seq\":{},\"kind\":", p.seq));
    push_json_str(out, p.kind.as_str());
    out.push_str(",\"prompt\":");
    push_json_str(out, &p.prompt);
    out.push_str(",\"decision\":");
    match p.decision {
        Some(d) => out.push_str(&d.to_string()),
        None => out.push_str("null"),
    }
    match &p.question {
        Question::VerifyFact(f) => {
            out.push_str(",\"fact\":");
            push_fact(out, schema, f);
        }
        Question::VerifyAllFacts(facts) => {
            out.push_str(",\"facts\":[");
            for (i, f) in facts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_fact(out, schema, f);
            }
            out.push(']');
        }
        Question::VerifyAnswer { query, answer } => {
            out.push_str(",\"query\":");
            push_json_str(out, query.name());
            out.push_str(",\"answer\":");
            push_tuple(out, answer);
        }
        Question::VerifySatisfiable { query, partial } => {
            out.push_str(",\"query\":");
            push_json_str(out, query.name());
            out.push_str(",\"query_display\":");
            push_json_str(out, &query.display());
            out.push_str(",\"partial\":");
            push_assignment(out, partial);
        }
        Question::Complete { query, partial } => {
            out.push_str(",\"query\":");
            push_json_str(out, query.name());
            out.push_str(",\"query_display\":");
            push_json_str(out, &query.display());
            out.push_str(",\"partial\":");
            push_assignment(out, partial);
        }
        Question::CompleteResult { query, known } => {
            out.push_str(",\"query\":");
            push_json_str(out, query.name());
            out.push_str(",\"known\":[");
            for (i, t) in known.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_tuple(out, t);
            }
            out.push(']');
        }
    }
    out.push('}');
}

fn state_name(state: &SessionState) -> &'static str {
    match state {
        SessionState::AwaitingAnswers(_) => "awaiting",
        SessionState::Finished(_) => "finished",
        SessionState::Failed(_) => "failed",
    }
}

fn error_body(message: &str) -> String {
    let mut out = String::from("{\"error\":");
    push_json_str(&mut out, message);
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// JSON request decoding

fn json_value_to_value(v: &Json) -> Result<Value, String> {
    match v {
        Json::String(s) => Ok(Value::text(s)),
        Json::Number(n) if n.fract() == 0.0 && n.abs() < 9e15 => Ok(Value::int(*n as i64)),
        other => Err(format!("expected a string or integer cell, got {other:?}")),
    }
}

/// Parse a `["s:GER","i:1990"]` tagged-value array into a tuple.
fn tagged_tuple(v: &Json) -> Result<Tuple, String> {
    let items = v.as_array().ok_or("expected a tuple array")?;
    let values: Result<Vec<Value>, String> = items
        .iter()
        .map(|item| {
            let s = item.as_str().ok_or("tuple cells must be tagged strings")?;
            parse_tagged_value(s)
        })
        .collect();
    Ok(Tuple::new(values?))
}

/// Decode one answer item from `POST /answers`. Shapes:
/// `{"seq":1,"bool":true}`, `{"seq":2,"completion":{"x":"s:GER"}|null}`,
/// `{"seq":3,"missing":["s:ITA"]|null}`, `{"seq":4,"fault":"abstain"}`.
fn decode_answer(item: &Json) -> Result<(u64, Result<Answer, OracleError>), String> {
    let seq = item
        .get("seq")
        .and_then(Json::as_f64)
        .filter(|s| s.fract() == 0.0 && *s >= 1.0)
        .ok_or("answer item needs a positive integer `seq`")? as u64;
    if let Some(fault) = item.get("fault") {
        let tag = fault.as_str().ok_or("`fault` must be a string")?;
        let err = OracleError::parse(tag).ok_or_else(|| format!("unknown fault {tag:?}"))?;
        return Ok((seq, Err(err)));
    }
    if let Some(b) = item.get("bool") {
        return match b {
            Json::Bool(b) => Ok((seq, Ok(Answer::Bool(*b)))),
            _ => Err("`bool` must be true or false".to_string()),
        };
    }
    if let Some(completion) = item.get("completion") {
        return match completion {
            Json::Null => Ok((seq, Ok(Answer::Completion(None)))),
            Json::Object(map) => {
                let mut a = Assignment::new();
                for (var, value) in map {
                    let s = value
                        .as_str()
                        .ok_or("completion bindings must be tagged strings")?;
                    a.bind(Var::new(var.clone()), parse_tagged_value(s)?);
                }
                Ok((seq, Ok(Answer::Completion(Some(a)))))
            }
            _ => Err("`completion` must be an object or null".to_string()),
        };
    }
    if let Some(missing) = item.get("missing") {
        return match missing {
            Json::Null => Ok((seq, Ok(Answer::MissingAnswer(None)))),
            arr => Ok((seq, Ok(Answer::MissingAnswer(Some(tagged_tuple(arr)?))))),
        };
    }
    Err("answer item needs one of `bool`, `completion`, `missing`, `fault`".to_string())
}

/// Decode the `POST /sessions` body into a spec: either a named example
/// or an inline schema + rows + query.
fn decode_spec(body: &Json) -> Result<SessionSpec, String> {
    let mut spec = if let Some(example) = body.get("example") {
        match example.as_str() {
            Some("figure1") => figure1_spec(),
            Some(other) => return Err(format!("unknown example {other:?} (try \"figure1\")")),
            None => return Err("`example` must be a string".to_string()),
        }
    } else {
        let schema_json = body
            .get("schema")
            .and_then(Json::as_array)
            .ok_or("`schema` must be an array of {name, attrs} relations")?;
        let mut builder = Schema::builder();
        for rel in schema_json {
            let name = rel
                .get("name")
                .and_then(Json::as_str)
                .ok_or("each relation needs a string `name`")?;
            let attrs: Vec<&str> = rel
                .get("attrs")
                .and_then(Json::as_array)
                .ok_or("each relation needs an `attrs` array")?
                .iter()
                .map(|a| a.as_str().ok_or("attrs must be strings"))
                .collect::<Result<_, _>>()?;
            builder = builder.relation(name, &attrs);
        }
        let schema = builder.build().map_err(|e| e.to_string())?;
        let mut dirty = Database::empty(schema.clone());
        if let Some(Json::Object(rows)) = body.get("rows") {
            for (rel, tuples) in rows {
                let tuples = tuples
                    .as_array()
                    .ok_or_else(|| format!("rows for {rel} must be an array"))?;
                for t in tuples {
                    let cells = t
                        .as_array()
                        .ok_or("each row must be an array of cells")?
                        .iter()
                        .map(json_value_to_value)
                        .collect::<Result<Vec<_>, _>>()?;
                    dirty
                        .insert_named(rel, Tuple::new(cells))
                        .map_err(|e| e.to_string())?;
                }
            }
        }
        let query_text = body
            .get("query")
            .and_then(Json::as_str)
            .ok_or("`query` must be a datalog string")?;
        let query = parse_query(dirty.schema(), query_text).map_err(|e| e.to_string())?;
        SessionSpec {
            query,
            dirty,
            config: CleaningConfig::default(),
            deadline_ms: None,
        }
    };
    if let Some(d) = body.get("deletion") {
        let tag = d.as_str().ok_or("`deletion` must be a string")?;
        spec.config.deletion = deletion_from_str(tag)?;
    }
    if let Some(s) = body.get("split") {
        let tag = s.as_str().ok_or("`split` must be a string")?;
        spec.config.split = split_from_str(tag)?;
    }
    if let Some(ms) = body.get("deadline_ms") {
        let ms = ms
            .as_f64()
            .filter(|v| v.fract() == 0.0 && *v > 0.0)
            .ok_or("`deadline_ms` must be a positive integer")?;
        spec.deadline_ms = Some(ms as u64);
    }
    Ok(spec)
}

// ---------------------------------------------------------------------------
// the built-in example

/// The paper's Figure 1 fixture (the session created by
/// `{"example":"figure1"}`); canonical definition in [`qoco_core::figure1`].
pub use qoco_core::{figure1_ground, figure1_spec};

// ---------------------------------------------------------------------------
// the registry

/// Tunables for [`SessionRegistry`].
pub struct ServeOptions {
    /// Live (unfinished) session cap; creation beyond it is shed with
    /// `429` and counted into `serve.rejected`.
    pub max_sessions: usize,
    /// Idle deadline applied to sessions whose spec carries none.
    pub default_deadline_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_sessions: 256,
            default_deadline_ms: 600_000,
        }
    }
}

struct LiveSession {
    machine: SessionMachine,
    epoch: u64,
    last_activity: Instant,
}

/// The multi-session registry behind the `/sessions` routes; see the
/// module docs for the protocol.
pub struct SessionRegistry {
    store: SessionStore,
    options: ServeOptions,
    inner: Mutex<BTreeMap<String, LiveSession>>,
}

impl SessionRegistry {
    /// Open the registry over `store`, rehydrating (and epoch-bumping)
    /// every session directory already present — the crash-recovery path.
    pub fn open(store: SessionStore, options: ServeOptions) -> std::io::Result<SessionRegistry> {
        let mut sessions = BTreeMap::new();
        for id in store.list()? {
            let (spec, log) = store.load(&id)?;
            let epoch = store.bump_epoch(&id)?;
            let machine = SessionMachine::rehydrate(spec, log);
            sessions.insert(
                id,
                LiveSession {
                    machine,
                    epoch,
                    last_activity: Instant::now(),
                },
            );
        }
        let registry = SessionRegistry {
            store,
            options,
            inner: Mutex::new(sessions),
        };
        registry.publish_gauges(&registry.lock());
        Ok(registry)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, LiveSession>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sessions currently parked on a question.
    pub fn parked(&self) -> usize {
        self.lock()
            .values()
            .filter(|s| matches!(s.machine.state(), SessionState::AwaitingAnswers(_)))
            .count()
    }

    /// Sessions in the registry (any state).
    pub fn active(&self) -> usize {
        self.lock().len()
    }

    fn publish_gauges(&self, sessions: &BTreeMap<String, LiveSession>) {
        let parked = sessions
            .values()
            .filter(|s| matches!(s.machine.state(), SessionState::AwaitingAnswers(_)))
            .count();
        qoco_telemetry::gauge_set("sessions.active", sessions.len() as f64);
        qoco_telemetry::gauge_set("sessions.parked", parked as f64);
    }

    /// Expire sessions idle past their deadline: record a `dropped` fault
    /// (write-ahead, best-effort on a failing disk) so the cleaner
    /// terminates with a PARTIAL REPORT. Returns the ids reaped.
    pub fn reap_idle(&self) -> Vec<String> {
        let mut sessions = self.lock();
        let mut reaped = Vec::new();
        for (id, live) in sessions.iter_mut() {
            if !matches!(live.machine.state(), SessionState::AwaitingAnswers(_)) {
                continue;
            }
            let deadline = Duration::from_millis(
                live.machine
                    .spec()
                    .deadline_ms
                    .unwrap_or(self.options.default_deadline_ms),
            );
            if live.last_activity.elapsed() < deadline {
                continue;
            }
            if let Some(record) = live.machine.expire() {
                // Best-effort: if the journal is unwritable the in-memory
                // expiry still stands; the record is regenerated on the
                // next rehydration's expiry pass.
                if self.store.append_answer(id, &record).is_err() {
                    qoco_telemetry::counter_add("journal.write_errors", 1);
                }
            }
            qoco_telemetry::counter_add("sessions.reaped", 1);
            reaped.push(id.clone());
        }
        if !reaped.is_empty() {
            self.publish_gauges(&sessions);
        }
        reaped
    }

    /// Direct (non-HTTP) handle to one session's pending question — for
    /// in-process drivers and tests.
    pub fn with_session<T>(
        &self,
        id: &str,
        f: impl FnOnce(&SessionMachine, u64) -> T,
    ) -> Option<T> {
        let sessions = self.lock();
        sessions.get(id).map(|live| f(&live.machine, live.epoch))
    }

    // -- route bodies -------------------------------------------------------

    fn create_session(&self, body: &[u8]) -> HttpResponse {
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => {
                return HttpResponse::json("400 Bad Request", error_body("body is not UTF-8"))
            }
        };
        let json = match Json::parse(text) {
            Ok(j) => j,
            Err(e) => {
                return HttpResponse::json("400 Bad Request", error_body(&format!("bad JSON: {e}")))
            }
        };
        let spec = match decode_spec(&json) {
            Ok(s) => s,
            Err(e) => return HttpResponse::json("400 Bad Request", error_body(&e)),
        };
        let mut sessions = self.lock();
        let live_count = sessions
            .values()
            .filter(|s| matches!(s.machine.state(), SessionState::AwaitingAnswers(_)))
            .count();
        if live_count >= self.options.max_sessions {
            qoco_telemetry::counter_add("serve.rejected", 1);
            qoco_telemetry::counter_add("serve.rejected.cap", 1);
            return HttpResponse::json(
                "429 Too Many Requests",
                error_body("session limit reached, retry later"),
            );
        }
        let next = sessions
            .keys()
            .filter_map(|id| id.strip_prefix('s').and_then(|n| n.parse::<u64>().ok()))
            .max()
            .unwrap_or(0)
            + 1;
        let id = format!("s{next}");
        qoco_telemetry::set_request_session(&id);
        if let Err(e) = self.store.create(&id, &spec) {
            return HttpResponse::json(
                "500 Internal Server Error",
                error_body(&format!("cannot persist session: {e}")),
            );
        }
        let machine = SessionMachine::new(spec);
        sessions.insert(
            id.clone(),
            LiveSession {
                machine,
                epoch: 1,
                last_activity: Instant::now(),
            },
        );
        self.publish_gauges(&sessions);
        let live = sessions.get(&id).expect("just inserted");
        let body = session_status_body(&id, live);
        HttpResponse::json("201 Created", body)
    }

    fn list_sessions(&self) -> HttpResponse {
        let sessions = self.lock();
        let mut out = String::from("{\"sessions\":[");
        for (i, (id, live)) in sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            push_json_str(&mut out, id);
            out.push_str(&format!(
                ",\"state\":\"{}\",\"epoch\":{},\"answers\":{}}}",
                state_name(live.machine.state()),
                live.epoch,
                live.machine.log().len()
            ));
        }
        out.push_str("]}\n");
        HttpResponse::json("200 OK", out)
    }

    fn pending_body(&self, id: &str) -> HttpResponse {
        let sessions = self.lock();
        let Some(live) = sessions.get(id) else {
            return HttpResponse::json("404 Not Found", error_body(&format!("no session {id}")));
        };
        HttpResponse::json("200 OK", session_status_body(id, live))
    }

    fn submit_answers(&self, id: &str, body: &[u8]) -> HttpResponse {
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => {
                return HttpResponse::json("400 Bad Request", error_body("body is not UTF-8"))
            }
        };
        let json = match Json::parse(text) {
            Ok(j) => j,
            Err(e) => {
                return HttpResponse::json("400 Bad Request", error_body(&format!("bad JSON: {e}")))
            }
        };
        let items = match json.get("answers").and_then(Json::as_array) {
            Some(items) => items,
            None => {
                return HttpResponse::json(
                    "400 Bad Request",
                    error_body("body needs an `answers` array"),
                )
            }
        };
        let mut sessions = self.lock();
        let Some(live) = sessions.get_mut(id) else {
            return HttpResponse::json("404 Not Found", error_body(&format!("no session {id}")));
        };
        // Epoch check: absent means "current"; older is stale (acked, not
        // applied); newer is the client's error.
        let epoch = match json.get("epoch") {
            None => live.epoch,
            Some(e) => match e.as_f64().filter(|v| v.fract() == 0.0 && *v >= 1.0) {
                Some(v) => v as u64,
                None => {
                    return HttpResponse::json(
                        "400 Bad Request",
                        error_body("`epoch` must be a positive integer"),
                    )
                }
            },
        };
        if epoch > live.epoch {
            return HttpResponse::json(
                "409 Conflict",
                error_body(&format!(
                    "epoch {epoch} is ahead of the session epoch {}",
                    live.epoch
                )),
            );
        }
        let stale = epoch < live.epoch;
        let mut status = "200 OK";
        let mut results = String::from("{\"results\":[");
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                results.push(',');
            }
            let (seq, outcome) = match decode_answer(item) {
                Ok(pair) => pair,
                Err(e) => {
                    status = "400 Bad Request";
                    results.push_str("{\"status\":\"malformed\",\"error\":");
                    push_json_str(&mut results, &e);
                    results.push('}');
                    continue;
                }
            };
            results.push_str(&format!("{{\"seq\":{seq},\"status\":"));
            if stale {
                // A pre-crash submitter: everything it could say about
                // this epoch is already in (or lost from) the journal.
                results.push_str("\"stale\"}");
                continue;
            }
            match live.machine.check_submission(seq, &outcome) {
                Ok(SubmitOutcome::Duplicate) => results.push_str("\"duplicate\"}"),
                Ok(SubmitOutcome::Applied) => {
                    // Write-ahead: persist, then apply. An unwritable
                    // journal must not let an unjournaled answer into the
                    // machine — the session is expired in memory instead.
                    let record = live
                        .machine
                        .record_for(outcome.clone())
                        .expect("checked: awaiting");
                    if self.store.append_answer(id, &record).is_err() {
                        qoco_telemetry::counter_add("journal.write_errors", 1);
                        live.machine.expire();
                        live.last_activity = Instant::now();
                        status = "503 Service Unavailable";
                        results.push_str(
                            "\"journal_error\",\"error\":\"journal unwritable; session expired \
                             into a partial report\"}",
                        );
                        continue;
                    }
                    live.machine
                        .submit(seq, outcome)
                        .expect("validated submission");
                    live.last_activity = Instant::now();
                    results.push_str("\"applied\"}");
                }
                Err(e) => {
                    status = match e {
                        SubmitError::NotAwaiting | SubmitError::OutOfOrder { .. } => "409 Conflict",
                        SubmitError::WrongShape | SubmitError::BadFault => "400 Bad Request",
                    };
                    results.push_str("\"rejected\",\"error\":");
                    push_json_str(&mut results, &e.to_string());
                    results.push('}');
                }
            }
        }
        results.push_str("],");
        let live = sessions.get(id).expect("still present");
        let tail = session_status_body(id, live);
        results.push_str(tail.trim_start_matches('{'));
        self.publish_gauges(&sessions);
        HttpResponse::json(status, results)
    }

    fn report_body(&self, id: &str) -> HttpResponse {
        let sessions = self.lock();
        let Some(live) = sessions.get(id) else {
            return HttpResponse::json("404 Not Found", error_body(&format!("no session {id}")));
        };
        match live.machine.state() {
            SessionState::AwaitingAnswers(_) => HttpResponse::json(
                "409 Conflict",
                error_body("session is still awaiting answers"),
            ),
            SessionState::Failed(e) => {
                let mut out = String::from("{\"state\":\"failed\",\"error\":");
                push_json_str(&mut out, e);
                out.push_str("}\n");
                HttpResponse::json("200 OK", out)
            }
            SessionState::Finished(f) => {
                let schema = live.machine.spec().dirty.schema().clone();
                let r = &f.report;
                let mut out = String::from("{\"session\":");
                push_json_str(&mut out, id);
                out.push_str(&format!(
                    ",\"epoch\":{},\"state\":\"finished\",\"partial\":{},\
                     \"iterations\":{},\"wrong_answers\":{},\"missing_answers\":{},\
                     \"questions\":{},\"unresolved\":{},\"edits\":[",
                    live.epoch,
                    r.is_partial(),
                    r.iterations,
                    r.wrong_answers,
                    r.missing_answers,
                    live.machine.log().len(),
                    r.unresolved.len(),
                ));
                for (i, e) in r.edits.edits().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"op\":");
                    push_json_str(
                        &mut out,
                        match e.kind {
                            qoco_data::EditKind::Insert => "insert",
                            qoco_data::EditKind::Delete => "delete",
                        },
                    );
                    out.push_str(",\"fact\":");
                    push_fact(&mut out, &schema, &e.fact);
                    out.push('}');
                }
                out.push_str("],\"report_text\":");
                push_json_str(&mut out, &format!("{r}"));
                out.push_str("}\n");
                HttpResponse::json("200 OK", out)
            }
        }
    }
}

/// The common `{session, epoch, state, pending:[…]}` status object.
fn session_status_body(id: &str, live: &LiveSession) -> String {
    let mut out = String::from("{\"session\":");
    push_json_str(&mut out, id);
    out.push_str(&format!(
        ",\"epoch\":{},\"state\":\"{}\",\"pending\":[",
        live.epoch,
        state_name(live.machine.state())
    ));
    if let Some(p) = live.machine.pending() {
        push_pending(&mut out, live.machine.spec().dirty.schema(), p);
    }
    out.push_str("]}\n");
    out
}

impl RouteHandler for SessionRegistry {
    fn handle(&self, req: &HttpRequest) -> Option<HttpResponse> {
        let route = req.route.as_str();
        match (req.method.as_str(), route) {
            ("POST", "/sessions") => return Some(self.create_session(&req.body)),
            ("GET", "/sessions") => return Some(self.list_sessions()),
            _ => {}
        }
        let rest = route.strip_prefix("/sessions/")?;
        let (id, action) = rest.split_once('/')?;
        if !SessionStore::valid_id(id) {
            return Some(HttpResponse::json(
                "400 Bad Request",
                error_body("malformed session id"),
            ));
        }
        // Tag the in-flight request with the session it touches, for the
        // access log and the /api/requests inspector.
        qoco_telemetry::set_request_session(id);
        match (req.method.as_str(), action) {
            ("GET", "pending") => Some(self.pending_body(id)),
            ("POST", "answers") => Some(self.submit_answers(id, &req.body)),
            ("GET", "report") => Some(self.report_body(id)),
            _ => None,
        }
    }

    fn route_summaries(&self) -> Vec<String> {
        vec![
            "POST /sessions".to_string(),
            "GET /sessions".to_string(),
            "GET /sessions/{id}/pending".to_string(),
            "POST /sessions/{id}/answers".to_string(),
            "GET /sessions/{id}/report".to_string(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_crowd::{Oracle, PerfectOracle};

    fn tmp_store(tag: &str) -> SessionStore {
        let dir = std::env::temp_dir().join(format!(
            "qoco-serve-{tag}-{}-{}",
            std::process::id(),
            qoco_telemetry::now_ns()
        ));
        SessionStore::open(dir).unwrap()
    }

    fn post(reg: &SessionRegistry, route: &str, body: &str) -> HttpResponse {
        reg.handle(&HttpRequest {
            method: "POST".to_string(),
            route: route.to_string(),
            query: String::new(),
            body: body.as_bytes().to_vec(),
            request_id: "qr-test".to_string(),
        })
        .expect("route handled")
    }

    fn get(reg: &SessionRegistry, route: &str) -> HttpResponse {
        reg.handle(&HttpRequest {
            method: "GET".to_string(),
            route: route.to_string(),
            query: String::new(),
            body: Vec::new(),
            request_id: "qr-test".to_string(),
        })
        .expect("route handled")
    }

    /// Answer s1's pending questions with the Figure 1 perfect oracle
    /// until the session leaves the awaiting state. Returns request count.
    fn drive(reg: &SessionRegistry, id: &str) -> usize {
        let mut oracle = PerfectOracle::new(figure1_ground());
        let mut rounds = 0;
        while let Some(Some((seq, question))) =
            reg.with_session(id, |m, _| m.pending().map(|p| (p.seq, p.question.clone())))
        {
            let answer = oracle.answer(&question).unwrap();
            let payload = match answer {
                Answer::Bool(b) => format!("{{\"answers\":[{{\"seq\":{seq},\"bool\":{b}}}]}}"),
                Answer::MissingAnswer(None) => {
                    format!("{{\"answers\":[{{\"seq\":{seq},\"missing\":null}}]}}")
                }
                other => panic!("figure1 never asks for {other:?}"),
            };
            let resp = post(reg, &format!("/sessions/{id}/answers"), &payload);
            assert_eq!(resp.status, "200 OK", "{}", resp.body);
            rounds += 1;
            assert!(rounds < 100, "session must converge");
        }
        rounds
    }

    #[test]
    fn create_drive_and_report_a_figure1_session() {
        let reg = SessionRegistry::open(tmp_store("lifecycle"), ServeOptions::default()).unwrap();
        let resp = post(&reg, "/sessions", "{\"example\":\"figure1\"}");
        assert_eq!(resp.status, "201 Created", "{}", resp.body);
        assert!(resp.body.contains("\"session\":\"s1\""), "{}", resp.body);
        assert!(
            resp.body.contains("\"state\":\"awaiting\""),
            "{}",
            resp.body
        );
        assert!(resp.body.contains("\"seq\":1"), "{}", resp.body);
        // the report is not available while parked
        let resp = get(&reg, "/sessions/s1/report");
        assert_eq!(resp.status, "409 Conflict", "{}", resp.body);
        drive(&reg, "s1");
        let resp = get(&reg, "/sessions/s1/report");
        assert_eq!(resp.status, "200 OK", "{}", resp.body);
        assert!(resp.body.contains("\"partial\":false"), "{}", resp.body);
        assert!(resp.body.contains("\"wrong_answers\":1"), "{}", resp.body);
        assert!(
            resp.body.contains("\"op\":\"delete\""),
            "the false final must be deleted: {}",
            resp.body
        );
        assert!(resp.body.contains("12.07.98"), "{}", resp.body);
        // listing shows the finished session
        let resp = get(&reg, "/sessions");
        assert!(
            resp.body.contains("\"state\":\"finished\""),
            "{}",
            resp.body
        );
        std::fs::remove_dir_all(reg.store.root()).ok();
    }

    #[test]
    fn unknown_sessions_and_bad_bodies_are_client_errors() {
        let reg = SessionRegistry::open(tmp_store("errors"), ServeOptions::default()).unwrap();
        assert_eq!(get(&reg, "/sessions/s9/pending").status, "404 Not Found");
        assert_eq!(get(&reg, "/sessions/s9/report").status, "404 Not Found");
        let resp = post(&reg, "/sessions", "not json");
        assert_eq!(resp.status, "400 Bad Request");
        let resp = post(&reg, "/sessions", "{\"example\":\"figure9\"}");
        assert_eq!(resp.status, "400 Bad Request");
        let resp = post(&reg, "/sessions", "{\"example\":\"figure1\"}");
        assert_eq!(resp.status, "201 Created");
        let resp = post(&reg, "/sessions/s1/answers", "{\"answers\":\"nope\"}");
        assert_eq!(resp.status, "400 Bad Request");
        // wrong shape for a boolean question
        let resp = post(
            &reg,
            "/sessions/s1/answers",
            "{\"answers\":[{\"seq\":1,\"missing\":null}]}",
        );
        assert_eq!(resp.status, "400 Bad Request", "{}", resp.body);
        // timeouts cannot be recorded
        let resp = post(
            &reg,
            "/sessions/s1/answers",
            "{\"answers\":[{\"seq\":1,\"fault\":\"timeout\"}]}",
        );
        assert_eq!(resp.status, "400 Bad Request", "{}", resp.body);
        // out-of-order future seq
        let resp = post(
            &reg,
            "/sessions/s1/answers",
            "{\"answers\":[{\"seq\":40,\"bool\":true}]}",
        );
        assert_eq!(resp.status, "409 Conflict", "{}", resp.body);
        std::fs::remove_dir_all(reg.store.root()).ok();
    }

    #[test]
    fn duplicates_and_stale_epochs_are_acknowledged_not_applied() {
        let reg = SessionRegistry::open(tmp_store("idem"), ServeOptions::default()).unwrap();
        post(&reg, "/sessions", "{\"example\":\"figure1\"}");
        let resp = post(
            &reg,
            "/sessions/s1/answers",
            "{\"epoch\":1,\"answers\":[{\"seq\":1,\"bool\":true}]}",
        );
        assert!(
            resp.body.contains("\"status\":\"applied\""),
            "{}",
            resp.body
        );
        let log_len = reg.with_session("s1", |m, _| m.log().len()).unwrap();
        // exact duplicate: acknowledged, log unchanged
        let resp = post(
            &reg,
            "/sessions/s1/answers",
            "{\"epoch\":1,\"answers\":[{\"seq\":1,\"bool\":true}]}",
        );
        assert_eq!(resp.status, "200 OK", "{}", resp.body);
        assert!(
            resp.body.contains("\"status\":\"duplicate\""),
            "{}",
            resp.body
        );
        assert_eq!(
            reg.with_session("s1", |m, _| m.log().len()).unwrap(),
            log_len
        );
        // a conflicting duplicate is also just acknowledged: the journal
        // already holds what the session consumed
        let resp = post(
            &reg,
            "/sessions/s1/answers",
            "{\"epoch\":1,\"answers\":[{\"seq\":1,\"bool\":false}]}",
        );
        assert!(
            resp.body.contains("\"status\":\"duplicate\""),
            "{}",
            resp.body
        );
        // stale epoch: acknowledged, not applied
        let resp = post(
            &reg,
            "/sessions/s1/answers",
            "{\"epoch\":0,\"answers\":[{\"seq\":2,\"bool\":true}]}",
        );
        assert_eq!(resp.status, "400 Bad Request", "{}", resp.body); // epoch 0 invalid
        let resp = post(
            &reg,
            "/sessions/s1/answers",
            "{\"epoch\":9,\"answers\":[{\"seq\":2,\"bool\":true}]}",
        );
        assert_eq!(resp.status, "409 Conflict", "{}", resp.body);
        assert_eq!(
            reg.with_session("s1", |m, _| m.log().len()).unwrap(),
            log_len
        );
        std::fs::remove_dir_all(reg.store.root()).ok();
    }

    #[test]
    fn restart_rehydrates_and_stales_the_old_epoch() {
        let store = tmp_store("restart");
        let root = store.root().to_path_buf();
        let reg = SessionRegistry::open(store, ServeOptions::default()).unwrap();
        post(&reg, "/sessions", "{\"example\":\"figure1\"}");
        post(
            &reg,
            "/sessions/s1/answers",
            "{\"epoch\":1,\"answers\":[{\"seq\":1,\"bool\":true}]}",
        );
        let pending_before = reg
            .with_session("s1", |m, _| m.pending().map(|p| (p.seq, p.prompt.clone())))
            .unwrap();
        drop(reg); // kill -9

        let reg =
            SessionRegistry::open(SessionStore::open(&root).unwrap(), ServeOptions::default())
                .unwrap();
        let (epoch, pending_after) = reg
            .with_session("s1", |m, e| {
                (e, m.pending().map(|p| (p.seq, p.prompt.clone())))
            })
            .unwrap();
        assert_eq!(epoch, 2, "restart bumps the epoch");
        assert_eq!(pending_after, pending_before, "parked on the same question");
        // an answer from before the crash is stale now
        let resp = post(
            &reg,
            "/sessions/s1/answers",
            "{\"epoch\":1,\"answers\":[{\"seq\":2,\"bool\":true}]}",
        );
        assert_eq!(resp.status, "200 OK", "{}", resp.body);
        assert!(resp.body.contains("\"status\":\"stale\""), "{}", resp.body);
        assert_eq!(reg.with_session("s1", |m, _| m.log().len()).unwrap(), 1);
        // the current epoch still works and the session completes
        drive(&reg, "s1");
        let resp = get(&reg, "/sessions/s1/report");
        assert!(resp.body.contains("\"partial\":false"), "{}", resp.body);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn session_cap_sheds_creation_with_429() {
        let reg = SessionRegistry::open(
            tmp_store("cap"),
            ServeOptions {
                max_sessions: 1,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            post(&reg, "/sessions", "{\"example\":\"figure1\"}").status,
            "201 Created"
        );
        let resp = post(&reg, "/sessions", "{\"example\":\"figure1\"}");
        assert_eq!(resp.status, "429 Too Many Requests", "{}", resp.body);
        // finishing the parked session frees the slot
        drive(&reg, "s1");
        assert_eq!(
            post(&reg, "/sessions", "{\"example\":\"figure1\"}").status,
            "201 Created"
        );
        std::fs::remove_dir_all(reg.store.root()).ok();
    }

    #[test]
    fn reaper_expires_idle_sessions_into_partial_reports() {
        let reg = SessionRegistry::open(tmp_store("reap"), ServeOptions::default()).unwrap();
        post(
            &reg,
            "/sessions",
            "{\"example\":\"figure1\",\"deadline_ms\":1}",
        );
        assert_eq!(reg.parked(), 1);
        std::thread::sleep(Duration::from_millis(10));
        let reaped = reg.reap_idle();
        assert_eq!(reaped, vec!["s1".to_string()]);
        assert_eq!(reg.parked(), 0);
        let resp = get(&reg, "/sessions/s1/report");
        assert_eq!(resp.status, "200 OK", "{}", resp.body);
        assert!(resp.body.contains("\"partial\":true"), "{}", resp.body);
        assert!(resp.body.contains("PARTIAL REPORT"), "{}", resp.body);
        // a second pass finds nothing left to reap
        assert!(reg.reap_idle().is_empty());
        std::fs::remove_dir_all(reg.store.root()).ok();
    }

    #[test]
    fn journal_write_failure_degrades_to_partial_not_panic() {
        let reg = SessionRegistry::open(tmp_store("wal-fail"), ServeOptions::default()).unwrap();
        post(&reg, "/sessions", "{\"example\":\"figure1\"}");
        reg.store.fail_appends(true);
        let resp = post(
            &reg,
            "/sessions/s1/answers",
            "{\"answers\":[{\"seq\":1,\"bool\":true}]}",
        );
        assert_eq!(resp.status, "503 Service Unavailable", "{}", resp.body);
        assert!(
            resp.body.contains("\"status\":\"journal_error\""),
            "{}",
            resp.body
        );
        let resp = get(&reg, "/sessions/s1/report");
        assert_eq!(resp.status, "200 OK", "{}", resp.body);
        assert!(resp.body.contains("\"partial\":true"), "{}", resp.body);
        std::fs::remove_dir_all(reg.store.root()).ok();
    }

    #[test]
    fn inline_specs_round_trip_through_the_api() {
        let reg = SessionRegistry::open(tmp_store("inline"), ServeOptions::default()).unwrap();
        let resp = post(
            &reg,
            "/sessions",
            r#"{"schema":[{"name":"Teams","attrs":["country","continent"]}],
                "rows":{"Teams":[["BRA","EU"],["ITA","EU"]]},
                "query":"Q(x) :- Teams(x, \"EU\")",
                "deletion":"qoco-","split":"naive","deadline_ms":60000}"#,
        );
        assert_eq!(resp.status, "201 Created", "{}", resp.body);
        assert!(
            resp.body.contains("\"state\":\"awaiting\""),
            "{}",
            resp.body
        );
        std::fs::remove_dir_all(reg.store.root()).ok();
    }
}
