//! # QOCO — Query-Oriented Data Cleaning with Oracles
//!
//! A from-scratch Rust reproduction of *Query-Oriented Data Cleaning with
//! Oracles* (Bergman, Milo, Novgorodov, Tan — SIGMOD 2015). QOCO removes
//! wrong answers from, and adds missing answers to, the result of a
//! conjunctive query by interacting minimally with a crowd of domain-expert
//! oracles, deriving insertion/deletion edits on the underlying database.
//!
//! ## Quick start
//!
//! ```
//! use qoco::data::{tup, Database, Schema};
//! use qoco::query::parse_query;
//! use qoco::crowd::{PerfectOracle, SingleExpert};
//! use qoco::core::{clean_view, CleaningConfig};
//! use qoco::engine::answer_set;
//!
//! // a schema shared by the dirty database D and the ground truth D_G
//! let schema = Schema::builder()
//!     .relation("Teams", &["country", "continent"])
//!     .build()
//!     .unwrap();
//!
//! let mut d = Database::empty(schema.clone());
//! d.insert_named("Teams", qoco::data::tuple::Tuple::new(vec!["BRA".into(), "EU".into()])).unwrap(); // wrong
//!
//! let mut g = Database::empty(schema.clone());
//! g.insert_named("Teams", qoco::data::tuple::Tuple::new(vec!["ITA".into(), "EU".into()])).unwrap();
//!
//! let q = parse_query(&schema, r#"(x) :- Teams(x, "EU")"#).unwrap();
//!
//! // the crowd: here, a simulated perfect oracle consulting D_G
//! let mut crowd = SingleExpert::new(PerfectOracle::new(g));
//! let report = clean_view(&q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
//!
//! assert_eq!(answer_set(&q, &mut d), vec![qoco::data::tuple::Tuple::new(vec!["ITA".into()])]);
//! assert_eq!(report.wrong_answers, 1);
//! assert_eq!(report.missing_answers, 1);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`data`] | values, tuples, schemas, indexed relations, databases, edits, distance/cleanliness metrics |
//! | [`query`] | conjunctive queries with inequalities: AST, parser, subqueries, `Q\|t` embedding, query graph, UCQs |
//! | [`engine`] | evaluation (all valid assignments), witnesses, satisfiability, why-not analysis |
//! | [`graph`] | Edmonds–Karp max-flow, Stoer–Wagner global min-cut |
//! | [`crowd`] | question types, perfect/imperfect oracles, majority voting, cost ledger, enumeration black-box |
//! | [`core`] | Algorithms 1–3, hitting sets, split strategies, baselines, the parallel multi-expert cleaner |
//! | [`datasets`] | the Soccer and DBGroup generators, noise injection, the evaluation queries |
//! | [`telemetry`] | spans, counters/histograms, JSONL export, session timelines (zero-cost when disabled) |
//! | [`serve`] | parked cleaning sessions over HTTP: the `qoco-serve` session registry and JSON API |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod serve;

pub use qoco_core as core;
pub use qoco_crowd as crowd;
pub use qoco_data as data;
pub use qoco_datasets as datasets;
pub use qoco_engine as engine;
pub use qoco_graph as graph;
pub use qoco_query as query;
pub use qoco_telemetry as telemetry;

/// Commonly used items in one import.
pub mod prelude {
    pub use qoco_core::{
        clean_view, crowd_add_missing_answer, crowd_remove_wrong_answer, CleanError,
        CleaningConfig, CleaningReport, DeletionStrategy, InsertionOptions, SplitStrategyKind,
    };
    pub use qoco_crowd::{
        CrowdAccess, ImperfectOracle, MajorityCrowd, Oracle, PerfectOracle, RecordingCrowd,
        SingleExpert,
    };
    pub use qoco_data::{Database, Edit, EditLog, Fact, Schema, Tuple, Value};
    pub use qoco_datasets::{
        generate_dbgroup, generate_soccer, inject_noise, soccer_queries, DbGroupConfig, NoiseSpec,
        SoccerConfig,
    };
    pub use qoco_engine::{answer_set, evaluate, witnesses_for_answer, Assignment, ViewMonitor};
    pub use qoco_query::{parse_query, ConjunctiveQuery};
    pub use qoco_telemetry::{InMemoryCollector, JsonlCollector, SessionTimeline};
}
