//! `qoco-serve` — the resumable cleaning-session service.
//!
//! ```text
//! qoco-serve serve  --addr 127.0.0.1:0 --store DIR [--max-sessions N]
//!                   [--deadline-ms N] [--reap-interval-ms N]
//!                   [--access-log PATH] [--telemetry PATH]
//!                   [--watch-tick MS] [--watch-rules FILE]
//! qoco-serve oracle --addr HOST:PORT --session ID [--example figure1]
//!                   [--request-id ID]
//! ```
//!
//! `serve` binds the HTTP API (plus the usual `/metrics`, `/health`,
//! `/dashboard` routes), rehydrates any sessions already in the store —
//! the crash-recovery path — and prints the bound address on stdout.
//!
//! `oracle` plays the crowd for a session created from a named example:
//! it mirrors the session's deterministic state machine locally, answers
//! the mirror's questions with a perfect oracle over the example's ground
//! truth, and submits each answer over HTTP. Because cleaning is a
//! deterministic function of the answer sequence, the mirror's question
//! at seq *n* is the server's question at seq *n* — even across server
//! restarts — so the helper never needs to deserialize questions from
//! the wire.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use qoco::core::{SessionMachine, SessionState};
use qoco::crowd::{tagged_value, Answer, Oracle, PerfectOracle};
use qoco::serve::{figure1_ground, figure1_spec, ServeOptions, SessionRegistry};
use qoco_bench::json::Json;
use qoco_core::SessionStore;
use qoco_telemetry::{MetricsServer, ServerOptions};

fn usage() -> ! {
    eprintln!(
        "usage:\n  qoco-serve serve  --addr HOST:PORT --store DIR [--max-sessions N] \
         [--deadline-ms N] [--reap-interval-ms N] [--access-log PATH] [--telemetry PATH] \
         [--watch-tick MS] [--watch-rules FILE]\n  \
         qoco-serve oracle --addr HOST:PORT --session ID [--example figure1] [--request-id ID]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let result = match cmd.as_str() {
        "serve" => cmd_serve(&args[1..]),
        "oracle" => cmd_oracle(&args[1..]),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("qoco-serve: {e}");
        std::process::exit(1);
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:0");
    let store_dir = flag_value(args, "--store").ok_or("serve needs --store DIR")?;
    let mut options = ServeOptions::default();
    if let Some(n) = flag_value(args, "--max-sessions") {
        options.max_sessions = n.parse().map_err(|_| "--max-sessions must be an integer")?;
    }
    if let Some(n) = flag_value(args, "--deadline-ms") {
        options.default_deadline_ms = n.parse().map_err(|_| "--deadline-ms must be an integer")?;
    }
    let reap_interval: u64 = flag_value(args, "--reap-interval-ms")
        .unwrap_or("1000")
        .parse()
        .map_err(|_| "--reap-interval-ms must be an integer")?;

    // Counters and gauges (sessions.parked, serve.rejected, …) only record
    // under an installed telemetry session; sink the events in memory, and
    // — with --telemetry — stream them to a JSONL file whose per-line
    // flushes survive a kill -9.
    let mut sinks: Vec<std::sync::Arc<dyn qoco_telemetry::Collector>> =
        vec![std::sync::Arc::new(qoco_telemetry::InMemoryCollector::new())];
    if let Some(path) = flag_value(args, "--telemetry") {
        let jsonl = qoco_telemetry::JsonlCollector::create_write_through(path)
            .map_err(|e| format!("cannot open telemetry log {path}: {e}"))?;
        sinks.push(std::sync::Arc::new(jsonl));
    }
    let _telemetry = qoco_telemetry::session(std::sync::Arc::new(
        qoco_telemetry::FanoutCollector::new(sinks),
    ));

    // A server is long-running, so the qoco-watch sampler is on by
    // default: it is what feeds the `/dashboard` route sparklines and the
    // `/api/timeseries` windows from the serve.* RED metrics. `--watch-rules`
    // additionally arms SLO alerts (e.g. `p95(serve.latency_ns.report) > …`)
    // on `/alerts`.
    let watch_rules = match flag_value(args, "--watch-rules") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("--watch-rules {path}: {e}"))?;
            qoco_telemetry::parse_rules(&text).map_err(|e| format!("--watch-rules {path}: {e}"))?
        }
        None => Vec::new(),
    };
    let watch_tick_ms: u64 = flag_value(args, "--watch-tick")
        .unwrap_or("1000")
        .parse()
        .map_err(|_| "--watch-tick must be a millisecond interval")?;
    if watch_tick_ms == 0 {
        return Err("--watch-tick interval must be positive".to_string());
    }
    let _watch = qoco_telemetry::start_watch(
        watch_rules,
        qoco_telemetry::WatchTick::Wall(Duration::from_millis(watch_tick_ms)),
    );

    let access_log = match flag_value(args, "--access-log") {
        Some(path) => Some(std::sync::Arc::new(
            qoco_telemetry::AccessLog::create(path)
                .map_err(|e| format!("cannot open access log {path}: {e}"))?,
        )),
        None => None,
    };

    let store = SessionStore::open(store_dir).map_err(|e| format!("cannot open store: {e}"))?;
    let registry =
        std::sync::Arc::new(SessionRegistry::open(store, options).map_err(|e| e.to_string())?);
    let rehydrated = registry.active();
    let server = MetricsServer::start_with(
        addr,
        ServerOptions {
            handler: Some(registry.clone()),
            access_log,
            ..ServerOptions::default()
        },
    )
    .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    // The CI driver reads this line to learn the ephemeral port.
    println!("listening on {}", server.local_addr());
    println!("store rehydrated {rehydrated} session(s)");
    let _ = std::io::stdout().flush();

    let reaper = registry.clone();
    std::thread::Builder::new()
        .name("qoco-serve-reaper".to_string())
        .spawn(move || loop {
            std::thread::sleep(Duration::from_millis(reap_interval));
            for id in reaper.reap_idle() {
                eprintln!("reaped idle session {id}");
            }
        })
        .map_err(|e| e.to_string())?;

    loop {
        std::thread::park();
    }
}

// ---------------------------------------------------------------------------
// the oracle helper

/// One HTTP/1.1 request over a fresh connection; returns (status, body).
/// A non-empty `request_id` is sent as `X-Request-Id` so the server's
/// access log, spans, and journal can be grepped for it afterwards.
fn http(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    request_id: &str,
) -> Result<(String, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let id_header = if request_id.is_empty() {
        String::new()
    } else {
        format!("X-Request-Id: {request_id}\r\n")
    };
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         {id_header}Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("recv: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    let status = head
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("HTTP/1.1 "))
        .ok_or("malformed status line")?;
    Ok((status.to_string(), body.to_string()))
}

/// Render one answer as a `POST /answers` item.
fn answer_item(seq: u64, answer: &Answer) -> String {
    match answer {
        Answer::Bool(b) => format!("{{\"seq\":{seq},\"bool\":{b}}}"),
        Answer::MissingAnswer(None) => format!("{{\"seq\":{seq},\"missing\":null}}"),
        Answer::MissingAnswer(Some(t)) => {
            let cells: Vec<String> = t
                .values()
                .iter()
                .map(|v| format!("\"{}\"", tagged_value(v).replace('"', "\\\"")))
                .collect();
            format!("{{\"seq\":{seq},\"missing\":[{}]}}", cells.join(","))
        }
        Answer::Completion(None) => format!("{{\"seq\":{seq},\"completion\":null}}"),
        Answer::Completion(Some(a)) => {
            let binds: Vec<String> = a
                .iter()
                .map(|(var, value)| {
                    format!(
                        "\"{}\":\"{}\"",
                        var.name(),
                        tagged_value(value).replace('"', "\\\"")
                    )
                })
                .collect();
            format!("{{\"seq\":{seq},\"completion\":{{{}}}}}", binds.join(","))
        }
    }
}

fn cmd_oracle(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").ok_or("oracle needs --addr HOST:PORT")?;
    let session = flag_value(args, "--session").ok_or("oracle needs --session ID")?;
    let example = flag_value(args, "--example").unwrap_or("figure1");
    if example != "figure1" {
        return Err(format!("unknown example {example:?} (try figure1)"));
    }
    let request_id = flag_value(args, "--request-id").unwrap_or("");

    // The local mirror of the server's deterministic session, and the
    // perfect oracle that answers it against the example's ground truth.
    let mut mirror = SessionMachine::new(figure1_spec());
    let mut oracle = PerfectOracle::new(figure1_ground());
    let mut answers: Vec<Answer> = Vec::new(); // answers[i] answered seq i+1

    loop {
        let (status, body) = http(
            addr,
            "GET",
            &format!("/sessions/{session}/pending"),
            "",
            request_id,
        )?;
        if status != "200 OK" {
            return Err(format!("pending: {status}: {}", body.trim()));
        }
        let json = Json::parse(&body).map_err(|e| format!("pending: bad JSON: {e}"))?;
        let state = json
            .get("state")
            .and_then(Json::as_str)
            .ok_or("pending: missing state")?;
        if state != "awaiting" {
            println!(
                "session {session} is {state} after {} answer(s)",
                answers.len()
            );
            return Ok(());
        }
        let epoch = json
            .get("epoch")
            .and_then(Json::as_f64)
            .ok_or("pending: missing epoch")? as u64;
        let seq = json
            .get("pending")
            .and_then(Json::as_array)
            .and_then(|p| p.first())
            .and_then(|p| p.get("seq"))
            .and_then(Json::as_f64)
            .ok_or("pending: missing seq")? as u64;

        // Advance the mirror until it has produced the answer for `seq`.
        while (answers.len() as u64) < seq {
            let SessionState::AwaitingAnswers(p) = mirror.state() else {
                return Err(format!(
                    "mirror finished after {} answers but the server asks for seq {seq}; \
                     the session was not created from example {example:?}",
                    answers.len()
                ));
            };
            let answer = oracle
                .answer(&p.question)
                .map_err(|e| format!("ground-truth oracle failed: {e:?}"))?;
            let mirror_seq = p.seq;
            mirror
                .submit(mirror_seq, Ok(answer.clone()))
                .map_err(|e| format!("mirror rejected its own answer: {e}"))?;
            answers.push(answer);
        }

        let item = answer_item(seq, &answers[(seq - 1) as usize]);
        let payload = format!("{{\"epoch\":{epoch},\"answers\":[{item}]}}");
        let (status, body) = http(
            addr,
            "POST",
            &format!("/sessions/{session}/answers"),
            &payload,
            request_id,
        )?;
        if status != "200 OK" {
            return Err(format!("answers: {status}: {}", body.trim()));
        }
        println!("answered seq {seq}");
    }
}
