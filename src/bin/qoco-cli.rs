//! `qoco-cli` — a scriptable shell around the QOCO library.
//!
//! Reads commands from stdin (one per line), so it works interactively and
//! in pipelines. A session declares a schema, loads a dirty database (and
//! optionally a ground-truth database that backs a simulated oracle),
//! defines conjunctive queries, inspects answers, and runs cleaning.
//!
//! ```text
//! relation Teams country continent
//! relation Games date winner runner_up stage result
//! load data/dirty
//! ground data/truth
//! query Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2.
//! show Q1
//! clean Q1 qoco provenance
//! save data/cleaned
//! quit
//! ```
//!
//! Observability flags (combinable):
//!
//! * `--telemetry <path>` — stream a JSON-lines export of the session
//!   (spans, events and a final metrics snapshot) for offline inspection.
//! * `--trace <path>` — write a Chrome trace-event file at exit; open it
//!   in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! * `--metrics-port <port>` — serve the live metrics registry in
//!   Prometheus text format on `127.0.0.1:<port>/metrics` (port 0 picks
//!   an ephemeral port; the bound address is printed to stderr).
//! * `--profile <path>` — run the whole session under the in-process
//!   sampling profiler and write the capture at exit: a self-contained
//!   flamegraph SVG when the path ends in `.svg`, folded stack lines
//!   (`clean.session;eval.assignments 412`) otherwise.
//! * `--watch-rules <file>` — load qoco-watch SLO/alert rules (one
//!   `rule name: expr cmp threshold [for dur] => severity` per line) and
//!   run the time-series watch for the whole session. Alert lifecycle
//!   edges land in the telemetry export and Chrome trace; the live state
//!   is served on `/alerts` and `/dashboard` when `--metrics-port` is
//!   also given, and the sampled series rides in the `--telemetry` export
//!   as `"type":"sample"` lines for `qoco-bench watch-replay`.
//! * `--watch-tick <ms|logical>` — how the watch samples: a wall-clock
//!   interval in milliseconds, or `logical` (the default) ticking once per
//!   crowd answer — deterministic, so fresh and resumed sessions export
//!   identical series. Implies a watch even without `--watch-rules`.
//!
//! Robustness flags (combinable with the above):
//!
//! * `--faults <spec>` — inject deterministic crowd faults into the
//!   simulated oracle (e.g. `seed=42,timeout=0.1,drop@120`; see
//!   `FaultPlan` for the grammar).
//! * `--journal <path>` — write-ahead journal every oracle outcome to a
//!   fresh file, so a killed session can be resumed.
//! * `--resume <path>` — replay a journal written by a previous (killed)
//!   run, then continue the session appending to the same file. Mutually
//!   exclusive with `--journal`.
//! * `--kill-after <n>` — chaos harness: exit the process (code 86) after
//!   the n-th crowd answer, *after* its journal record is flushed. Pair
//!   with `--journal`, then `--resume` to exercise crash recovery.
//!
//! Commands: `relation <name> <attrs…>`, `load <dir>`, `ground <dir>`,
//! `query <datalog>`, `show <name>`, `witnesses <name> <v1> [v2 …]`,
//! `explain <name>` (the evaluation plan), `minimize <name>` (the query
//! core), `clean <name> [qoco|qoco-|random]
//! [provenance|mincut|random|naive]`, `transcript` (the crowd Q/A log of
//! the last clean), `diff`, `facts`, `save <dir>`, `help`, `quit`.
//!
//! ## `qoco-cli explain <file>`
//!
//! A separate top-level subcommand (no stdin session): render a
//! human-readable audit report of *why* every oracle question of a past
//! cleaning session was asked. The input is either
//!
//! * a decision log — the JSONL written by `--telemetry <path>`, whose
//!   `"type":"decision"` lines carry the question, its structured evidence
//!   (witness sets, frequency rankings, Theorem 4.5 certificates, split
//!   paths, retry policies) and the outcome; or
//! * a journal file written by `--journal <path>`, whose records are
//!   rendered with their `d=<id>` decision tags (outcomes only — the
//!   evidence lives in the decision log).
//!
//! The report is deterministic and timestamp-free, so a fresh run and a
//! `--kill-after` + `--resume` run of the same session produce
//! byte-identical reports.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use qoco::core::{clean_view, CleaningConfig, DeletionStrategy, SplitStrategyKind};
use qoco::crowd::{
    Answer, CrowdAccess, FaultPlan, FaultyOracle, Journal, JournalRecord, Oracle, OracleError,
    PerfectOracle, Question, RecordingCrowd, SingleExpert, TranscriptEntry,
};
use qoco::data::{diff, load_dir, save_dir, Database, Schema, SchemaBuilder, Value};
use qoco::engine::{answer_set, explain, witnesses_for_answer};
use qoco::query::{parse_query, ConjunctiveQuery};
use qoco_bench::json::Json;

/// Exit code of a `--kill-after` abort, distinct from ordinary failures so
/// scripts (and `scripts/ci.sh`) can assert the death was the deliberate one.
const KILL_EXIT: i32 = 86;

/// How `clean` assembles its simulated crowd: fault injection, write-ahead
/// journaling, and the chaos kill switch. All `clean` commands of one
/// process share the journal sequence and the answer budget.
struct CrowdOptions {
    faults: FaultPlan,
    journal: Option<Journal>,
    kill_after: Option<u64>,
    answered: Arc<AtomicU64>,
}

impl CrowdOptions {
    fn build_oracle(&self, ground: Database) -> KillSwitch<Box<dyn Oracle>> {
        let faulty = FaultyOracle::new(PerfectOracle::new(ground), self.faults.clone());
        let inner: Box<dyn Oracle> = match &self.journal {
            Some(j) => Box::new(j.wrap(faulty)),
            None => Box::new(faulty),
        };
        KillSwitch {
            inner,
            kill_after: self.kill_after,
            answered: self.answered.clone(),
        }
    }
}

/// Counts answers process-wide and aborts once the budget is spent. Sits
/// *outside* the journal in the oracle stack, so the write-ahead record of
/// the final answer is flushed before death — exactly the crash point the
/// journal is designed to survive.
struct KillSwitch<O: Oracle> {
    inner: O,
    kill_after: Option<u64>,
    answered: Arc<AtomicU64>,
}

impl<O: Oracle> Oracle for KillSwitch<O> {
    fn answer(&mut self, q: &Question) -> Result<Answer, OracleError> {
        let out = self.inner.answer(q);
        let n = self.answered.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(limit) = self.kill_after {
            if n >= limit {
                eprintln!("kill switch: exiting after {n} crowd answer(s)");
                std::process::exit(KILL_EXIT);
            }
        }
        out
    }

    fn label(&self) -> String {
        self.inner.label()
    }
}

struct Session {
    builder: Option<SchemaBuilder>,
    schema: Option<Arc<Schema>>,
    db: Option<Database>,
    ground: Option<Database>,
    queries: BTreeMap<String, ConjunctiveQuery>,
    last_transcript: Vec<TranscriptEntry>,
    crowd_opts: CrowdOptions,
}

impl Session {
    fn new(crowd_opts: CrowdOptions) -> Self {
        Session {
            builder: Some(Schema::builder()),
            schema: None,
            db: None,
            ground: None,
            queries: BTreeMap::new(),
            last_transcript: Vec::new(),
            crowd_opts,
        }
    }

    /// Freeze the schema on first use.
    fn schema(&mut self) -> Result<Arc<Schema>, String> {
        if self.schema.is_none() {
            let builder = self.builder.take().ok_or("schema already frozen")?;
            let schema = builder.build().map_err(|e| e.to_string())?;
            if schema.is_empty() {
                return Err("declare at least one relation first".into());
            }
            self.schema = Some(schema);
        }
        Ok(self.schema.clone().expect("just set"))
    }

    fn db(&mut self) -> Result<&mut Database, String> {
        if self.db.is_none() {
            let schema = self.schema()?;
            self.db = Some(Database::empty(schema));
        }
        Ok(self.db.as_mut().expect("just set"))
    }

    fn run(&mut self, line: &str, out: &mut impl Write) -> io::Result<bool> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(true);
        }
        let (cmd, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        let result: Result<(), String> = match cmd {
            "quit" | "exit" => return Ok(false),
            "help" => {
                writeln!(out, "commands: relation load ground query show witnesses explain minimize clean transcript diff facts save help quit")?;
                Ok(())
            }
            "relation" => self.cmd_relation(rest),
            "load" => self.cmd_load(rest, false),
            "ground" => self.cmd_load(rest, true),
            "query" => self.cmd_query(rest, out)?,
            "show" => self.cmd_show(rest, out)?,
            "witnesses" => self.cmd_witnesses(rest, out)?,
            "explain" => self.cmd_explain(rest, out)?,
            "minimize" => self.cmd_minimize(rest, out)?,
            "transcript" => self.cmd_transcript(out)?,
            "clean" => self.cmd_clean(rest, out)?,
            "diff" => self.cmd_diff(out)?,
            "facts" => self.cmd_facts(out)?,
            "save" => self.cmd_save(rest),
            other => Err(format!("unknown command `{other}` (try `help`)")),
        };
        if let Err(e) = result {
            writeln!(out, "error: {e}")?;
        }
        Ok(true)
    }

    fn cmd_relation(&mut self, rest: &str) -> Result<(), String> {
        if self.schema.is_some() {
            return Err("schema is frozen after the first load/query".into());
        }
        let mut parts = rest.split_whitespace();
        let name = parts.next().ok_or("usage: relation <name> <attrs…>")?;
        let attrs: Vec<&str> = parts.collect();
        if attrs.is_empty() {
            return Err("a relation needs at least one attribute".into());
        }
        let builder = self.builder.take().ok_or("schema already frozen")?;
        self.builder = Some(builder.relation(name, &attrs));
        Ok(())
    }

    fn cmd_load(&mut self, dir: &str, as_ground: bool) -> Result<(), String> {
        if dir.is_empty() {
            return Err("usage: load|ground <dir>".into());
        }
        let schema = self.schema()?;
        let db = load_dir(schema, Path::new(dir)).map_err(|e| e.to_string())?;
        if as_ground {
            self.ground = Some(db);
        } else {
            self.db = Some(db);
        }
        Ok(())
    }

    fn cmd_query(&mut self, text: &str, out: &mut impl Write) -> io::Result<Result<(), String>> {
        let schema = match self.schema() {
            Ok(s) => s,
            Err(e) => return Ok(Err(e)),
        };
        match parse_query(&schema, text) {
            Ok(q) => {
                writeln!(out, "defined {}", q.name())?;
                self.queries.insert(q.name().to_string(), q);
                Ok(Ok(()))
            }
            Err(e) => Ok(Err(e.to_string())),
        }
    }

    fn cmd_show(&mut self, name: &str, out: &mut impl Write) -> io::Result<Result<(), String>> {
        let Some(q) = self.queries.get(name).cloned() else {
            return Ok(Err(format!("unknown query `{name}`")));
        };
        let db = match self.db() {
            Ok(d) => d,
            Err(e) => return Ok(Err(e)),
        };
        let answers = answer_set(&q, db);
        writeln!(out, "{}(D): {} answer(s)", q.name(), answers.len())?;
        for a in answers {
            writeln!(out, "  {a}")?;
        }
        Ok(Ok(()))
    }

    fn cmd_witnesses(
        &mut self,
        rest: &str,
        out: &mut impl Write,
    ) -> io::Result<Result<(), String>> {
        let mut parts = rest.split_whitespace();
        let Some(name) = parts.next() else {
            return Ok(Err("usage: witnesses <query> <v1> [v2 …]".into()));
        };
        let Some(q) = self.queries.get(name).cloned() else {
            return Ok(Err(format!("unknown query `{name}`")));
        };
        let tuple: qoco::data::Tuple = parts.map(Value::text).collect();
        let db = match self.db() {
            Ok(d) => d,
            Err(e) => return Ok(Err(e)),
        };
        let ws = witnesses_for_answer(&q, db, &tuple);
        writeln!(out, "{} witness(es) for {tuple}", ws.len())?;
        for (i, w) in ws.iter().enumerate() {
            writeln!(out, "  witness {}:", i + 1)?;
            for f in w {
                writeln!(out, "    {f:?}")?;
            }
        }
        Ok(Ok(()))
    }

    fn cmd_explain(&mut self, name: &str, out: &mut impl Write) -> io::Result<Result<(), String>> {
        let Some(q) = self.queries.get(name).cloned() else {
            return Ok(Err(format!("unknown query `{name}`")));
        };
        let db = match self.db() {
            Ok(d) => d,
            Err(e) => return Ok(Err(e)),
        };
        write!(out, "{}", explain(&q, db))?;
        Ok(Ok(()))
    }

    fn cmd_minimize(&mut self, name: &str, out: &mut impl Write) -> io::Result<Result<(), String>> {
        let Some(q) = self.queries.get(name).cloned() else {
            return Ok(Err(format!("unknown query `{name}`")));
        };
        let m = qoco::query::minimize(&q);
        if m.atoms().len() == q.atoms().len() {
            writeln!(out, "{name} is already minimal ({} atoms)", q.atoms().len())?;
        } else {
            writeln!(
                out,
                "{name} minimized from {} to {} atoms:",
                q.atoms().len(),
                m.atoms().len()
            )?;
            writeln!(out, "  {}", m.display())?;
            self.queries.insert(name.to_string(), m);
        }
        Ok(Ok(()))
    }

    fn cmd_transcript(&mut self, out: &mut impl Write) -> io::Result<Result<(), String>> {
        if self.last_transcript.is_empty() {
            writeln!(out, "no cleaning session recorded yet")?;
        } else {
            writeln!(out, "{} interaction(s):", self.last_transcript.len())?;
            for e in &self.last_transcript {
                writeln!(out, "  {e}")?;
            }
        }
        Ok(Ok(()))
    }

    fn cmd_clean(&mut self, rest: &str, out: &mut impl Write) -> io::Result<Result<(), String>> {
        let mut parts = rest.split_whitespace();
        let Some(name) = parts.next() else {
            return Ok(Err("usage: clean <query> [deletion] [split]".into()));
        };
        let Some(q) = self.queries.get(name).cloned() else {
            return Ok(Err(format!("unknown query `{name}`")));
        };
        let deletion = match parts.next().unwrap_or("qoco") {
            "qoco" => DeletionStrategy::Qoco,
            "qoco-" => DeletionStrategy::QocoMinus,
            "random" => DeletionStrategy::Random(1),
            other => return Ok(Err(format!("unknown deletion strategy `{other}`"))),
        };
        let split = match parts.next().unwrap_or("provenance") {
            "provenance" => SplitStrategyKind::Provenance,
            "mincut" => SplitStrategyKind::MinCut,
            "random" => SplitStrategyKind::Random(1),
            "naive" => SplitStrategyKind::Naive,
            other => return Ok(Err(format!("unknown split strategy `{other}`"))),
        };
        let Some(ground) = self.ground.clone() else {
            return Ok(Err(
                "no ground truth loaded (the oracle needs `ground <dir>`)".into(),
            ));
        };
        let oracle = self.crowd_opts.build_oracle(ground);
        let db = match self.db() {
            Ok(d) => d,
            Err(e) => return Ok(Err(e)),
        };
        let mut crowd = RecordingCrowd::new(SingleExpert::new(oracle));
        let config = CleaningConfig {
            deletion,
            split,
            ..Default::default()
        };
        let before = qoco_telemetry::metrics().snapshot();
        let result = clean_view(&q, db, &mut crowd, config);
        let after = qoco_telemetry::metrics().snapshot();
        let stats = crowd.stats();
        let (_, transcript) = crowd.into_parts();
        self.last_transcript = transcript;
        match result {
            Ok(report) => {
                write!(out, "{report}")?;
                // view-maintenance counters only tick while telemetry is on;
                // stay silent otherwise so plain sessions are unchanged
                let d = |name: &str| after.counter(name).saturating_sub(before.counter(name));
                let (delta_edits, refreshes) = (d("view.delta_edits"), d("view.full_refreshes"));
                if delta_edits + refreshes > 0 {
                    writeln!(
                        out,
                        "view maintenance: {delta_edits} delta edit(s), {refreshes} full refresh(es), \
                         {} delta probe hit(s), {} semi-join pruned",
                        d("eval.delta_probe_hits"),
                        d("eval.semijoin_pruned")
                    )?;
                }
                if stats.faults > 0 {
                    writeln!(
                        out,
                        "crowd faults: {} ({} retried, {} escalation(s), {}ms simulated backoff)",
                        stats.faults, stats.retries, stats.escalations, stats.simulated_backoff_ms
                    )?;
                }
                if let Some(j) = &self.crowd_opts.journal {
                    writeln!(
                        out,
                        "journal: {} record(s) ({} replayed, {} divergence(s))",
                        j.seq(),
                        j.replayed(),
                        j.divergences()
                    )?;
                }
                if let Some(w) = qoco_telemetry::watch() {
                    if !w.alert_states().is_empty() {
                        writeln!(out, "{}", w.summary_line())?;
                    }
                }
                Ok(Ok(()))
            }
            Err(e) => Ok(Err(e.to_string())),
        }
    }

    fn cmd_diff(&mut self, out: &mut impl Write) -> io::Result<Result<(), String>> {
        let Some(ground) = self.ground.clone() else {
            return Ok(Err("no ground truth loaded".into()));
        };
        let db = match self.db() {
            Ok(d) => d.clone(),
            Err(e) => return Ok(Err(e)),
        };
        match diff(&db, &ground) {
            Ok(r) => {
                writeln!(
                    out,
                    "distance {} ({} false, {} missing); cleanliness {:.1}%",
                    r.distance(),
                    r.false_facts.len(),
                    r.missing_facts.len(),
                    r.cleanliness() * 100.0
                )?;
                Ok(Ok(()))
            }
            Err(e) => Ok(Err(e.to_string())),
        }
    }

    fn cmd_facts(&mut self, out: &mut impl Write) -> io::Result<Result<(), String>> {
        let schema = match self.schema() {
            Ok(s) => s,
            Err(e) => return Ok(Err(e)),
        };
        let db = match self.db() {
            Ok(d) => d,
            Err(e) => return Ok(Err(e)),
        };
        for (rel, decl) in schema.iter() {
            writeln!(out, "{}: {} fact(s)", decl.name(), db.relation(rel).len())?;
        }
        Ok(Ok(()))
    }

    fn cmd_save(&mut self, dir: &str) -> Result<(), String> {
        if dir.is_empty() {
            return Err("usage: save <dir>".into());
        }
        let db = self.db()?.clone();
        save_dir(&db, Path::new(dir)).map_err(|e| e.to_string())
    }
}

fn main() -> io::Result<()> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("explain") {
        return run_explain(&argv[1..]);
    }
    let mut telemetry_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_port: Option<u16> = None;
    let mut profile_path: Option<String> = None;
    let mut faults: Option<FaultPlan> = None;
    let mut journal_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut kill_after: Option<u64> = None;
    let mut watch_rules_path: Option<String> = None;
    let mut watch_tick_spec: Option<String> = None;
    let mut args = argv.into_iter();
    let missing = |flag: &str, what: &str| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("{flag} needs {what}"))
    };
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--telemetry" => {
                telemetry_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--telemetry", "a file path"))?,
                );
            }
            "--trace" => {
                trace_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--trace", "a file path"))?,
                );
            }
            "--metrics-port" => {
                let port = args
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| missing("--metrics-port", "a port number"))?;
                metrics_port = Some(port);
            }
            "--profile" => {
                profile_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--profile", "an output path (.svg or .folded)"))?,
                );
            }
            "--faults" => {
                let spec = args.next().ok_or_else(|| {
                    missing("--faults", "a fault plan (e.g. seed=42,timeout=0.1)")
                })?;
                faults = Some(
                    spec.parse()
                        .map_err(|e| invalid(format!("--faults {spec}: {e}")))?,
                );
            }
            "--journal" => {
                journal_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--journal", "a file path"))?,
                );
            }
            "--resume" => {
                resume_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--resume", "a journal file path"))?,
                );
            }
            "--kill-after" => {
                let n = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| missing("--kill-after", "an answer count"))?;
                kill_after = Some(n);
            }
            "--watch-rules" => {
                watch_rules_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--watch-rules", "a rules file path"))?,
                );
            }
            "--watch-tick" => {
                watch_tick_spec = Some(args.next().ok_or_else(|| {
                    missing("--watch-tick", "`logical` or a millisecond interval")
                })?);
            }
            other => {
                return Err(invalid(format!(
                    "unknown argument `{other}` (supported: --telemetry <path>, \
                     --trace <path>, --metrics-port <port>, --profile <path>, \
                     --faults <spec>, --journal <path>, --resume <path>, \
                     --kill-after <n>, --watch-rules <file>, \
                     --watch-tick <ms|logical>)"
                )));
            }
        }
    }

    let journal = match (journal_path, resume_path) {
        (Some(_), Some(_)) => {
            return Err(invalid(
                "--journal and --resume are mutually exclusive \
                 (--resume appends to the journal it replays)"
                    .into(),
            ));
        }
        (Some(p), None) => Some(Journal::create(&p)?),
        (None, Some(p)) => {
            let j = Journal::resume(&p)?;
            eprintln!(
                "resuming: {} journaled record(s) to replay",
                j.pending_replay()
            );
            Some(j)
        }
        (None, None) => None,
    };
    let crowd_opts = CrowdOptions {
        faults: faults.unwrap_or_else(FaultPlan::none),
        journal,
        kill_after,
        answered: Arc::new(AtomicU64::new(0)),
    };

    // Assemble the collector pipeline: each requested exporter is one sink,
    // fanned out when there is more than one. The metrics endpoint and the
    // sampling profiler read the live global registry / span stacks, which
    // only record under an installed session — so asking for either alone
    // still installs a (discarded) in-memory sink.
    let jsonl = match &telemetry_path {
        Some(path) => Some(Arc::new(qoco::telemetry::JsonlCollector::create(path)?)),
        None => None,
    };
    let needs_fallback_sink = (metrics_port.is_some()
        || profile_path.is_some()
        || watch_rules_path.is_some()
        || watch_tick_spec.is_some())
        && jsonl.is_none();
    let in_memory = (trace_path.is_some() || needs_fallback_sink)
        .then(|| Arc::new(qoco::telemetry::InMemoryCollector::new()));
    let mut sinks: Vec<Arc<dyn qoco::telemetry::Collector>> = Vec::new();
    if let Some(c) = &jsonl {
        sinks.push(c.clone());
    }
    if let Some(c) = &in_memory {
        sinks.push(c.clone());
    }
    let _session_guard = match sinks.len() {
        0 => None,
        1 => Some(qoco::telemetry::session(sinks.pop().expect("one sink"))),
        _ => Some(qoco::telemetry::session(Arc::new(
            qoco::telemetry::FanoutCollector::new(sinks),
        ))),
    };
    let profiler = profile_path
        .as_ref()
        .map(|_| qoco::telemetry::Profiler::start(qoco::telemetry::DEFAULT_SAMPLE_INTERVAL));
    let _metrics_server = match metrics_port {
        Some(port) => {
            let server = qoco::telemetry::MetricsServer::start(&format!("127.0.0.1:{port}"))?;
            eprintln!("serving metrics on http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };
    // qoco-watch: sample the metrics registry into ring-buffer series and
    // evaluate SLO/alert rules over them. `--watch-tick` alone starts a
    // rule-less watch (dashboard sparklines only).
    let watch_guard = if watch_rules_path.is_some() || watch_tick_spec.is_some() {
        let rules = match &watch_rules_path {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| invalid(format!("--watch-rules {path}: {e}")))?;
                qoco::telemetry::parse_rules(&text)
                    .map_err(|e| invalid(format!("--watch-rules {path}: {e}")))?
            }
            None => Vec::new(),
        };
        let tick = match watch_tick_spec.as_deref() {
            None | Some("logical") => qoco::telemetry::WatchTick::Logical,
            Some(ms) => {
                let ms: u64 = ms.parse().map_err(|_| {
                    invalid(format!(
                        "--watch-tick needs `logical` or a millisecond interval, got `{ms}`"
                    ))
                })?;
                if ms == 0 {
                    return Err(invalid("--watch-tick interval must be positive".into()));
                }
                qoco::telemetry::WatchTick::Wall(std::time::Duration::from_millis(ms))
            }
        };
        let mode = match tick {
            qoco::telemetry::WatchTick::Logical => "logical ticks".to_string(),
            qoco::telemetry::WatchTick::Wall(d) => format!("{}ms ticks", d.as_millis()),
        };
        eprintln!("qoco-watch: {} rule(s), {mode}", rules.len());
        Some(qoco::telemetry::start_watch(rules, tick))
    } else {
        None
    };

    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut session = Session::new(crowd_opts);
    for line in stdin.lock().lines() {
        let line = line?;
        if !session.run(&line, &mut out)? {
            break;
        }
        out.flush()?;
    }
    if let (Some(path), Some(profiler)) = (&profile_path, profiler) {
        let profile = profiler.stop();
        let rendered = if path.ends_with(".svg") {
            profile.flamegraph_svg("qoco-cli session")
        } else {
            profile.to_folded()
        };
        std::fs::write(path, rendered)?;
        eprintln!(
            "profile: {} sample(s), {} dropped → {path}",
            profile.samples, profile.dropped
        );
    }
    // Stop the watch before the final metrics snapshot: dropping the guard
    // takes one last deterministic tick, so end-of-session values land in
    // both the sample series and the `"type":"metrics"` line below.
    let watch = watch_guard.as_ref().and_then(|g| g.watch());
    drop(watch_guard);
    if let Some(w) = &watch {
        eprintln!("{}", w.summary_line());
        if let Some(collector) = &jsonl {
            let lines = w.store().to_jsonl_lines();
            collector.write_raw_lines(lines.iter().map(String::as_str));
        }
    }
    if let Some(collector) = &jsonl {
        collector.write_metrics(&qoco::telemetry::metrics().snapshot());
        collector.flush();
    }
    if let (Some(path), Some(collector)) = (&trace_path, &in_memory) {
        collector.write_chrome_trace(path)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// `qoco-cli explain` — the per-session audit report

/// Decision kinds that do *not* correspond to an oracle question: plans,
/// certificates, splits and fault handling are recorded for provenance but
/// cost no crowd interaction, so the budget summary excludes them.
const NON_QUESTION_KINDS: &[&str] = &[
    "deletion.plan",
    "deletion.certificate",
    "insertion.split",
    "crowd.retry",
    "crowd.escalation",
];

/// One `"type":"decision"` line of a telemetry JSONL export, flattened.
struct DecisionLine {
    id: u64,
    kind: String,
    question: String,
    outcome: String,
    /// Sorted by key (the exporter writes a JSON object; `Json` parses it
    /// into a `BTreeMap`), which keeps the report deterministic.
    evidence: Vec<(String, String)>,
    /// The HTTP request the decision was made under, when the log came
    /// from a `qoco-serve --telemetry` run.
    request: Option<String>,
}

fn run_explain(args: &[String]) -> io::Result<()> {
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
    let [path] = args else {
        return Err(invalid(
            "usage: qoco-cli explain <decisions.jsonl | session.journal>".into(),
        ));
    };
    let text = std::fs::read_to_string(path)?;
    let stdout = io::stdout();
    let mut out = stdout.lock();
    // A telemetry export is JSON object lines; a journal line starts with
    // its decimal sequence number.
    let looks_like_jsonl = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .map(|l| l.trim_start().starts_with('{'))
        .unwrap_or(false);
    if looks_like_jsonl {
        let decisions = parse_decision_log(&text).map_err(invalid)?;
        render_decision_report(&decisions, &mut out)
    } else {
        let records = Journal::parse(&text).map_err(invalid)?;
        render_journal_report(&records, &mut out)
    }
}

fn parse_decision_log(text: &str) -> Result<Vec<DecisionLine>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("type").and_then(Json::as_str) != Some("decision") {
            continue;
        }
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: decision is missing `{k}`", i + 1))
        };
        let id = v
            .get("id")
            .and_then(Json::as_f64)
            .filter(|n| *n >= 1.0)
            .ok_or_else(|| format!("line {}: decision is missing a positive `id`", i + 1))?
            as u64;
        let mut evidence = Vec::new();
        if let Some(Json::Object(map)) = v.get("evidence") {
            for (k, val) in map {
                let rendered = val
                    .as_str()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("{val:?}"));
                evidence.push((k.clone(), rendered));
            }
        }
        out.push(DecisionLine {
            id,
            kind: field("kind")?,
            question: field("question")?,
            outcome: field("outcome")?,
            evidence,
            request: v.get("request").and_then(Json::as_str).map(str::to_string),
        });
    }
    Ok(out)
}

/// Edits follow deterministically from outcomes (the cleaning algorithms
/// are pure functions of the answer sequence), so the report can annotate
/// the clear-cut cases.
fn inferred_edit(d: &DecisionLine) -> Option<String> {
    match d.kind.as_str() {
        "deletion.verify_fact" if d.outcome == "false" => Some("fact deleted from D".into()),
        "deletion.certificate" => Some("singleton witness tuple(s) deleted without asking".into()),
        "insertion.complete" if d.outcome.starts_with("completed:") => {
            Some("witness fact(s) inserted into D".into())
        }
        "clean.complete_result" => d
            .outcome
            .strip_prefix("missing: ")
            .map(|t| format!("insertion phase scheduled for {t}")),
        "constrained.key_conflict" if d.outcome == "false" => {
            Some("conflicting fact deleted (key repair)".into())
        }
        _ => None,
    }
}

fn render_decision_report(decisions: &[DecisionLine], out: &mut impl Write) -> io::Result<()> {
    let questions = decisions
        .iter()
        .filter(|d| !NON_QUESTION_KINDS.contains(&d.kind.as_str()))
        .count();
    writeln!(out, "QOCO decision audit")?;
    writeln!(
        out,
        "{} decision(s), {} oracle question(s)",
        decisions.len(),
        questions
    )?;
    for d in decisions {
        writeln!(out)?;
        writeln!(out, "[d={}] {}", d.id, d.kind)?;
        writeln!(out, "  question: {}", d.question)?;
        if let Some(request) = &d.request {
            writeln!(out, "  request: {request}")?;
        }
        if !d.evidence.is_empty() {
            writeln!(out, "  evidence:")?;
            for (k, v) in &d.evidence {
                writeln!(out, "    {k}: {v}")?;
            }
        }
        writeln!(out, "  outcome: {}", d.outcome)?;
        if let Some(edit) = inferred_edit(d) {
            writeln!(out, "  edit: {edit}")?;
        }
    }
    // Budget summary: Algorithm 1's optimality yardstick — every question
    // count is bounded below by the minimum hitting set of the live
    // witness structure (summed across deletion plans).
    let mut lower_bound = 0u64;
    let mut plans = 0u64;
    let mut certificates = 0u64;
    for d in decisions {
        match d.kind.as_str() {
            "deletion.plan" => {
                plans += 1;
                if let Some((_, v)) = d.evidence.iter().find(|(k, _)| k == "lower_bound") {
                    lower_bound += v.parse::<u64>().unwrap_or(0);
                }
            }
            "deletion.certificate"
                if d.evidence
                    .iter()
                    .any(|(k, v)| k == "theorem_4_5" && v == "fired") =>
            {
                certificates += 1;
            }
            _ => {}
        }
    }
    writeln!(out)?;
    writeln!(
        out,
        "budget: {questions} oracle question(s) asked; hitting-set lower bound \
         {lower_bound} across {plans} deletion plan(s); {certificates} \
         theorem-4.5 certificate(s) fired"
    )?;
    Ok(())
}

fn render_journal_report(records: &[JournalRecord], out: &mut impl Write) -> io::Result<()> {
    let tagged = records.iter().filter(|r| r.decision.is_some()).count();
    let requested = records.iter().filter(|r| r.request.is_some()).count();
    writeln!(out, "QOCO journal audit")?;
    writeln!(
        out,
        "{} oracle question(s), {} tagged with decision ids, {} with request ids",
        records.len(),
        tagged,
        requested
    )?;
    writeln!(out)?;
    for r in records {
        let outcome = match &r.outcome {
            Err(e) => format!("error: {}", e.as_str()),
            Ok(Answer::Bool(b)) => b.to_string(),
            Ok(Answer::Completion(None)) => "unsatisfiable".into(),
            Ok(Answer::Completion(Some(a))) => format!("completed {a:?}"),
            Ok(Answer::MissingAnswer(None)) => "complete".into(),
            Ok(Answer::MissingAnswer(Some(t))) => format!("missing {t}"),
        };
        let mut tags = String::new();
        if let Some(d) = r.decision {
            tags.push_str(&format!(" [d={d}]"));
        }
        if let Some(rid) = &r.request {
            tags.push_str(&format!(" [req={rid}]"));
        }
        writeln!(out, "  #{} {} → {outcome}{tags}", r.seq, r.kind.as_str())?;
    }
    writeln!(out)?;
    writeln!(
        out,
        "budget: {} oracle question(s) asked (pair with a --telemetry \
         decision log for the evidence behind each one)",
        records.len()
    )?;
    Ok(())
}
