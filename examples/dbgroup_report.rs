//! The Section 7.1 DBGroup case study.
//!
//! Generates the research-group database, plants errors in the style the
//! paper discovered (wrong keynotes and member records, missing travel and
//! publication rows), and runs QOCO over the four grant-report queries.
//! The paper found 5 wrong and 7 missing answers across its four report
//! queries, fixing 6 wrong tuples and adding 8 missing ones; this example
//! reproduces the same shape of discovery.
//!
//! Run with: `cargo run --release --example dbgroup_report`

use qoco::core::{clean_view, CleaningConfig};
use qoco::crowd::{PerfectOracle, SingleExpert};
use qoco::datasets::{dbgroup_queries, generate_dbgroup, plant_mixed, DbGroupConfig};
use qoco::engine::answer_set;

fn main() {
    let ground = generate_dbgroup(DbGroupConfig::default());
    println!("DBGroup ground truth: {} facts\n", ground.len());

    let queries = dbgroup_queries(ground.schema());
    // the paper's tally: 5 wrong + 7 missing answers across 4 queries
    let plan: [(usize, usize); 4] = [(1, 1), (2, 1), (1, 2), (1, 3)];

    let mut dirty = ground.clone();
    let mut expected_wrong = 0;
    let mut expected_missing = 0;
    for (q, (wrong, missing)) in queries.iter().zip(plan) {
        let outcome = plant_mixed(q, &dirty, wrong, missing, 11);
        expected_wrong += outcome.wrong.len();
        expected_missing += outcome.missing.len();
        dirty = outcome.db;
    }
    println!(
        "planted {} wrong and {} missing answers across the 4 report queries\n",
        expected_wrong, expected_missing
    );

    let mut total_wrong = 0;
    let mut total_missing = 0;
    let mut total_deleted = 0;
    let mut total_inserted = 0;
    let mut total_questions = 0;

    for q in &queries {
        let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
        let report = clean_view(q, &mut dirty, &mut crowd, CleaningConfig::default())
            .expect("cleaning converges");
        let truth = {
            let gm = ground.clone();
            answer_set(q, &gm)
        };
        assert_eq!(
            answer_set(q, &dirty),
            truth,
            "{} must match the truth",
            q.name()
        );
        println!(
            "{}: {} wrong answer(s) removed, {} missing answer(s) added ({} deletions, {} insertions, {} closed questions)",
            q.name(),
            report.wrong_answers,
            report.missing_answers,
            report.edits.deletions(),
            report.edits.insertions(),
            report.total_stats.closed_questions(),
        );
        total_wrong += report.wrong_answers;
        total_missing += report.missing_answers;
        total_deleted += report.edits.deletions();
        total_inserted += report.edits.insertions();
        total_questions += report.total_stats.closed_questions();
    }

    println!(
        "\nsummary: discovered {total_wrong} wrong and {total_missing} missing answers;\n\
         removed {total_deleted} false tuples and inserted {total_inserted} missing ones\n\
         using {total_questions} closed crowd questions in total"
    );
    println!("(the paper's run: 5 wrong + 7 missing answers; 6 tuples removed, 8 added)");
}
