//! Telemetry tour: clean a noisy soccer view with a full observability
//! session attached, then print the merged timeline — span tree, crowd
//! interaction events, per-phase time totals and the metric counters.
//!
//! The pipeline itself is the same as `quickstart`; what this example adds
//! is the `qoco::telemetry` session around it: an [`InMemoryCollector`]
//! captures every span and event, the [`RecordingCrowd`] transcript is
//! bridged into timeline events, and a [`SessionTimeline`] merges the two
//! with the metrics snapshot into one report.
//!
//! Run with: `cargo run --example telemetry_report`

use std::sync::Arc;

use qoco::core::{clean_view, CleaningConfig};
use qoco::crowd::{PerfectOracle, RecordingCrowd, SingleExpert};
use qoco::datasets::{generate_soccer, plant_mixed, soccer_queries, SoccerConfig};
use qoco::engine::answer_set;
use qoco::telemetry::{fmt_ns, InMemoryCollector};

fn main() {
    // ---- a noisy soccer view: 3 wrong + 3 missing answers on Q3 ----
    let ground = generate_soccer(SoccerConfig::default());
    let q = soccer_queries(ground.schema()).remove(2);
    let planted = plant_mixed(&q, &ground, 3, 3, 7);
    let mut d = planted.db;
    println!("query: {}", q.display());
    println!("{} answers before cleaning\n", answer_set(&q, &d).len());

    // ---- clean under a telemetry session ----
    let collector = Arc::new(InMemoryCollector::new());
    let (timeline, report) = {
        let _session = qoco::telemetry::session(collector.clone());
        let mut crowd = RecordingCrowd::new(SingleExpert::new(PerfectOracle::new(ground)));
        let report = clean_view(&q, &mut d, &mut crowd, CleaningConfig::default())
            .expect("perfect-oracle cleaning converges");
        // merge spans + crowd transcript + metrics into one record
        let timeline = collector.timeline(
            crowd.timeline_events(),
            qoco::telemetry::metrics().snapshot(),
        );
        (timeline, report)
    };

    println!("{} answers after cleaning", answer_set(&q, &d).len());
    println!(
        "{} wrong removed, {} missing added, {} edits, {} iterations\n",
        report.wrong_answers,
        report.missing_answers,
        report.edits.len(),
        report.iterations
    );

    // ---- the merged timeline: span tree + events + metrics ----
    println!("{}", timeline.render());

    // ---- the phase-by-phase breakdown ----
    println!("phase breakdown (time and questions):");
    let questions = timeline.metrics().counter("crowd.questions_asked");
    for (name, total) in timeline.phase_totals() {
        println!(
            "  {name:<24} {:>4} span(s)  {:>10}",
            total.count,
            fmt_ns(total.total_ns)
        );
    }
    // self-time attribution: where wall-clock actually goes once the time
    // spent in child phases is subtracted out
    println!("\n{}", timeline.render_attribution());
    println!(
        "  crowd questions asked: {questions} ({} verification events, {} completion events)",
        timeline
            .events()
            .iter()
            .filter(|e| e.label.starts_with("crowd.verify"))
            .count(),
        timeline
            .events()
            .iter()
            .filter(|e| e.label.starts_with("crowd.complete"))
            .count(),
    );
}
