//! The paper's deployment scenario: QOCO as a *view monitor*.
//!
//! "After the data is cleaned with traditional techniques, QOCO can be
//! activated to monitor the views that are served to users/applications.
//! Whenever an error is reported in a view, QOCO can take over to clean the
//! underlying database by interacting with the crowd." (Section 1)
//!
//! This example materializes Q1 over a clean soccer database, streams in a
//! batch of (partially bogus) updates from a scraper, watches the view
//! delta, and triggers a cleaning session as soon as the delta surfaces a
//! suspicious answer.
//!
//! Run with: `cargo run --release --example view_monitoring`

use qoco::core::{clean_view, CleaningConfig};
use qoco::crowd::{PerfectOracle, SingleExpert};
use qoco::data::{tup, Edit, Fact};
use qoco::datasets::{generate_soccer, soccer_query, SoccerConfig};
use qoco::engine::ViewMonitor;

fn main() {
    let ground = generate_soccer(SoccerConfig::default());
    let mut db = ground.clone(); // start clean
    let q = soccer_query(db.schema(), 1);
    println!("monitoring view: {}\n", q.display());

    let mut monitor = ViewMonitor::new(q.clone(), &db);
    println!("initial answers: {:?}\n", monitor.answers());

    // a scraper pushes updates; the middle one is bogus (Switzerland never
    // lost two finals — these games are fabricated)
    let games = db.schema().rel_id("Games").unwrap();
    let clubs = db.schema().rel_id("Clubs").unwrap();
    let updates = vec![
        Edit::insert(Fact::new(clubs, tup!["New Signing", "Ajax"])),
        Edit::insert(Fact::new(
            games,
            tup!["01.06.1999", "BRA", "SUI", "Final", "2:0"],
        )),
        Edit::insert(Fact::new(
            games,
            tup!["01.06.2003", "ARG", "SUI", "Final", "1:0"],
        )),
    ];

    let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
    for edit in updates {
        db.apply(&edit).expect("updates fit the schema");
        let delta = monitor.apply_edit(&db, &edit);
        if !monitor.is_relevant(&edit.fact) {
            println!("update {edit:?} — irrelevant to the view, no work");
            continue;
        }
        println!(
            "update {edit:?} — delta: +{:?} -{:?}",
            delta.added, delta.removed
        );
        if delta.added.is_empty() {
            continue;
        }
        // a new answer appeared: hand over to QOCO
        println!("  new answer surfaced; QOCO takes over…");
        let report = clean_view(&q, &mut db, &mut crowd, CleaningConfig::default())
            .expect("cleaning converges");
        let refreshed = monitor.refresh(&db);
        println!(
            "  cleaning removed {} wrong answer(s) with {} tuple questions; view delta after repair: -{:?}",
            report.wrong_answers,
            report.deletion_stats.verify_fact_questions,
            refreshed.removed,
        );
    }

    println!("\nfinal answers: {:?}", monitor.answers());
    assert_eq!(monitor.answers(), {
        let gm = ground.clone();
        qoco::engine::answer_set(&q, &gm)
    });
    println!("view matches the ground truth again ✓");
}
