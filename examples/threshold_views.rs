//! Aggregate and union views (the Section 9 extensions in action).
//!
//! Authors a "decorated teams" view declaratively:
//!
//! * `COUNT(distinct final won) ≥ 2` — via [`unfold_at_least`], the
//!   count-threshold fragment that desugars into the paper's own Q1 shape;
//! * unioned with "teams that lost ≥ 3 finals" (a second threshold view);
//! * minimized (subsumption + query cores) before cleaning;
//! * cleaned end-to-end with `clean_union_view`.
//!
//! Run with: `cargo run --release --example threshold_views`

use qoco::core::ucq_clean::{clean_union_view, union_answer_set};
use qoco::core::CleaningConfig;
use qoco::crowd::{PerfectOracle, SingleExpert};
use qoco::datasets::{generate_soccer, plant_wrong_answers, SoccerConfig};
use qoco::query::{parse_query, unfold_at_least, UnionQuery, Var};

fn main() {
    let ground = generate_soccer(SoccerConfig::default());
    let schema = ground.schema();

    // template views: one winning / losing final
    let won = parse_query(schema, r#"Won(x) :- Games(d, x, y, "Final", u)"#).unwrap();
    let lost = parse_query(schema, r#"Lost(x) :- Games(d, y, x, "Final", u)"#).unwrap();

    // thresholds: ≥2 titles, or ≥3 lost finals
    let champions = unfold_at_least(&won, &Var::new("d"), 2).expect("threshold view");
    let unlucky = unfold_at_least(&lost, &Var::new("d"), 3).expect("threshold view");
    println!("view 1: {}", champions.display());
    println!("view 2: {}\n", unlucky.display());

    let union = UnionQuery::new("Decorated", vec![champions, unlucky]).unwrap();
    let union = union.minimized();
    println!(
        "union has {} disjunct(s) after minimization\n",
        union.disjuncts().len()
    );

    // dirty database: plant a wrong answer in each disjunct's view
    let mut dirty = ground.clone();
    for (i, d) in union.disjuncts().iter().enumerate() {
        let planted = plant_wrong_answers(d, &dirty, 1, 2, 60 + i as u64);
        println!("planted wrong answer for {}: {:?}", d.name(), planted.wrong);
        dirty = planted.db;
    }

    let before = union_answer_set(&union, &dirty);
    println!("\nanswers before cleaning: {}", before.len());

    let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
    let report = clean_union_view(&union, &mut dirty, &mut crowd, CleaningConfig::default())
        .expect("cleaning converges");

    let after = union_answer_set(&union, &dirty);
    let truth = {
        let gm = ground.clone();
        union_answer_set(&union, &gm)
    };
    assert_eq!(after, truth, "the union view must equal the truth");
    println!(
        "answers after cleaning: {} (matches the ground truth ✓)",
        after.len()
    );
    println!(
        "\n{} wrong answer(s) removed with {} tuple questions across both disjuncts",
        report.wrong_answers, report.deletion_stats.verify_fact_questions
    );
    println!("decorated teams: {:?}", after);
}
