//! World-Cup cleaning at the paper's scale.
//!
//! Generates the ~5000-tuple Soccer database, dirties it with the paper's
//! default noise (80 % cleanliness), and runs the full QOCO loop on Q1
//! ("European teams who lost at least two finals") with a simulated perfect
//! oracle, comparing the QOCO deletion strategy with the QOCO⁻ and Random
//! baselines exactly as Section 7.2 does.
//!
//! Run with: `cargo run --release --example world_cup_cleaning`

use qoco::core::{clean_view, CleaningConfig, DeletionStrategy, SplitStrategyKind};
use qoco::crowd::{PerfectOracle, SingleExpert};
use qoco::datasets::{generate_soccer, plant_mixed, soccer_query, SoccerConfig};
use qoco::engine::answer_set;

fn main() {
    let ground = generate_soccer(SoccerConfig::default());
    println!("ground truth: {} facts", ground.len());

    let q = soccer_query(ground.schema(), 1);
    println!("view: {}", q.display());

    // plant 3 wrong and 2 missing answers for Q1
    let planted = plant_mixed(&q, &ground, 3, 2, 7);
    println!(
        "planted noise: {} wrong answers {:?}, {} missing answers {:?}",
        planted.wrong.len(),
        planted.wrong,
        planted.missing.len(),
        planted.missing
    );

    let true_answers = {
        let gm = ground.clone();
        answer_set(&q, &gm)
    };

    for deletion in [
        DeletionStrategy::Qoco,
        DeletionStrategy::QocoMinus,
        DeletionStrategy::Random(1),
    ] {
        let mut d = planted.db.clone();
        let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
        let config = CleaningConfig {
            deletion,
            split: SplitStrategyKind::Provenance,
            ..Default::default()
        };
        let report = clean_view(&q, &mut d, &mut crowd, config).expect("cleaning converges");
        assert_eq!(
            answer_set(&q, &d),
            true_answers,
            "view must equal the truth"
        );
        println!("\n=== deletion strategy: {} ===", deletion.label());
        println!(
            "converged in {} iteration(s); removed {} wrong, added {} missing",
            report.iterations, report.wrong_answers, report.missing_answers
        );
        println!(
            "tuple-verification questions: {} (naive upper bound {})",
            report.deletion_stats.verify_fact_questions, report.deletion_upper_bound
        );
        println!(
            "insertion cost: {} filled variables + {} satisfiability checks (upper bound {})",
            report.insertion_stats.filled_variables,
            report.insertion_stats.satisfiable_questions,
            report.insertion_upper_bound
        );
    }
}
