//! Quickstart: clean the paper's Figure 1 World-Cup sample with QOCO.
//!
//! Builds the dirty database `D` of Figure 1 (Spain credited with three
//! finals it never won, Brazil filed under Europe, Italy absent), a ground
//! truth `D_G`, and runs the full Algorithm 3 loop on the paper's Q1
//! ("European teams that won the World Cup at least twice") with a
//! simulated perfect oracle.
//!
//! Run with: `cargo run --example quickstart`

use qoco::core::{clean_view, CleaningConfig};
use qoco::crowd::{PerfectOracle, SingleExpert};
use qoco::data::{tup, Database, Schema};
use qoco::engine::answer_set;
use qoco::query::parse_query;

fn main() {
    let schema = Schema::builder()
        .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
        .relation("Teams", &["country", "continent"])
        .build()
        .expect("schema is valid");

    // ---- the dirty database D (Figure 1) ----
    let mut d = Database::empty(schema.clone());
    for (dt, w, r, s, u) in [
        ("13.07.14", "GER", "ARG", "Final", "1:0"),
        ("11.07.10", "ESP", "NED", "Final", "1:0"),
        ("09.07.06", "ITA", "FRA", "Final", "5:3"),
        ("30.06.02", "BRA", "GER", "Final", "2:0"),
        ("12.07.98", "ESP", "NED", "Final", "4:2"), // wrong: France won in 98
        ("17.07.94", "ESP", "NED", "Final", "3:1"), // wrong: Brazil won in 94
        ("08.07.90", "GER", "ARG", "Final", "1:0"),
        ("11.07.82", "ITA", "GER", "Final", "4:1"),
        ("25.06.78", "ESP", "NED", "Final", "1:0"), // wrong: Argentina won in 78
    ] {
        d.insert_named("Games", tup![dt, w, r, s, u]).unwrap();
    }
    for (c, k) in [("GER", "EU"), ("ESP", "EU"), ("BRA", "EU"), ("NED", "SA")] {
        d.insert_named("Teams", tup![c, k]).unwrap(); // BRA/NED rows are wrong
    }

    // ---- the ground truth D_G (what the oracle knows) ----
    let mut g = Database::empty(schema.clone());
    for (dt, w, r, s, u) in [
        ("13.07.14", "GER", "ARG", "Final", "1:0"),
        ("11.07.10", "ESP", "NED", "Final", "1:0"),
        ("09.07.06", "ITA", "FRA", "Final", "5:3"),
        ("30.06.02", "BRA", "GER", "Final", "2:0"),
        ("12.07.98", "FRA", "BRA", "Final", "3:0"),
        ("17.07.94", "BRA", "ITA", "Final", "3:2"),
        ("08.07.90", "GER", "ARG", "Final", "1:0"),
        ("11.07.82", "ITA", "GER", "Final", "4:1"),
        ("25.06.78", "ARG", "NED", "Final", "3:1"),
    ] {
        g.insert_named("Games", tup![dt, w, r, s, u]).unwrap();
    }
    for (c, k) in [
        ("GER", "EU"),
        ("ESP", "EU"),
        ("BRA", "SA"),
        ("NED", "EU"),
        ("ITA", "EU"),
        ("FRA", "EU"),
        ("ARG", "SA"),
    ] {
        g.insert_named("Teams", tup![c, k]).unwrap();
    }

    // ---- the view: the paper's Q1 ----
    let q = parse_query(
        &schema,
        r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
    )
    .unwrap();

    println!("query: {}", q.display());
    println!("Q1(D)  before cleaning: {:?}", answer_set(&q, &d));
    {
        let gm = g.clone();
        println!("Q1(D_G) (the truth):    {:?}", answer_set(&q, &gm));
    }

    // ---- clean with a simulated perfect oracle ----
    let mut crowd = SingleExpert::new(PerfectOracle::new(g));
    let report = clean_view(&q, &mut d, &mut crowd, CleaningConfig::default())
        .expect("perfect-oracle cleaning converges");

    println!("\nQ1(D') after cleaning:  {:?}", answer_set(&q, &d));
    println!("\n{report}");
    println!("edits applied:");
    for e in report.edits.edits() {
        println!("  {e:?}");
    }
}
