//! Cleaning with an imperfect crowd (Section 6.2 / Figure 4).
//!
//! A panel of soccer fans who each err on 10 % of their answers cleans the
//! same dirty view. Majority voting with early stop (2-of-3), plus
//! closed-question re-verification of every open answer, still converges to
//! the true result — at a higher total-answer cost than a single perfect
//! expert, which is exactly the trade-off Figure 4 quantifies.
//!
//! Run with: `cargo run --release --example imperfect_crowd`

use qoco::core::multi::{clean_view_parallel, ParallelMajorityCrowd};
use qoco::core::CleaningConfig;
use qoco::crowd::{ImperfectOracle, PerfectOracle, SingleExpert};
use qoco::datasets::{generate_soccer, plant_mixed, soccer_query, SoccerConfig};
use qoco::engine::answer_set;

fn main() {
    let ground = generate_soccer(SoccerConfig::default());
    let q = soccer_query(ground.schema(), 2);
    println!("view: {}", q.display());

    let planted = plant_mixed(&q, &ground, 3, 2, 5);
    println!(
        "planted {} wrong + {} missing answers\n",
        planted.wrong.len(),
        planted.missing.len()
    );
    let truth = {
        let gm = ground.clone();
        answer_set(&q, &gm)
    };

    // ---- a single perfect expert, for reference ----
    {
        let mut d = planted.db.clone();
        let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
        let report =
            qoco::core::clean_view(&q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        assert_eq!(answer_set(&q, &d), truth);
        println!(
            "single perfect expert: {} total crowd answers ({} closed, {} open-answer variables)",
            report.total_stats.total_crowd_answers(),
            report.total_stats.closed_answers,
            report.total_stats.open_answer_variables,
        );
    }

    // ---- a 3-expert imperfect panel with majority voting ----
    for error_rate in [0.05, 0.10, 0.20] {
        let mut d = planted.db.clone();
        let experts: Vec<ImperfectOracle> = (0..3)
            .map(|i| ImperfectOracle::new(ground.clone(), error_rate, 500 + i))
            .collect();
        let mut crowd = ParallelMajorityCrowd::new(experts);
        let config = CleaningConfig {
            max_iterations: 60,
            ..Default::default()
        };
        match clean_view_parallel(&q, &mut d, &mut crowd, config) {
            Ok(report) => {
                let converged = answer_set(&q, &d) == truth;
                println!(
                    "3 experts at {:.0}% error: {} total crowd answers, {} iterations, converged: {}",
                    error_rate * 100.0,
                    report.total_stats.total_crowd_answers(),
                    report.iterations,
                    converged,
                );
            }
            Err(e) => println!(
                "3 experts at {:.0}% error: did not converge ({e})",
                error_rate * 100.0
            ),
        }
    }
}
