use std::sync::Arc;
use std::time::Duration;

use qoco_bench::{phase_breakdown, Experiments};
use qoco_telemetry::{session, InMemoryCollector, Profiler};

#[test]
fn phase_breakdown_completes_under_outer_session_and_sampler() {
    // Same order as the figures binary: session and sampler first, then
    // the soccer context, then the target.
    let _outer = session(Arc::new(InMemoryCollector::new()));
    let profiler = Profiler::start(Duration::from_micros(200));
    let ex = Experiments::soccer();
    let t = phase_breakdown(&ex);
    let _ = profiler.stop();
    assert!(format!("{t}").contains("clean.session"));
}
