//! The enabled-telemetry overhead budget.
//!
//! DESIGN.md §9 documents the budget: telemetry must cost **zero when
//! disabled** (covered by `telemetry_noop_guard`) and **under 5% of
//! end-to-end evaluation wall clock when enabled**. This test enforces the
//! enabled half against a real workload. The assertion threshold is looser
//! than the documented budget (1.20× vs 1.05×) because tier-1 tests run on
//! loaded, single-core CI machines under debug builds, where run-to-run
//! noise alone exceeds 5%; a telemetry path that regressed to per-span
//! locking or allocation storms shows up as 2–10×, which this still
//! catches. Min-of-N with interleaved measurement order keeps a one-off
//! scheduler stall on either side from deciding the verdict.
//!
//! Lives in its own integration-test binary: sessions are process-global.

use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qoco_bench::scaling::dense_workload;
use qoco_engine::{all_assignments, Assignment, EvalOptions};
use qoco_telemetry::{InMemoryCollector, Profiler};

const ROUNDS: usize = 7;
const NOISE_HEADROOM: f64 = 1.20;

/// Serializes the two tests: the budget test measures with telemetry
/// *disabled* part of the time, which the sibling test's session would
/// corrupt (the telemetry session lock only serializes sessions).
static SERIAL: Mutex<()> = Mutex::new(());

fn eval_once(db: &qoco_data::Database, q: &qoco_query::ConjunctiveQuery) -> usize {
    all_assignments(q, db, &Assignment::new(), EvalOptions::default())
        .assignments
        .len()
}

fn time_ns(mut f: impl FnMut() -> usize) -> u64 {
    let start = Instant::now();
    black_box(f());
    start.elapsed().as_nanos() as u64
}

#[test]
fn enabled_telemetry_stays_within_the_documented_overhead_budget() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let (db, q) = dense_workload(500);
    // warm lazy indexes and page in both paths before any measurement
    assert!(eval_once(&db, &q) > 0);

    let mut disabled_min = u64::MAX;
    let mut enabled_min = u64::MAX;
    for _ in 0..ROUNDS {
        assert!(
            !qoco_telemetry::enabled(),
            "no session may be active in this binary"
        );
        disabled_min = disabled_min.min(time_ns(|| eval_once(&db, &q)));

        let collector = Arc::new(InMemoryCollector::new());
        let session = qoco_telemetry::session(collector);
        enabled_min = enabled_min.min(time_ns(|| eval_once(&db, &q)));
        drop(session);
    }

    let ratio = enabled_min as f64 / disabled_min as f64;
    assert!(
        ratio < NOISE_HEADROOM,
        "enabled telemetry costs {ratio:.2}× over disabled \
         (min-of-{ROUNDS}: {enabled_min}ns vs {disabled_min}ns) — \
         the documented budget is <5%; something expensive is on the enabled path"
    );
}

#[test]
fn per_span_enabled_cost_is_bounded() {
    // The enabled per-span cost is one atomic id, a thread-local stack
    // push/pop, two clock reads and one collector call. Budget: 4µs/op
    // average even on a loaded debug-build CI machine (release is ~100×
    // under this); a mutex-contended or allocating hot path blows through.
    const OPS: u64 = 100_000;
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let collector = Arc::new(InMemoryCollector::new());
    let session = qoco_telemetry::session(collector.clone());
    let start = Instant::now();
    for i in 0..OPS {
        let span = qoco_telemetry::span(black_box("budget.op"));
        qoco_telemetry::counter_add("budget.ops", black_box(i) & 1);
        span.finish();
    }
    let elapsed = start.elapsed();
    drop(session);
    assert_eq!(collector.spans().len(), OPS as usize);
    let per_op_ns = elapsed.as_nanos() as f64 / OPS as f64;
    assert!(
        per_op_ns < 4_000.0,
        "enabled span+counter op costs {per_op_ns:.0}ns on average (budget 4000ns)"
    );
}

/// The serve layer's request-provenance path (PR 10) runs once per HTTP
/// request: mark the thread, register the in-flight entry, bump the RED
/// counters, unregister. That is a registry-mutex round trip and a few
/// string allocations — fine per request, fatal if it ever crept into a
/// per-span or per-tuple path. Budget: 10µs/op average under a loaded
/// debug build (release is far under 1µs).
#[test]
fn per_request_enabled_cost_is_bounded() {
    const OPS: u64 = 50_000;
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let collector = Arc::new(InMemoryCollector::new());
    let session = qoco_telemetry::session(collector);
    let start = Instant::now();
    for i in 0..OPS {
        let token = qoco_telemetry::begin_request(black_box("qr-budget"), "GET", "/health");
        qoco_telemetry::set_request_phase("handler");
        qoco_telemetry::counter_add("serve.requests", black_box(i) & 1);
        assert!(qoco_telemetry::end_request(token).is_some());
    }
    let elapsed = start.elapsed();
    drop(session);
    let per_op_ns = elapsed.as_nanos() as f64 / OPS as f64;
    assert!(
        per_op_ns < 10_000.0,
        "request begin/phase/end costs {per_op_ns:.0}ns on average (budget 10000ns)"
    );
}

/// A running sampler must not slow the mutators it observes. The sampler
/// never blocks span open/close — it `try_lock`s the stack registry and
/// counts a dropped sample on contention — so the with-sampler eval time
/// should match the without-sampler time up to scheduler noise. Same
/// min-of-N interleaved scheme and the same rationale for a loose bound as
/// the enabled-telemetry test above: a regression that makes the sampler
/// *block* mutators (a `lock()` instead of `try_lock()`, say) shows up as
/// multiples, not percentages.
#[test]
fn sampling_profiler_overhead_stays_within_budget() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let (db, q) = dense_workload(500);
    let collector = Arc::new(InMemoryCollector::new());
    let session = qoco_telemetry::session(collector);
    assert!(eval_once(&db, &q) > 0); // warm-up under the session

    let mut plain_min = u64::MAX;
    let mut sampled_min = u64::MAX;
    let mut ticks = 0u64;
    for _ in 0..ROUNDS {
        plain_min = plain_min.min(time_ns(|| eval_once(&db, &q)));

        let profiler = Profiler::start(Duration::from_micros(200));
        assert!(profiler.is_live(), "sampler must run under a live session");
        sampled_min = sampled_min.min(time_ns(|| eval_once(&db, &q)));
        let profile = profiler.stop();
        ticks += profile.samples + profile.dropped;
    }
    drop(session);
    assert!(
        ticks > 0,
        "across {ROUNDS} rounds the sampler never ticked — it was not running"
    );

    let ratio = sampled_min as f64 / plain_min as f64;
    assert!(
        ratio < NOISE_HEADROOM,
        "a 200µs sampler costs {ratio:.2}× over unprofiled eval \
         (min-of-{ROUNDS}: {sampled_min}ns vs {plain_min}ns) — \
         the sampler must never block mutators"
    );
}

/// A running qoco-watch must not slow the mutators it observes. Each wall
/// tick snapshots the metrics registry and evaluates rules off the mutator
/// threads; mutators only pay the registry's existing sharded counter path
/// plus the `watch_tick` relaxed load. Same min-of-N interleaved scheme and
/// loose bound as the profiler test above: a watch that put locking or
/// evaluation onto the mutator path would show up as multiples.
#[test]
fn watch_sampler_overhead_stays_within_budget() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let (db, q) = dense_workload(500);
    let collector = Arc::new(InMemoryCollector::new());
    let session = qoco_telemetry::session(collector);
    assert!(eval_once(&db, &q) > 0); // warm-up under the session

    let rules = qoco_telemetry::parse_rules(
        "rule budget_assignments: rate(eval.assignments_tried, 1s) > 1/s => info\n\
         rule budget_p95: p95(eval.assignments) > 10000000000 => warn\n",
    )
    .expect("valid budget rules");

    let mut plain_min = u64::MAX;
    let mut watched_min = u64::MAX;
    let mut ticks = 0u64;
    for _ in 0..ROUNDS {
        plain_min = plain_min.min(time_ns(|| eval_once(&db, &q)));

        let guard = qoco_telemetry::start_watch(
            rules.clone(),
            qoco_telemetry::WatchTick::Wall(Duration::from_millis(1)),
        );
        assert!(guard.is_live(), "watch must run under a live session");
        watched_min = watched_min.min(time_ns(|| eval_once(&db, &q)));
        let watch = guard.watch().expect("live guard holds a watch");
        drop(guard);
        ticks += watch.ticks();
    }
    drop(session);
    assert!(
        ticks > 0,
        "across {ROUNDS} rounds the watch sampler never ticked — it was not running"
    );

    let ratio = watched_min as f64 / plain_min as f64;
    assert!(
        ratio < NOISE_HEADROOM,
        "a 1ms watch sampler costs {ratio:.2}× over unwatched eval \
         (min-of-{ROUNDS}: {watched_min}ns vs {plain_min}ns) — \
         sampling and rule evaluation must stay off the mutator path"
    );
}
