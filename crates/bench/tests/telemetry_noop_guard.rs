//! The benchmark guard for the telemetry fast path: with no collector
//! installed, spans, counters and events must be branch-cheap. The bound is
//! deliberately loose (debug builds, loaded CI machines) — it exists to
//! catch a regression that puts allocation, locking or clock reads on the
//! disabled path, which would show up as a >100× slowdown, not a 2× one.
//!
//! Lives in its own integration-test binary so no sibling test can have a
//! telemetry session installed while it runs.

use std::hint::black_box;
use std::time::{Duration, Instant};

const ITERATIONS: u64 = 1_000_000;
// ~10M cheap ops/sec even under a debug build on a busy machine; the
// disabled path is two relaxed atomic loads per op.
const BUDGET: Duration = Duration::from_millis(1_500);

#[test]
fn disabled_telemetry_is_a_noop_fast_path() {
    assert!(
        !qoco_telemetry::enabled(),
        "no collector must be installed in this process"
    );
    let start = Instant::now();
    for i in 0..ITERATIONS {
        let span = qoco_telemetry::span(black_box("guard.noop"));
        qoco_telemetry::counter_add("guard.noop", black_box(i));
        qoco_telemetry::gauge_add("guard.noop_gauge", black_box(1.0));
        qoco_telemetry::event("guard.noop", || unreachable!("lazy detail must not run"));
        // decision provenance: begin must return the disabled sentinel and
        // the detail closures must never run
        let decision = qoco_telemetry::begin_decision();
        assert_eq!(decision, 0, "disabled begin_decision must return 0");
        qoco_telemetry::finish_decision(decision, "guard.noop", || {
            unreachable!("lazy decision detail must not run")
        });
        qoco_telemetry::record_decision("guard.noop", || {
            unreachable!("lazy decision detail must not run")
        });
        // qoco-watch: with no watch installed this is one relaxed load
        qoco_telemetry::watch_tick();
        // request provenance (PR 10): disabled begin must return the 0
        // sentinel and neither mark the thread nor touch the registry
        let token = qoco_telemetry::begin_request(black_box("qr-noop"), "GET", "/health");
        assert_eq!(token, 0, "disabled begin_request must return 0");
        qoco_telemetry::set_request_phase("handler");
        qoco_telemetry::set_request_session(black_box("s1"));
        assert_eq!(qoco_telemetry::current_request_id(), None);
        assert!(qoco_telemetry::end_request(token).is_none());
        span.finish();
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < BUDGET,
        "{ITERATIONS} disabled span+counter+event+decision ops took {elapsed:?} \
         (budget {BUDGET:?}) — something expensive crept onto the disabled path"
    );
    // and the disabled ops must leave no trace
    assert_eq!(qoco_telemetry::now_ns(), 0);
    assert_eq!(qoco_telemetry::current_decision_id(), None);
    assert_eq!(
        qoco_telemetry::metrics().snapshot().counter("guard.noop"),
        0
    );
    assert!(
        qoco_telemetry::inflight_requests().is_empty(),
        "disabled request marking must leave the in-flight registry empty"
    );
}

/// With telemetry disabled, starting the profiler must be inert: no sampler
/// thread, no samples, and `stop` returns an empty profile instantly rather
/// than blocking on a join. (The zero-*allocation* claim is structural —
/// `Profiler::start` returns `inner: None` before any `Vec`/`Box`/thread is
/// touched — and this test pins the observable half of it.)
#[test]
fn disabled_profiler_spawns_nothing_and_captures_nothing() {
    assert!(
        !qoco_telemetry::enabled(),
        "no collector must be installed in this process"
    );
    let (samples_before, dropped_before) = qoco_telemetry::sample_totals();
    let profiler = qoco_telemetry::Profiler::start(Duration::from_micros(50));
    assert!(
        !profiler.is_live(),
        "a disabled profiler must not spawn a sampler thread"
    );
    // Give a hypothetical runaway sampler time to produce something.
    std::thread::sleep(Duration::from_millis(5));
    let stopped_at = Instant::now();
    let profile = profiler.stop();
    assert!(
        stopped_at.elapsed() < Duration::from_millis(50),
        "stop() of an inert profiler must not block on a thread join"
    );
    assert!(profile.is_empty(), "inert profiler must capture no stacks");
    assert_eq!(profile.samples, 0);
    assert_eq!(profile.dropped, 0);
    assert_eq!(
        qoco_telemetry::sample_totals(),
        (samples_before, dropped_before),
        "disabled profiler must not touch the process-wide sample totals"
    );
}

/// With telemetry disabled, starting a watch must be inert: no sampler
/// thread, no global installation, and `watch_tick` stays the bare
/// relaxed-load fast path (exercised above inside the hot loop).
#[test]
fn disabled_watch_spawns_nothing_and_installs_nothing() {
    assert!(
        !qoco_telemetry::enabled(),
        "no collector must be installed in this process"
    );
    let rules = vec![
        qoco_telemetry::parse_rule("rule guard: rate(guard.noop, 5s) > 1/s => warn")
            .expect("valid rule"),
    ];
    let guard = qoco_telemetry::start_watch(
        rules,
        qoco_telemetry::WatchTick::Wall(Duration::from_millis(1)),
    );
    assert!(!guard.is_live(), "a disabled watch must not start");
    assert!(guard.watch().is_none(), "inert guard must hold no watch");
    assert!(
        qoco_telemetry::watch().is_none(),
        "a disabled watch must not install globally"
    );
    // Give a hypothetical runaway sampler thread time to tick, then make
    // sure ticking by hand is still a no-op.
    std::thread::sleep(Duration::from_millis(5));
    qoco_telemetry::watch_tick();
    let dropped_at = Instant::now();
    drop(guard);
    assert!(
        dropped_at.elapsed() < Duration::from_millis(50),
        "dropping an inert watch guard must not block on a thread join"
    );
}
