//! The paper's timing claim (Section 7): "the running time required to
//! select the next question … was always not more than one or two seconds".
//! These benches measure our question-selection path: witness computation +
//! hitting-set bookkeeping + the greedy pick, and a full single-answer
//! removal round with a simulated oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qoco_core::{crowd_remove_wrong_answer, DeletionStrategy, HittingSetInstance};
use qoco_crowd::{PerfectOracle, SingleExpert};
use qoco_datasets::{generate_soccer, plant_wrong_answers, soccer_query, SoccerConfig};
use qoco_engine::witnesses_for_answer;

fn bench_selection(c: &mut Criterion) {
    let ground = generate_soccer(SoccerConfig::default());
    let q = soccer_query(ground.schema(), 3);
    let planted = plant_wrong_answers(&q, &ground, 1, 4, 7);
    let target = planted.wrong[0].clone();
    let db = planted.db.clone();

    c.bench_function("witnesses+greedy_pick(Q3)", |b| {
        b.iter(|| {
            let sets = witnesses_for_answer(&q, &db, &target);
            let instance = HittingSetInstance::new(sets);
            black_box(instance.most_frequent())
        })
    });

    c.bench_function("unique_minimal_hitting_set(Q3)", |b| {
        let sets = witnesses_for_answer(&q, &db, &target);
        let instance = HittingSetInstance::new(sets);
        b.iter(|| black_box(instance.unique_minimal_hitting_set()))
    });

    c.bench_function("remove_wrong_answer(Q3, full round)", |b| {
        b.iter(|| {
            let mut d = planted.db.clone();
            let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
            black_box(
                crowd_remove_wrong_answer(&q, &mut d, &target, &mut crowd, DeletionStrategy::Qoco)
                    .unwrap()
                    .questions,
            )
        })
    });
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
