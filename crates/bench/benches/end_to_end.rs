//! End-to-end cleaning benchmarks: a full Algorithm 3 session on the
//! paper-scale soccer database with planted noise, per strategy pair.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qoco_core::{clean_view, CleaningConfig, DeletionStrategy, SplitStrategyKind};
use qoco_crowd::{PerfectOracle, SingleExpert};
use qoco_datasets::{generate_soccer, plant_mixed, soccer_query, SoccerConfig};

fn bench_clean(c: &mut Criterion) {
    let ground = generate_soccer(SoccerConfig::default());
    let q = soccer_query(ground.schema(), 1);
    let planted = plant_mixed(&q, &ground, 2, 2, 17);
    let mut group = c.benchmark_group("clean_view_q1");
    group.sample_size(20);
    for (label, deletion, split) in [
        (
            "qoco+provenance",
            DeletionStrategy::Qoco,
            SplitStrategyKind::Provenance,
        ),
        (
            "qoco+mincut",
            DeletionStrategy::Qoco,
            SplitStrategyKind::MinCut,
        ),
        (
            "qoco-minus+provenance",
            DeletionStrategy::QocoMinus,
            SplitStrategyKind::Provenance,
        ),
        (
            "random+naive",
            DeletionStrategy::Random(3),
            SplitStrategyKind::Naive,
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut d = planted.db.clone();
                let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
                let config = CleaningConfig {
                    deletion,
                    split,
                    ..Default::default()
                };
                black_box(
                    clean_view(&q, &mut d, &mut crowd, config)
                        .unwrap()
                        .iterations,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clean);
criterion_main!(benches);
