//! Query evaluation benchmarks.
//!
//! Two parts:
//! 1. criterion-style micro-benchmarks on the paper-scale soccer database
//!    (answer-set computation and witness extraction for Q1–Q5);
//! 2. a size × thread-count scaling sweep on a synthetic two-way join,
//!    comparing the current zero-copy engine against the preserved seed
//!    algorithm ([`qoco_bench::seed_eval`]) and writing the measurements to
//!    `BENCH_eval.json` at the repository root.

use criterion::Criterion;
use std::hint::black_box;
use std::time::Instant;

use qoco_bench::seed_eval::SeedEval;
use qoco_data::{tup, Database, Schema};
use qoco_datasets::{generate_soccer, soccer_queries, SoccerConfig};
use qoco_engine::{all_assignments, answer_set, witnesses_for_answer, Assignment, EvalOptions};
use qoco_query::{parse_query, ConjunctiveQuery};

fn bench_answer_sets(c: &mut Criterion) {
    let ground = generate_soccer(SoccerConfig::default());
    let queries = soccer_queries(ground.schema());
    let mut group = c.benchmark_group("answer_set");
    for q in &queries {
        let db = ground.clone();
        group.bench_function(q.name(), |b| b.iter(|| black_box(answer_set(q, &db)).len()));
    }
    group.finish();
}

fn bench_witnesses(c: &mut Criterion) {
    let ground = generate_soccer(SoccerConfig::default());
    let queries = soccer_queries(ground.schema());
    let mut group = c.benchmark_group("witnesses_for_answer");
    for q in &queries {
        let db = ground.clone();
        let answers = answer_set(q, &db);
        let target = answers.first().cloned().expect("non-empty result");
        group.bench_function(q.name(), |b| {
            b.iter(|| black_box(witnesses_for_answer(q, &db, &target)).len())
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// scaling sweep
// ---------------------------------------------------------------------------

/// The *dense* workload: `n` tuples per relation, `n / 10` join groups of
/// 10 tuples each, so `Q(x, y) :- A(x, g), B(y, g)` has `10 n` valid
/// assignments. Output-bound: every candidate survives, so this measures
/// shared enumeration costs, not index layout.
fn dense_workload(n: usize) -> (Database, ConjunctiveQuery) {
    let schema = Schema::builder()
        .relation("A", &["x", "g"])
        .relation("B", &["y", "g"])
        .build()
        .unwrap();
    let mut db = Database::empty(schema.clone());
    let groups = (n / 10).max(1);
    for i in 0..n {
        db.insert_named("A", tup![format!("a{i:06}"), format!("g{:06}", i % groups)])
            .unwrap();
        db.insert_named("B", tup![format!("b{i:06}"), format!("g{:06}", i % groups)])
            .unwrap();
    }
    let q = parse_query(&schema, "Q(x, y) :- A(x, g), B(y, g).").unwrap();
    (db, q)
}

/// The *selective* workload: `B` mirrors `A` with columns flipped, in join
/// groups of 200. `Q(x) :- A(x, g), B(g, x)` probes `B` on the
/// low-selectivity group column (the first ground column), so every descend
/// walks a 200-tuple posting list of which exactly one candidate survives
/// the bound-`x` check. Probe-bound: this is where the seed's per-descend
/// `to_vec()` + sort + clone-then-check is paid 200× per survivor.
fn selective_workload(n: usize) -> (Database, ConjunctiveQuery) {
    let schema = Schema::builder()
        .relation("A", &["x", "g"])
        .relation("B", &["g", "x"])
        .build()
        .unwrap();
    let mut db = Database::empty(schema.clone());
    let groups = (n / 200).max(1);
    for i in 0..n {
        let x = format!("a{i:06}");
        let g = format!("g{:06}", i % groups);
        db.insert_named("A", tup![x.clone(), g.clone()]).unwrap();
        db.insert_named("B", tup![g, x]).unwrap();
    }
    let q = parse_query(&schema, "Q(x) :- A(x, g), B(g, x).").unwrap();
    (db, q)
}

/// Wall-clock mean over an adaptively chosen iteration count: at least 3
/// iterations, stopping once 300 ms of measurement have accumulated.
fn measure(mut f: impl FnMut() -> usize) -> (f64, usize) {
    f(); // warm-up (also builds lazy indexes)
    let mut total_ns: u128 = 0;
    let mut iters = 0usize;
    while iters < 3 || (total_ns < 300_000_000 && iters < 50) {
        let start = Instant::now();
        black_box(f());
        total_ns += start.elapsed().as_nanos();
        iters += 1;
    }
    (total_ns as f64 / iters as f64, iters)
}

struct Sample {
    workload: &'static str,
    size: usize,
    engine: &'static str,
    threads: usize,
    mean_ns: f64,
    iters: usize,
    assignments: usize,
}

type WorkloadFn = fn(usize) -> (Database, ConjunctiveQuery);

fn scaling_sweep() -> Vec<Sample> {
    let sizes = [1_000usize, 4_000, 16_000];
    let threads = [1usize, 2, 4, 8];
    let workloads: [(&'static str, WorkloadFn); 2] =
        [("selective", selective_workload), ("dense", dense_workload)];
    let mut samples = Vec::new();
    for (workload, build) in workloads {
        for &n in &sizes {
            let (db, q) = build(n);
            let expected = {
                let mut seed = SeedEval::new(&db);
                let baseline = seed.all_assignments(&q);
                let (mean_ns, iters) = {
                    let mut seed = SeedEval::new(&db);
                    measure(|| seed.all_assignments(&q).len())
                };
                samples.push(Sample {
                    workload,
                    size: n,
                    engine: "seed",
                    threads: 1,
                    mean_ns,
                    iters,
                    assignments: baseline.len(),
                });
                baseline
            };
            for &t in &threads {
                let opts = EvalOptions {
                    threads: Some(t),
                    ..EvalOptions::default()
                };
                let res = all_assignments(&q, &db, &Assignment::new(), opts);
                assert_eq!(
                    res.assignments, expected,
                    "engines disagree on {workload} at n={n}, threads={t}"
                );
                let (mean_ns, iters) = measure(|| {
                    all_assignments(&q, &db, &Assignment::new(), opts)
                        .assignments
                        .len()
                });
                samples.push(Sample {
                    workload,
                    size: n,
                    engine: "current",
                    threads: t,
                    mean_ns,
                    iters,
                    assignments: expected.len(),
                });
            }
        }
    }
    samples
}

fn write_json(samples: &[Sample]) {
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"eval_scaling\",\n");
    out.push_str(
        "  \"workloads\": {\n    \"selective\": \"Q(x) :- A(x, g), B(g, x); groups of 200, one survivor per probe\",\n    \"dense\": \"Q(x, y) :- A(x, g), B(y, g); groups of 10, every candidate survives\"\n  },\n",
    );
    out.push_str(&format!(
        "  \"host_parallelism\": {host_parallelism},\n  \"note\": \"threads > host_parallelism measure determinism-preserving overhead, not speedup\",\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"size\": {}, \"engine\": \"{}\", \"threads\": {}, \"mean_ns\": {:.0}, \"iters\": {}, \"assignments\": {}}}{sep}\n",
            s.workload, s.size, s.engine, s.threads, s.mean_ns, s.iters, s.assignments
        ));
    }
    out.push_str("  ],\n  \"speedup_vs_seed_single_thread\": {\n");
    let keys: Vec<(&'static str, usize)> = {
        let mut v: Vec<(&'static str, usize)> =
            samples.iter().map(|s| (s.workload, s.size)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for (i, &(w, n)) in keys.iter().enumerate() {
        let seed = samples
            .iter()
            .find(|s| s.workload == w && s.size == n && s.engine == "seed")
            .expect("seed sample");
        let cur = samples
            .iter()
            .find(|s| s.workload == w && s.size == n && s.engine == "current" && s.threads == 1)
            .expect("current t=1 sample");
        let sep = if i + 1 == keys.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{w}/{n}\": {:.2}{sep}\n",
            seed.mean_ns / cur.mean_ns
        ));
    }
    out.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    std::fs::write(path, &out).expect("write BENCH_eval.json");
    println!("wrote {path}");
}

fn main() {
    let mut c = Criterion::default();
    bench_answer_sets(&mut c);
    bench_witnesses(&mut c);
    let samples = scaling_sweep();
    for s in &samples {
        println!(
            "eval_scaling/{}/n={}/{}{}  {:>12.0} ns/iter  ({} iters, {} assignments)",
            s.workload,
            s.size,
            s.engine,
            if s.engine == "current" {
                format!("/t={}", s.threads)
            } else {
                String::new()
            },
            s.mean_ns,
            s.iters,
            s.assignments
        );
    }
    write_json(&samples);
}
