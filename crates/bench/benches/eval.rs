//! Query evaluation micro-benchmarks on the paper-scale soccer database:
//! answer-set computation and witness extraction for Q1–Q5.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qoco_datasets::{generate_soccer, soccer_queries, SoccerConfig};
use qoco_engine::{answer_set, witnesses_for_answer};

fn bench_answer_sets(c: &mut Criterion) {
    let ground = generate_soccer(SoccerConfig::default());
    let queries = soccer_queries(ground.schema());
    let mut group = c.benchmark_group("answer_set");
    for q in &queries {
        let mut db = ground.clone();
        group.bench_function(q.name(), |b| {
            b.iter(|| black_box(answer_set(q, &mut db)).len())
        });
    }
    group.finish();
}

fn bench_witnesses(c: &mut Criterion) {
    let ground = generate_soccer(SoccerConfig::default());
    let queries = soccer_queries(ground.schema());
    let mut group = c.benchmark_group("witnesses_for_answer");
    for q in &queries {
        let mut db = ground.clone();
        let answers = answer_set(q, &mut db);
        let target = answers.first().cloned().expect("non-empty result");
        group.bench_function(q.name(), |b| {
            b.iter(|| black_box(witnesses_for_answer(q, &mut db, &target)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_answer_sets, bench_witnesses);
criterion_main!(benches);
