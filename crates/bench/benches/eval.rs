//! Query evaluation benchmarks.
//!
//! Two parts:
//! 1. criterion-style micro-benchmarks on the paper-scale soccer database
//!    (answer-set computation and witness extraction for Q1–Q5);
//! 2. the size × thread-count scaling sweep from [`qoco_bench::scaling`]
//!    (shared with the `qoco-bench regressions` gate), writing the
//!    measurements to `BENCH_eval.json` at the repository root.

use criterion::Criterion;
use std::hint::black_box;

use qoco_bench::scaling::{render_json, scaling_sweep, SweepConfig};
use qoco_datasets::{generate_soccer, soccer_queries, SoccerConfig};
use qoco_engine::{answer_set, witnesses_for_answer};

fn bench_answer_sets(c: &mut Criterion) {
    let ground = generate_soccer(SoccerConfig::default());
    let queries = soccer_queries(ground.schema());
    let mut group = c.benchmark_group("answer_set");
    for q in &queries {
        let db = ground.clone();
        group.bench_function(q.name(), |b| b.iter(|| black_box(answer_set(q, &db)).len()));
    }
    group.finish();
}

fn bench_witnesses(c: &mut Criterion) {
    let ground = generate_soccer(SoccerConfig::default());
    let queries = soccer_queries(ground.schema());
    let mut group = c.benchmark_group("witnesses_for_answer");
    for q in &queries {
        let db = ground.clone();
        let answers = answer_set(q, &db);
        let target = answers.first().cloned().expect("non-empty result");
        group.bench_function(q.name(), |b| {
            b.iter(|| black_box(witnesses_for_answer(q, &db, &target)).len())
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_answer_sets(&mut c);
    bench_witnesses(&mut c);
    let samples = scaling_sweep(&SweepConfig::full());
    for s in &samples {
        println!(
            "eval_scaling/{}/n={}/{}{}  {:>12.0} ns/iter  ({} iters, {} assignments)",
            s.workload,
            s.size,
            s.engine,
            if s.engine == "current" {
                format!("/t={}", s.threads)
            } else {
                String::new()
            },
            s.mean_ns,
            s.iters,
            s.assignments
        );
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    std::fs::write(path, render_json(&samples)).expect("write BENCH_eval.json");
    println!("wrote {path}");
}
