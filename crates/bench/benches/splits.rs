//! Split-strategy micro-benchmarks: how long does each Split()
//! implementation (Section 5.2) take on the embedded Q2|t?

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qoco_core::{MinCutSplit, NaiveSplit, ProvenanceSplit, RandomSplit, SplitStrategy};
use qoco_datasets::{generate_soccer, plant_missing_answers, soccer_query, SoccerConfig};
use qoco_engine::answer_set;
use qoco_query::embed_answer;

fn bench_splits(c: &mut Criterion) {
    let ground = generate_soccer(SoccerConfig::default());
    // Q2 has the biggest body (4 atoms incl. two Teams)
    let q = soccer_query(ground.schema(), 2);
    let planted = plant_missing_answers(&q, &ground, 1, 3);
    let missing = planted.missing[0].clone();
    let q_t = embed_answer(&q, missing.values()).expect("embedding succeeds");
    let db = planted.db.clone();
    // sanity: the answer is indeed missing
    assert!(!answer_set(&q, &db).contains(&missing));

    let mut group = c.benchmark_group("split");
    group.bench_function("provenance", |b| {
        b.iter(|| black_box(ProvenanceSplit.split(&q_t, &db)).is_some())
    });
    group.bench_function("min_cut", |b| {
        b.iter(|| black_box(MinCutSplit.split(&q_t, &db)).is_some())
    });
    group.bench_function("random", |b| {
        let mut s = RandomSplit::new(3);
        b.iter(|| black_box(s.split(&q_t, &db)).is_some())
    });
    group.bench_function("naive", |b| {
        b.iter(|| black_box(NaiveSplit.split(&q_t, &db)).is_none())
    });
    group.finish();
}

criterion_group!(benches, bench_splits);
criterion_main!(benches);
