//! The zero-cost claim, measured: span creation, counter bumps and events
//! with telemetry disabled (the production default) versus enabled with an
//! in-memory collector. The disabled numbers should sit within a few
//! nanoseconds of the empty-loop baseline; the hard guard lives in
//! `tests/telemetry_noop_guard.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_disabled(c: &mut Criterion) {
    assert!(
        !qoco_telemetry::enabled(),
        "benches must start with telemetry off"
    );
    let mut group = c.benchmark_group("telemetry_disabled");
    group.bench_function("span", |b| {
        b.iter(|| {
            let span = qoco_telemetry::span(black_box("bench.noop"));
            span.finish();
        })
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| qoco_telemetry::counter_add("bench.noop", black_box(1)))
    });
    group.bench_function("event", |b| {
        b.iter(|| qoco_telemetry::event("bench.noop", || unreachable!("lazy detail must not run")))
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    let collector = Arc::new(qoco_telemetry::InMemoryCollector::new());
    let _session = qoco_telemetry::session(collector.clone());
    let mut group = c.benchmark_group("telemetry_enabled");
    group.bench_function("span", |b| {
        b.iter(|| {
            let span = qoco_telemetry::span(black_box("bench.live"));
            span.finish();
        })
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| qoco_telemetry::counter_add("bench.live", black_box(1)))
    });
    group.finish();
    collector.clear();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
