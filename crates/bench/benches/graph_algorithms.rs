//! Graph-substrate benchmarks: Stoer–Wagner global min-cut and
//! Edmonds–Karp max-flow on synthetic graphs far larger than any query
//! graph, demonstrating headroom.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qoco_graph::{global_min_cut, max_flow, FlowNetwork, WeightedGraph};

/// A deterministic pseudo-random weighted graph.
fn random_graph(n: usize, density_pct: u64) -> WeightedGraph {
    let mut g = WeightedGraph::new(n);
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for u in 0..n {
        for v in (u + 1)..n {
            if next() % 100 < density_pct {
                g.add_edge(u, v, 1 + next() % 10);
            }
        }
    }
    // guarantee connectivity with a path
    for u in 0..n - 1 {
        g.add_edge(u, u + 1, 1);
    }
    g
}

fn bench_mincut(c: &mut Criterion) {
    let mut group = c.benchmark_group("stoer_wagner");
    for n in [8usize, 32, 64] {
        let g = random_graph(n, 30);
        group.bench_function(format!("n={n}"), |b| {
            b.iter(|| black_box(global_min_cut(&g)).unwrap().weight)
        });
    }
    group.finish();
}

fn bench_maxflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("edmonds_karp");
    for n in [8usize, 32, 64] {
        let wg = random_graph(n, 30);
        let mut net = FlowNetwork::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                let w = wg.weight(u, v);
                if w > 0 {
                    net.add_undirected_edge(u, v, w as i64);
                }
            }
        }
        group.bench_function(format!("n={n}"), |b| {
            b.iter(|| black_box(max_flow(&net, 0, n - 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mincut, bench_maxflow);
criterion_main!(benches);
