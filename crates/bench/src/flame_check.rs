//! Structural validation of flamegraph SVG files.
//!
//! `scripts/ci.sh` renders a flamegraph from the smoke-run profile and
//! needs to know the SVG is actually well-formed — without a browser. The
//! checks mirror what [`qoco_telemetry::flamegraph_svg`] guarantees: an
//! `<svg>` document with matched frame groups, each carrying exactly one
//! `<title>` tooltip and one `<rect>` whose coordinates are finite,
//! non-negative numbers inside the canvas.

use std::collections::BTreeSet;

/// Summary of a structurally valid flamegraph.
#[derive(Debug)]
pub struct FlameSummary {
    /// Number of frame groups (`<g class="frame">`).
    pub frames: usize,
    /// Distinct frame names extracted from the tooltips.
    pub frame_names: BTreeSet<String>,
}

/// The attribute `name="..."` inside `tag`, if present.
fn attr<'a>(tag: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("{name}=\"");
    let start = tag.find(&pat)? + pat.len();
    let end = tag[start..].find('"')? + start;
    Some(&tag[start..end])
}

fn numeric_attr(tag: &str, name: &str, frame: usize) -> Result<f64, String> {
    let raw = attr(tag, name)
        .ok_or_else(|| format!("frame {frame}: rect has no \"{name}\" attribute"))?;
    let v: f64 = raw
        .parse()
        .map_err(|_| format!("frame {frame}: rect {name}=\"{raw}\" is not a number"))?;
    if !v.is_finite() {
        return Err(format!("frame {frame}: rect {name} is not finite"));
    }
    Ok(v)
}

fn unescape_xml(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Validate `text` as a flamegraph SVG. `require_frames` lists frame names
/// that must each appear in at least one tooltip.
pub fn validate_flamegraph(text: &str, require_frames: &[String]) -> Result<FlameSummary, String> {
    if !text.starts_with("<?xml") && !text.trim_start().starts_with("<svg") {
        return Err("not an SVG document (no <?xml or <svg prologue)".to_string());
    }
    let svg_open_at = text.find("<svg").ok_or("no <svg element")?;
    let svg_open_end = text[svg_open_at..]
        .find('>')
        .ok_or("unterminated <svg tag")?
        + svg_open_at;
    let svg_tag = &text[svg_open_at..=svg_open_end];
    if !text.contains("</svg>") {
        return Err("no closing </svg>".to_string());
    }
    let width = numeric_attr(svg_tag, "width", 0).map_err(|_| "svg has no numeric width")?;
    let height = numeric_attr(svg_tag, "height", 0).map_err(|_| "svg has no numeric height")?;

    let mut frames = 0usize;
    let mut frame_names = BTreeSet::new();
    let mut rest = text;
    while let Some(start) = rest.find(r#"<g class="frame">"#) {
        let after = &rest[start..];
        let end = after
            .find("</g>")
            .ok_or_else(|| format!("frame {frames}: unterminated <g> group"))?;
        let group = &after[..end];
        frames += 1;

        // exactly one tooltip, of the renderer's `name (N samples, P%)` form
        let title_at = group
            .find("<title>")
            .ok_or_else(|| format!("frame {frames}: no <title> tooltip"))?;
        let title_end = group
            .find("</title>")
            .ok_or_else(|| format!("frame {frames}: unterminated <title>"))?;
        let title = &group[title_at + "<title>".len()..title_end];
        let name = title
            .rsplit_once(" (")
            .filter(|(_, tail)| tail.contains("samples"))
            .map(|(name, _)| name)
            .ok_or_else(|| {
                format!("frame {frames}: tooltip `{title}` lacks a `(N samples, P%)` suffix")
            })?;
        frame_names.insert(unescape_xml(name));

        // exactly one rect, inside the canvas
        let rect_at = group
            .find("<rect")
            .ok_or_else(|| format!("frame {frames}: no <rect>"))?;
        let rect_end = group[rect_at..]
            .find("/>")
            .ok_or_else(|| format!("frame {frames}: unterminated <rect>"))?
            + rect_at;
        let rect = &group[rect_at..rect_end];
        let x = numeric_attr(rect, "x", frames)?;
        let y = numeric_attr(rect, "y", frames)?;
        let w = numeric_attr(rect, "width", frames)?;
        let h = numeric_attr(rect, "height", frames)?;
        if x < 0.0 || y < 0.0 || w <= 0.0 || h <= 0.0 {
            return Err(format!(
                "frame {frames}: rect ({x}, {y}, {w}×{h}) has a non-positive extent"
            ));
        }
        // float rounding in the renderer stays well under half a pixel
        if x + w > width + 0.5 || y + h > height + 0.5 {
            return Err(format!(
                "frame {frames}: rect ({x}, {y}, {w}×{h}) exceeds the {width}×{height} canvas"
            ));
        }
        rest = &rest[start + "<g".len()..];
    }

    if frames == 0 {
        return Err("no frame groups — the flamegraph is empty".to_string());
    }
    for required in require_frames {
        if !frame_names.contains(required) {
            return Err(format!(
                "required frame \"{required}\" not present (have: {})",
                frame_names.iter().cloned().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    Ok(FlameSummary {
        frames,
        frame_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_telemetry::Profile;

    fn rendered() -> String {
        let mut p = Profile::default();
        p.record("clean.session;eval.assignments;eval.par_chunk", 40);
        p.record("clean.session;eval.assignments", 10);
        p.record("clean.session;split.compute", 25);
        p.flamegraph_svg("test profile")
    }

    #[test]
    fn accepts_the_renderer_output() {
        let summary = validate_flamegraph(&rendered(), &[]).unwrap();
        assert_eq!(summary.frames, 4);
        assert!(summary.frame_names.contains("eval.par_chunk"));
    }

    #[test]
    fn require_frame_is_enforced() {
        let svg = rendered();
        assert!(validate_flamegraph(&svg, &["clean.session".to_string()]).is_ok());
        let err = validate_flamegraph(&svg, &["not.there".to_string()]).unwrap_err();
        assert!(err.contains("not.there"), "{err}");
        assert!(
            err.contains("clean.session"),
            "error lists what exists: {err}"
        );
    }

    #[test]
    fn rejects_non_svg_and_truncated_documents() {
        assert!(validate_flamegraph("{}", &[]).is_err());
        let svg = rendered();
        let truncated = &svg[..svg.len() - 10];
        assert!(validate_flamegraph(truncated, &[]).is_err());
    }

    #[test]
    fn rejects_an_empty_flamegraph() {
        let svg = Profile::default().flamegraph_svg("empty");
        let err = validate_flamegraph(&svg, &[]).unwrap_err();
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn rejects_rects_outside_the_canvas() {
        let svg = rendered().replacen("<rect x=\"0.00\"", "<rect x=\"5000.00\"", 1);
        let err = validate_flamegraph(&svg, &[]).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn escaped_names_round_trip_through_tooltips() {
        let mut p = Profile::default();
        p.record("a<b>&frame", 10);
        let svg = p.flamegraph_svg("t");
        let summary = validate_flamegraph(&svg, &["a<b>&frame".to_string()]).unwrap();
        assert!(summary.frame_names.contains("a<b>&frame"));
    }
}
