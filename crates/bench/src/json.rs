//! A minimal recursive-descent JSON parser.
//!
//! The workspace is dependency-free by policy, and the bench harness needs
//! to *read* JSON in two places: the committed `BENCH_eval.json` baseline
//! (for the regression gate) and exported Chrome traces (for
//! `qoco-bench validate-trace`). This parser covers RFC 8259 minus the
//! exotica nobody writes into those files: numbers parse via `f64`, and
//! `\uXXXX` escapes decode the BMP only (unpaired surrogates become the
//! replacement character).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. BTreeMap: key order is not significant in our inputs.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug)]
pub struct ParseError {
    /// What the parser expected or rejected.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // copy one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid)
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0b1100_0000 == 0b1000_0000) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a &str"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"nested": true}, "c": null, "d": "x"}"#;
        let v = Json::parse(doc).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().get("nested"), Some(&Json::Bool(true)));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn unescapes_strings() {
        let v = Json::parse(r#""tab\there \"q\" é \n""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there \"q\" é \n"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_the_committed_baseline_shape() {
        let doc = r#"{
  "bench": "eval_scaling",
  "results": [
    {"workload": "selective", "size": 1000, "engine": "seed", "threads": 1, "mean_ns": 6404looser, "iters": 47, "assignments": 1000}
  ]
}"#;
        // deliberately corrupted number → error, not panic
        assert!(Json::parse(doc).is_err());
        let good = doc.replace("6404looser", "6404000");
        let v = Json::parse(&good).unwrap();
        let cell = &v.get("results").unwrap().as_array().unwrap()[0];
        assert_eq!(cell.get("mean_ns").unwrap().as_f64(), Some(6_404_000.0));
    }
}
