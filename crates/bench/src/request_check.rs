//! `validate-requests` — the request-provenance correctness gate.
//!
//! PR 10 threads a request id from the HTTP edge down to the journal:
//! the serve layer stamps it on the `serve.request` span, the access-log
//! line, every [`DecisionRecord`] made while the request is in flight,
//! and the `r=` field of every journal line the request caused. This
//! gate replays the three artifacts of a serve run — access log,
//! `--telemetry` JSONL export, session journals — and cross-checks them:
//!
//! 1. **strict access-log parse** — every line must be a complete
//!    `{"type":"access",…}` object with a non-empty request id and the
//!    full field set. A torn or corrupted line fails the gate (the
//!    access *writer* is lossy by design, but what reaches disk must be
//!    whole).
//! 2. **spans ⊆ access** — every `serve.request` span's request id must
//!    appear in the access log: a span without a logged request means a
//!    request finished without being accounted for.
//! 3. **access ⊆ spans** — every logged request that got past the
//!    request-line/body rejects (those never reach the span-wrapped
//!    dispatch) must have a matching `serve.request` span.
//! 4. **journal ⊆ access** — every `r=` provenance field in a journal
//!    must name a logged request: an unlogged id on a durable journal
//!    line means provenance was invented or the log lost a line it
//!    should not have.
//! 5. **decisions ⊆ access** — same containment for the `"request"` key
//!    of decision JSONL lines.
//!
//! Because rehydration re-derives journal lines from the *current*
//! request (the replay is driven by the resuming submitter), the gate
//! holds across a `kill -9` + resume as long as the artifacts of both
//! incarnations are passed in together.
//!
//! [`DecisionRecord`]: qoco_telemetry::DecisionRecord

use std::collections::{BTreeMap, BTreeSet};

use crate::json::Json;
use qoco_crowd::Journal;

/// Reject statuses produced before the span-wrapped dispatch runs: the
/// request-line/header/body limits (408, 413, 414, 431) and load
/// shedding (429). Their access-log lines legitimately have no
/// `serve.request` span.
const PRE_DISPATCH_STATUSES: [u64; 5] = [408, 413, 414, 429, 431];

/// What [`validate_requests`] verified, for the success banner.
#[derive(Debug)]
pub struct RequestCheckSummary {
    /// Access-log lines parsed (across all files).
    pub access_lines: usize,
    /// Distinct request ids seen in the access log.
    pub distinct_ids: usize,
    /// `serve.request` spans matched against the log.
    pub spans: usize,
    /// Journal records carrying an `r=` provenance field.
    pub journal_tagged: usize,
    /// Decision records carrying a request id.
    pub decisions_tagged: usize,
}

/// One parsed access-log line, in file order.
struct AccessEntry {
    request: String,
    status: u64,
}

fn parse_access_line(line: &str, lineno: usize, file: &str) -> Result<AccessEntry, String> {
    let at = |msg: &str| format!("{file}:{lineno}: {msg}: {line:?}");
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err(at("torn or truncated access-log line"));
    }
    let json = Json::parse(line).map_err(|e| at(&format!("bad JSON ({e})")))?;
    match json.get("type").and_then(Json::as_str) {
        Some("access") => {}
        _ => return Err(at("line is not an access record")),
    }
    let request = json
        .get("request")
        .and_then(Json::as_str)
        .filter(|r| !r.is_empty())
        .ok_or_else(|| at("missing or empty request id"))?
        .to_string();
    for key in ["method", "route"] {
        if json.get(key).and_then(Json::as_str).is_none() {
            return Err(at(&format!("missing string field `{key}`")));
        }
    }
    let mut numbers = [0u64; 3];
    for (slot, key) in numbers.iter_mut().zip(["status", "bytes", "latency_ns"]) {
        *slot = json
            .get(key)
            .and_then(Json::as_f64)
            .filter(|v| v.fract() == 0.0 && *v >= 0.0)
            .ok_or_else(|| at(&format!("missing numeric field `{key}`")))? as u64;
    }
    Ok(AccessEntry {
        request,
        status: numbers[0],
    })
}

/// Request ids found in a `--telemetry` JSONL export, split by record
/// kind. Lines that are not spans/decisions are ignored (metrics,
/// events, samples all share the stream).
struct TelemetryIds {
    /// Request id of every `serve.request` span.
    span_ids: Vec<String>,
    /// Request id of every decision line that carries one.
    decision_ids: Vec<String>,
}

fn scan_telemetry(text: &str, file: &str) -> Result<TelemetryIds, String> {
    let mut ids = TelemetryIds {
        span_ids: Vec::new(),
        decision_ids: Vec::new(),
    };
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let json = Json::parse(line)
            .map_err(|e| format!("{file}:{}: bad telemetry JSON ({e}): {line:?}", i + 1))?;
        match json.get("type").and_then(Json::as_str) {
            Some("span") if json.get("name").and_then(Json::as_str) == Some("serve.request") => {
                let request = json
                    .get("fields")
                    .and_then(|f| f.get("request"))
                    .and_then(Json::as_str)
                    .filter(|r| !r.is_empty())
                    .ok_or_else(|| {
                        format!(
                            "{file}:{}: serve.request span without a request field: {line:?}",
                            i + 1
                        )
                    })?;
                ids.span_ids.push(request.to_string());
            }
            Some("decision") => {
                if let Some(request) = json.get("request").and_then(Json::as_str) {
                    ids.decision_ids.push(request.to_string());
                }
            }
            _ => {}
        }
    }
    Ok(ids)
}

/// Run the request-provenance gate over the artifacts of one (possibly
/// killed-and-resumed) serve run. Each argument is `(file name, file
/// contents)`; `require` lists request ids that must additionally appear
/// in the access log, on a span, *and* on a journal line.
pub fn validate_requests(
    access_logs: &[(String, String)],
    telemetry: &[(String, String)],
    journals: &[(String, String)],
    require: &[String],
) -> Result<RequestCheckSummary, String> {
    if access_logs.is_empty() {
        return Err("no access log given (--access-log FILE)".to_string());
    }

    // 1. strict parse; remember how often each id was logged.
    let mut entries: Vec<AccessEntry> = Vec::new();
    for (file, text) in access_logs {
        for (i, line) in text.lines().enumerate() {
            entries.push(parse_access_line(line, i + 1, file)?);
        }
    }
    if entries.is_empty() {
        return Err("access log is empty — the run logged nothing".to_string());
    }
    let mut logged: BTreeMap<&str, usize> = BTreeMap::new();
    for e in &entries {
        *logged.entry(e.request.as_str()).or_insert(0) += 1;
    }

    // 2 + 3. spans ⊆ access and access ⊆ spans (past the pre-dispatch
    // rejects).
    let mut span_ids: BTreeSet<String> = BTreeSet::new();
    let mut decision_ids: Vec<String> = Vec::new();
    let mut spans = 0usize;
    for (file, text) in telemetry {
        let ids = scan_telemetry(text, file)?;
        for id in &ids.span_ids {
            if !logged.contains_key(id.as_str()) {
                return Err(format!(
                    "{file}: serve.request span for {id:?} has no access-log line"
                ));
            }
        }
        spans += ids.span_ids.len();
        span_ids.extend(ids.span_ids);
        decision_ids.extend(ids.decision_ids);
    }
    if !telemetry.is_empty() {
        for e in &entries {
            if PRE_DISPATCH_STATUSES.contains(&e.status) {
                continue;
            }
            if !span_ids.contains(&e.request) {
                return Err(format!(
                    "request {:?} (status {}) was logged but produced no serve.request span",
                    e.request, e.status
                ));
            }
        }
    }

    // 4. journal r= fields ⊆ access.
    let mut journal_tagged = 0usize;
    for (file, text) in journals {
        let log = Journal::parse(text).map_err(|e| format!("{file}: bad journal: {e}"))?;
        for record in &log {
            if let Some(rid) = &record.request {
                if !logged.contains_key(rid.as_str()) {
                    return Err(format!(
                        "{file}: journal seq {} names request {rid:?}, which the access log \
                         never saw",
                        record.seq
                    ));
                }
                journal_tagged += 1;
            }
        }
    }

    // 5. decision request ids ⊆ access.
    for id in &decision_ids {
        if !logged.contains_key(id.as_str()) {
            return Err(format!(
                "decision record names request {id:?}, which the access log never saw"
            ));
        }
    }

    // Named ids must have made it all the way down.
    for id in require {
        if !logged.contains_key(id.as_str()) {
            return Err(format!("required request {id:?} is not in the access log"));
        }
        if !telemetry.is_empty() && !span_ids.contains(id) {
            return Err(format!("required request {id:?} has no serve.request span"));
        }
        if !journals.is_empty() && journal_tagged == 0 {
            return Err(format!(
                "required request {id:?}: no journal line carries any r= provenance"
            ));
        }
    }

    Ok(RequestCheckSummary {
        access_lines: entries.len(),
        distinct_ids: logged.len(),
        spans,
        journal_tagged,
        decisions_tagged: decision_ids.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(id: &str, status: u64) -> String {
        format!(
            "{{\"type\":\"access\",\"at_ns\":1,\"request\":\"{id}\",\"method\":\"GET\",\
             \"route\":\"/health\",\"status\":{status},\"bytes\":3,\"latency_ns\":900}}"
        )
    }

    fn span(id: &str) -> String {
        format!(
            "{{\"type\":\"span\",\"id\":1,\"name\":\"serve.request\",\"tid\":0,\
             \"start_ns\":0,\"dur_ns\":5,\"fields\":{{\"request\":\"{id}\",\
             \"method\":\"GET\",\"route\":\"/health\"}}}}"
        )
    }

    fn files(name: &str, lines: &[String]) -> Vec<(String, String)> {
        // Trailing newline: Journal::parse treats an unterminated final
        // line as a crash artifact and drops it.
        vec![(name.to_string(), lines.join("\n") + "\n")]
    }

    #[test]
    fn a_consistent_run_passes() {
        let summary = validate_requests(
            &files("a.jsonl", &[access("qr-1", 200), access("qr-2", 404)]),
            &files("t.jsonl", &[span("qr-1"), span("qr-2")]),
            &files(
                "session.journal",
                &["1\tverify_fact\tok:bool:true\td=1\tr=qr-1".to_string()],
            ),
            &["qr-1".to_string()],
        )
        .expect("consistent artifacts");
        assert_eq!(summary.access_lines, 2);
        assert_eq!(summary.distinct_ids, 2);
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.journal_tagged, 1);
    }

    #[test]
    fn a_corrupted_access_line_fails_the_strict_parse() {
        let torn = access("qr-1", 200);
        let torn = &torn[..torn.len() - 4]; // chop mid-field
        let err =
            validate_requests(&files("a.jsonl", &[torn.to_string()]), &[], &[], &[]).unwrap_err();
        assert!(err.contains("torn or truncated"), "{err}");
        let err =
            validate_requests(&files("a.jsonl", &[access("", 200)]), &[], &[], &[]).unwrap_err();
        assert!(err.contains("missing or empty request id"), "{err}");
    }

    #[test]
    fn an_unlogged_span_or_journal_id_fails() {
        let err = validate_requests(
            &files("a.jsonl", &[access("qr-1", 200)]),
            &files("t.jsonl", &[span("qr-1"), span("ghost")]),
            &[],
            &[],
        )
        .unwrap_err();
        assert!(err.contains("ghost"), "{err}");
        let err = validate_requests(
            &files("a.jsonl", &[access("qr-1", 200)]),
            &files("t.jsonl", &[span("qr-1")]),
            &files(
                "session.journal",
                &["1\tverify_fact\tok:bool:true\tr=phantom".to_string()],
            ),
            &[],
        )
        .unwrap_err();
        assert!(err.contains("phantom"), "{err}");
    }

    #[test]
    fn a_spanless_dispatched_request_fails_but_rejects_are_exempt() {
        // 413 never reaches dispatch: no span required.
        validate_requests(
            &files("a.jsonl", &[access("qr-1", 200), access("qr-2", 413)]),
            &files("t.jsonl", &[span("qr-1")]),
            &[],
            &[],
        )
        .expect("pre-dispatch reject needs no span");
        // ...but a 200 with no span is a hole in the trace.
        let err = validate_requests(
            &files("a.jsonl", &[access("qr-1", 200), access("qr-2", 200)]),
            &files("t.jsonl", &[span("qr-1")]),
            &[],
            &[],
        )
        .unwrap_err();
        assert!(err.contains("no serve.request span"), "{err}");
    }

    #[test]
    fn required_ids_must_reach_every_layer() {
        let err = validate_requests(
            &files("a.jsonl", &[access("qr-1", 200)]),
            &files("t.jsonl", &[span("qr-1")]),
            &[],
            &["absent".to_string()],
        )
        .unwrap_err();
        assert!(err.contains("not in the access log"), "{err}");
        let err = validate_requests(
            &files("a.jsonl", &[access("qr-1", 200)]),
            &files("t.jsonl", &[span("qr-1")]),
            &files(
                "session.journal",
                &["1\tverify_fact\tok:bool:true".to_string()],
            ),
            &["qr-1".to_string()],
        )
        .unwrap_err();
        assert!(err.contains("no journal line"), "{err}");
    }
}
