//! `validate-sessions` — the serve-replay correctness gate.
//!
//! The session service's crash-recovery story rests on one claim: a
//! cleaning session is a deterministic function of (spec, answer
//! sequence), so rehydrating a machine from any journal prefix and
//! finishing it yields the *same* final report as the uninterrupted run.
//! This gate proves the claim exhaustively for the Figure 1 fixture:
//!
//! 1. drive a fresh [`SessionMachine`] to completion with a perfect
//!    oracle, capturing the canonical report text and the journal;
//! 2. for **every** prefix of that journal — every point a `kill -9`
//!    could land — rehydrate a machine from the prefix, check it parks on
//!    exactly the next question, finish it, and byte-compare the report;
//! 3. replay each prefix through the journal *line* round-trip
//!    (`to_line` → `parse_line`) to cover the on-disk representation;
//! 4. re-submit every already-consumed answer (idempotency: acknowledged
//!    as duplicates, log unchanged) and a batch of out-of-order /
//!    wrong-shape submissions (rejected, log unchanged).
//!
//! Any divergence is a gate failure: it means a crashed-and-restarted
//! `qoco-serve` could finish a session differently than an uninterrupted
//! one.

use qoco_core::{
    figure1_ground, figure1_spec, SessionMachine, SessionState, SubmitError, SubmitOutcome,
};
use qoco_crowd::{Answer, JournalRecord, Oracle, OracleError, PerfectOracle};

/// What [`validate_sessions`] verified, for the success banner.
pub struct SessionCheckSummary {
    /// Answers the canonical run consumed.
    pub answers: usize,
    /// Journal prefixes replayed (= answers + 1, counting the empty one).
    pub prefixes: usize,
    /// The canonical report text every replay was compared against.
    pub report: String,
}

fn finish_with_oracle(
    m: &mut SessionMachine,
    oracle: &mut PerfectOracle,
) -> Result<String, String> {
    for _ in 0..1000 {
        match m.state() {
            SessionState::AwaitingAnswers(p) => {
                let seq = p.seq;
                let answer = oracle
                    .answer(&p.question)
                    .map_err(|e| format!("perfect oracle failed: {e:?}"))?;
                match m.submit(seq, Ok(answer)) {
                    Ok(SubmitOutcome::Applied) => {}
                    other => return Err(format!("submit(seq {seq}) returned {other:?}")),
                }
            }
            SessionState::Finished(f) => return Ok(f.report.to_string()),
            SessionState::Failed(e) => return Err(format!("session failed: {e}")),
        }
    }
    Err("session did not converge within 1000 answers".to_string())
}

fn line_round_trip(log: &[JournalRecord]) -> Result<Vec<JournalRecord>, String> {
    log.iter()
        .map(|r| {
            let line = r.to_line(); // newline-terminated, as written to disk
            JournalRecord::parse_line(line.trim_end_matches('\n'))
                .map_err(|e| format!("journal line {line:?} does not parse back: {e}"))
        })
        .collect()
}

/// Run the serve-replay gate; `Err` carries the first divergence found.
pub fn validate_sessions() -> Result<SessionCheckSummary, String> {
    // 1. the canonical, uninterrupted run
    let mut canonical = SessionMachine::new(figure1_spec());
    let mut oracle = PerfectOracle::new(figure1_ground());
    let report = finish_with_oracle(&mut canonical, &mut oracle)?;
    let log = canonical.log().to_vec();

    // 2+3. every crash point: rehydrate from each on-disk prefix
    for k in 0..=log.len() {
        let prefix = line_round_trip(&log[..k])?;
        let mut m = SessionMachine::rehydrate(figure1_spec(), prefix);
        if k < log.len() {
            match m.state() {
                SessionState::AwaitingAnswers(p) if p.seq == (k + 1) as u64 => {}
                other => {
                    return Err(format!(
                        "prefix {k}: expected to park on seq {}, got {}",
                        k + 1,
                        state_brief(other)
                    ))
                }
            }
        }
        let mut oracle = PerfectOracle::new(figure1_ground());
        let replayed = finish_with_oracle(&mut m, &mut oracle)?;
        if replayed != report {
            return Err(format!(
                "prefix {k}: replayed report diverges from the canonical run\n\
                 --- canonical ---\n{report}\n--- replayed ---\n{replayed}"
            ));
        }
    }

    // 4. idempotency and rejection leave a finished session untouched
    let mut m = SessionMachine::rehydrate(figure1_spec(), log.clone());
    let len = m.log().len();
    for record in &log {
        match m.submit(record.seq, record.outcome.clone()) {
            Ok(SubmitOutcome::Duplicate) => {}
            other => {
                return Err(format!(
                    "re-submitting consumed seq {} returned {other:?}, want Duplicate",
                    record.seq
                ))
            }
        }
    }
    if m.log().len() != len {
        return Err("duplicate submissions grew the journal".to_string());
    }
    for (seq, outcome, want) in [
        (
            log.len() as u64 + 1,
            Ok(Answer::Bool(true)),
            SubmitError::NotAwaiting,
        ),
        (
            log.len() as u64 + 7,
            Err(OracleError::Timeout),
            SubmitError::NotAwaiting,
        ),
    ] {
        match m.submit(seq, outcome) {
            Err(e) if e == want => {}
            other => {
                return Err(format!(
                    "submit(seq {seq}) returned {other:?}, want {want:?}"
                ))
            }
        }
    }
    // ...and on a half-done session, out-of-order and wrong shapes bounce
    let mut half = SessionMachine::rehydrate(figure1_spec(), line_round_trip(&log[..1])?);
    let half_len = half.log().len();
    if !matches!(
        half.submit(9_999, Ok(Answer::Bool(true))),
        Err(SubmitError::OutOfOrder { .. })
    ) {
        return Err("future seq was not rejected as out-of-order".to_string());
    }
    if !matches!(
        half.submit(2, Err(OracleError::Timeout)),
        Err(SubmitError::BadFault)
    ) {
        return Err("a timeout submission was not rejected".to_string());
    }
    if half.log().len() != half_len {
        return Err("rejected submissions grew the journal".to_string());
    }

    Ok(SessionCheckSummary {
        answers: log.len(),
        prefixes: log.len() + 1,
        report,
    })
}

fn state_brief(s: &SessionState) -> String {
    match s {
        SessionState::AwaitingAnswers(p) => format!("awaiting seq {}", p.seq),
        SessionState::Finished(_) => "finished".to_string(),
        SessionState::Failed(e) => format!("failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_gate_passes_on_the_current_implementation() {
        let summary = validate_sessions().expect("serve-replay gate");
        assert!(summary.answers >= 3, "figure 1 needs a few questions");
        assert_eq!(summary.prefixes, summary.answers + 1);
        assert!(summary.report.contains("1 wrong answer(s) removed"));
    }
}
