//! Offline, deterministic re-evaluation of qoco-watch alert rules over an
//! exported sample series (`qoco-bench watch-replay`).
//!
//! A live session exports its [`SeriesStore`] ring as
//! `{"type":"sample","metric":…,"tick":…,"at_ns":…,"value":…}` JSONL lines
//! inside the `--telemetry` file. This module replays those lines tick by
//! tick through a fresh [`AlertEngine`] — the same store and engine the
//! live watch used — so the alert timeline is a pure function of the
//! recorded series. That is what CI gates on: a fresh session and a
//! killed-and-resumed one export identical sample lines (the logical tick
//! is the crowd-answer boundary, which journal lockstep replay reproduces
//! exactly), so their replay reports must be byte-identical.
//!
//! The report deliberately contains only replay-determined facts — rule
//! count, tick count, lifecycle transitions, per-rule summaries. It never
//! mentions how many series the export carried: a resumed session grows
//! extra counters (e.g. `journal.divergences`) that a fresh one lacks, and
//! those must not break byte-equality on the *alert* timeline.

use qoco_telemetry::{parse_rules, AlertEngine, SeriesStore, Transition, DEFAULT_SERIES_CAPACITY};

use crate::json::Json;

/// One parsed `"type":"sample"` line.
#[derive(Debug, Clone, PartialEq)]
struct SampleLine {
    tick: u64,
    at_ns: u64,
    metric: String,
    value: f64,
}

/// What a replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Distinct ticks replayed.
    pub ticks: u64,
    /// Rules evaluated.
    pub rules: usize,
    /// Every lifecycle edge, in (tick, rule) order.
    pub transitions: Vec<Transition>,
    /// Per-rule `(name, fired, resolved, final_state)` rows, in rule order.
    pub rule_summaries: Vec<(String, u64, u64, &'static str)>,
    /// The deterministic human-readable report (see module docs).
    pub report: String,
}

impl ReplayOutcome {
    /// `(fired, resolved)` counts for `rule`, if it exists.
    pub fn rule_counts(&self, rule: &str) -> Option<(u64, u64)> {
        self.rule_summaries
            .iter()
            .find(|(name, ..)| name == rule)
            .map(|&(_, fired, resolved, _)| (fired, resolved))
    }
}

/// Parse the sample lines out of a `--telemetry` JSONL export, ignoring
/// every other record type. Errors carry the 1-based line number.
fn parse_samples(series_text: &str) -> Result<Vec<SampleLine>, String> {
    let mut samples = Vec::new();
    for (i, line) in series_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if doc.get("type").and_then(Json::as_str) != Some("sample") {
            continue;
        }
        let field = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {}: sample is missing numeric `{key}`", i + 1))
        };
        let metric = doc
            .get("metric")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: sample is missing `metric`", i + 1))?
            .to_string();
        samples.push(SampleLine {
            tick: field("tick")? as u64,
            at_ns: field("at_ns")? as u64,
            metric,
            value: field("value")?,
        });
    }
    if samples.is_empty() {
        return Err("no \"type\":\"sample\" lines in the series file \
                    (was the session run with --watch-rules?)"
            .to_string());
    }
    // The exporter already writes (tick, metric) order; re-sort defensively
    // (stable, so equal keys keep input order) — replay must not depend on
    // how the file was concatenated.
    samples.sort_by(|a, b| (a.tick, &a.metric).cmp(&(b.tick, &b.metric)));
    Ok(samples)
}

/// Replay `rules_text` over the sample lines in `series_text`: feed each
/// tick's samples into a fresh store, evaluate every rule at that tick,
/// and render the deterministic report.
pub fn replay(series_text: &str, rules_text: &str) -> Result<ReplayOutcome, String> {
    let rules = parse_rules(rules_text)?;
    if rules.is_empty() {
        return Err("rules file defines no rules".to_string());
    }
    let samples = parse_samples(series_text)?;

    let store = SeriesStore::new(DEFAULT_SERIES_CAPACITY);
    let mut engine = AlertEngine::new(rules);
    let mut transitions: Vec<Transition> = Vec::new();
    let mut ticks = 0u64;

    let mut i = 0;
    while i < samples.len() {
        let tick = samples[i].tick;
        let mut at_ns = 0;
        while i < samples.len() && samples[i].tick == tick {
            let s = &samples[i];
            store.record(&s.metric, s.tick, s.at_ns, s.value);
            at_ns = at_ns.max(s.at_ns);
            i += 1;
        }
        ticks += 1;
        let outcome = engine.evaluate(tick, at_ns, &store);
        transitions.extend(outcome.transitions);
    }

    let states = engine.states();
    let rule_summaries: Vec<(String, u64, u64, &'static str)> = states
        .iter()
        .map(|s| (s.name.clone(), s.fired, s.resolved, s.state))
        .collect();

    let mut report = format!(
        "watch-replay: {} rule(s) over {} tick(s)\n",
        states.len(),
        ticks
    );
    for t in &transitions {
        report.push_str(&format!(
            "tick {} ({:.3}s): {}\n",
            t.tick,
            t.at_ns as f64 / 1e9,
            t.log_line()
        ));
    }
    for (name, fired, resolved, state) in &rule_summaries {
        report.push_str(&format!(
            "rule {name}: fired {fired}, resolved {resolved}, final state {state}\n"
        ));
    }
    report.push_str(&engine.summary_line());
    report.push('\n');

    Ok(ReplayOutcome {
        ticks,
        rules: states.len(),
        transitions,
        rule_summaries,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    fn series(values: &[(u64, &str, f64)]) -> String {
        values
            .iter()
            .map(|(tick, metric, value)| {
                format!(
                    "{{\"type\":\"sample\",\"metric\":\"{metric}\",\"tick\":{tick},\
                     \"at_ns\":{},\"value\":{value}}}",
                    tick * S
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn replays_a_burst_through_fire_and_resolve() {
        // faults counter: quiet, then a burst of 3/tick, then quiet again
        let rows: Vec<(u64, &str, f64)> = (1..=10)
            .map(|t| {
                let v = match t {
                    1..=3 => 0.0,
                    4..=6 => (t - 3) as f64 * 3.0,
                    _ => 9.0,
                };
                (t, "crowd.faults", v)
            })
            .collect();
        let text = series(&rows);
        let out = replay(&text, "rule burst: rate(crowd.faults, 3s) > 1/s => warn")
            .expect("replay succeeds");
        assert_eq!(out.ticks, 10);
        assert_eq!(out.rules, 1);
        let (fired, resolved) = out.rule_counts("burst").unwrap();
        assert_eq!((fired, resolved), (1, 1), "report:\n{}", out.report);
        assert!(out.report.contains("burst -> firing"));
        assert!(out.report.contains("burst -> resolved"));
        assert!(out.report.contains("final state idle"));
    }

    #[test]
    fn replay_is_deterministic_and_ignores_extra_series() {
        let mut rows = vec![
            (1u64, "crowd.faults", 0.0),
            (2, "crowd.faults", 5.0),
            (3, "crowd.faults", 10.0),
        ];
        let base = replay(
            &series(&rows),
            "rule hot: rate(crowd.faults, 2s) > 1/s => page",
        )
        .unwrap();
        // a resumed session carries extra counters the fresh one lacks —
        // the alert timeline must not notice
        rows.push((2, "journal.divergences", 0.0));
        rows.push((3, "journal.divergences", 0.0));
        let resumed = replay(
            &series(&rows),
            "rule hot: rate(crowd.faults, 2s) > 1/s => page",
        )
        .unwrap();
        assert_eq!(base.report, resumed.report, "byte-identical reports");
        assert_eq!(base.transitions, resumed.transitions);
    }

    #[test]
    fn non_sample_lines_are_skipped_and_bad_json_is_an_error() {
        let text = format!(
            "{}\n{{\"type\":\"metric\",\"kind\":\"counter\",\"name\":\"x\",\"value\":1}}\n",
            series(&[(1, "m", 1.0), (2, "m", 2.0)])
        );
        let out = replay(&text, "rule r: value(m) > 10 => info").unwrap();
        assert_eq!(out.ticks, 2);
        let err = replay("not json\n", "rule r: value(m) > 10 => info").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = replay("{\"type\":\"metric\"}\n", "rule r: value(m) > 10 => info").unwrap_err();
        assert!(err.contains("no \"type\":\"sample\" lines"), "{err}");
    }

    #[test]
    fn bad_rules_are_reported_with_context() {
        let err = replay(&series(&[(1, "m", 1.0)]), "rule broken").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = replay(&series(&[(1, "m", 1.0)]), "# only comments\n").unwrap_err();
        assert!(err.contains("no rules"), "{err}");
    }
}
