//! The experiment runners behind every figure of Section 7.
//!
//! Defaults follow the paper: data cleanliness 80 %, noise skew 100 % for
//! deletion experiments, 0 % for insertion, 50 % for mixed; simulated
//! perfect oracle for Figure 3, an imperfect 3-expert panel for Figure 4.
//! Random baselines are averaged over several seeds (the paper plots single
//! runs; averaging just stabilizes the text output).

use std::collections::HashMap;

use qoco_core::{
    clean_view, crowd_remove_wrong_answer, crowd_remove_wrong_answer_composite,
    crowd_remove_wrong_answer_with, CleaningConfig, DeletionStrategy, MostFrequentSelector,
    RandomSelector, ResponsibilitySelector, SplitStrategyKind, TrustSelector, TupleSelector,
};
use qoco_crowd::{ImperfectOracle, MajorityCrowd, PerfectOracle, SingleExpert};
use qoco_data::{Database, Fact};
use qoco_datasets::{
    dbgroup_queries, generate_dbgroup, generate_soccer, inject_noise, plant_missing_answers,
    plant_mixed, plant_wrong_answers, soccer_queries, DbGroupConfig, NoiseSpec, SoccerConfig,
};
use qoco_engine::{answer_set, witnesses_for_answer};
use qoco_query::ConjunctiveQuery;

use crate::table::Table;

/// Shared experiment context: the soccer ground truth and its five queries.
pub struct Experiments {
    /// The soccer ground-truth database.
    pub ground: Database,
    /// Q1–Q5.
    pub queries: Vec<ConjunctiveQuery>,
}

impl Experiments {
    /// Build the default soccer context.
    pub fn soccer() -> Self {
        let ground = generate_soccer(SoccerConfig::default());
        let queries = soccer_queries(ground.schema());
        Experiments { ground, queries }
    }

    fn q(&self, idx1: usize) -> &ConjunctiveQuery {
        &self.queries[idx1 - 1]
    }
}

/// Outcome of one deletion experiment run.
struct DeletionRun {
    results: usize,
    questions: usize,
    upper: usize,
}

fn deletion_run(
    ground: &Database,
    q: &ConjunctiveQuery,
    k_wrong: usize,
    witnesses: usize,
    strategy: DeletionStrategy,
    seed: u64,
) -> DeletionRun {
    let planted = plant_wrong_answers(q, ground, k_wrong, witnesses, seed);
    let mut d = planted.db;
    let results = answer_set(q, &d).len();
    let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
    let config = CleaningConfig {
        deletion: strategy,
        ..Default::default()
    };
    let report = clean_view(q, &mut d, &mut crowd, config).expect("perfect oracle converges");
    DeletionRun {
        results,
        questions: report.deletion_stats.verify_fact_questions,
        upper: report.deletion_upper_bound,
    }
}

/// Average a deletion experiment over seeds (used for the Random baseline).
fn deletion_avg(
    ground: &Database,
    q: &ConjunctiveQuery,
    k_wrong: usize,
    witnesses: usize,
    make: impl Fn(u64) -> DeletionStrategy,
    seeds: &[u64],
) -> DeletionRun {
    let runs: Vec<DeletionRun> = seeds
        .iter()
        .map(|&s| deletion_run(ground, q, k_wrong, witnesses, make(s), s))
        .collect();
    let n = runs.len().max(1);
    DeletionRun {
        results: runs.iter().map(|r| r.results).sum::<usize>() / n,
        questions: (runs.iter().map(|r| r.questions).sum::<usize>() + n / 2) / n,
        upper: runs.iter().map(|r| r.upper).sum::<usize>() / n,
    }
}

/// Figure 3a: deletion across queries Q1/Q2/Q3 for QOCO, QOCO⁻ and Random.
pub fn fig3a(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Figure 3a — Deletion, multiple queries (perfect oracle)",
        &[
            "query",
            "strategy",
            "#results",
            "#questions",
            "#avoided",
            "naive upper bound",
        ],
    );
    let settings = [(1usize, 2usize), (2, 3), (3, 5)];
    for (qi, k) in settings {
        let q = ex.q(qi);
        for strategy in ["QOCO", "QOCO-", "Random"] {
            let run = match strategy {
                "QOCO" => deletion_run(&ex.ground, q, k, 3, DeletionStrategy::Qoco, 40 + qi as u64),
                "QOCO-" => deletion_run(
                    &ex.ground,
                    q,
                    k,
                    3,
                    DeletionStrategy::QocoMinus,
                    40 + qi as u64,
                ),
                _ => deletion_avg(
                    &ex.ground,
                    q,
                    k,
                    3,
                    DeletionStrategy::Random,
                    &[40 + qi as u64; 1],
                ),
            };
            t.row(vec![
                format!("Q{qi}"),
                strategy.to_string(),
                run.results.to_string(),
                run.questions.to_string(),
                run.upper.saturating_sub(run.questions).to_string(),
                run.upper.to_string(),
            ]);
        }
    }
    t.note("bars of the paper: bottom = #results (answers verified), middle = #questions, top = #avoided vs the naive upper bound");
    t
}

/// Figure 3d: deletion on Q3 with 2/5/10 wrong answers.
pub fn fig3d(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Figure 3d — Deletion, varying #wrong answers (Q3, perfect oracle)",
        &[
            "#wrong",
            "strategy",
            "#results",
            "#questions",
            "#avoided",
            "naive upper bound",
        ],
    );
    let q = ex.q(3);
    for k in [2usize, 5, 10] {
        for strategy in ["QOCO", "QOCO-", "Random"] {
            let run = match strategy {
                "QOCO" => deletion_run(&ex.ground, q, k, 3, DeletionStrategy::Qoco, 60 + k as u64),
                "QOCO-" => deletion_run(
                    &ex.ground,
                    q,
                    k,
                    3,
                    DeletionStrategy::QocoMinus,
                    60 + k as u64,
                ),
                _ => deletion_avg(
                    &ex.ground,
                    q,
                    k,
                    3,
                    DeletionStrategy::Random,
                    &[60 + k as u64; 1],
                ),
            };
            t.row(vec![
                k.to_string(),
                strategy.to_string(),
                run.results.to_string(),
                run.questions.to_string(),
                run.upper.saturating_sub(run.questions).to_string(),
                run.upper.to_string(),
            ]);
        }
    }
    t.note("the QOCO-vs-Random gap grows with the noise level, as in the paper");
    t
}

/// Outcome of one insertion experiment run.
struct InsertionRun {
    missing: usize,
    filled: usize,
    satisfiability: usize,
    upper: usize,
}

fn insertion_run(
    ground: &Database,
    q: &ConjunctiveQuery,
    k_missing: usize,
    split: SplitStrategyKind,
    seed: u64,
) -> InsertionRun {
    let planted = plant_missing_answers(q, ground, k_missing, seed);
    let missing = planted.missing.len();
    let mut d = planted.db;
    let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
    let config = CleaningConfig {
        split,
        ..Default::default()
    };
    let report = clean_view(q, &mut d, &mut crowd, config).expect("perfect oracle converges");
    InsertionRun {
        missing,
        filled: report.insertion_stats.filled_variables,
        satisfiability: report.insertion_stats.satisfiable_questions,
        upper: report.insertion_upper_bound,
    }
}

/// Figure 3b: insertion across queries Q3/Q4/Q5 for Provenance, Min-Cut
/// and Random splits.
pub fn fig3b(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Figure 3b — Insertion, multiple queries (perfect oracle)",
        &[
            "query",
            "split",
            "#missing",
            "#filled vars",
            "#sat checks",
            "#avoided",
            "naive upper bound",
        ],
    );
    for qi in [3usize, 4, 5] {
        let q = ex.q(qi);
        for split in [
            SplitStrategyKind::Provenance,
            SplitStrategyKind::MinCut,
            SplitStrategyKind::Random(7),
        ] {
            let run = insertion_run(&ex.ground, q, 5, split, 80 + qi as u64);
            t.row(vec![
                format!("Q{qi}"),
                split.label().to_string(),
                run.missing.to_string(),
                run.filled.to_string(),
                run.satisfiability.to_string(),
                run.upper.saturating_sub(run.filled).to_string(),
                run.upper.to_string(),
            ]);
        }
    }
    t.note("paper: Provenance always best; Min-Cut and Random trade places per query");
    t
}

/// Figure 3e: insertion on Q3 with 2/5/10 missing answers.
pub fn fig3e(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Figure 3e — Insertion, varying #missing answers (Q3, perfect oracle)",
        &[
            "#missing",
            "split",
            "#filled vars",
            "#sat checks",
            "#avoided",
            "naive upper bound",
        ],
    );
    let q = ex.q(3);
    for k in [2usize, 5, 10] {
        for split in [
            SplitStrategyKind::Provenance,
            SplitStrategyKind::MinCut,
            SplitStrategyKind::Random(7),
        ] {
            let run = insertion_run(&ex.ground, q, k, split, 90 + k as u64);
            t.row(vec![
                k.to_string(),
                split.label().to_string(),
                run.filled.to_string(),
                run.satisfiability.to_string(),
                run.upper.saturating_sub(run.filled).to_string(),
                run.upper.to_string(),
            ]);
        }
    }
    t
}

/// Figure 3c: the mixed workload on Q1/Q2/Q3, deletion strategy varying,
/// insertion fixed to the Provenance split.
pub fn fig3c(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Figure 3c — Mixed, multiple queries (perfect oracle; insertion = Provenance)",
        &[
            "query",
            "deletion",
            "#results+#missing",
            "#questions",
            "#avoided",
            "upper bound",
        ],
    );
    let settings = [(1usize, 2usize, 1usize), (2, 3, 2), (3, 5, 3)];
    for (qi, kw, km) in settings {
        let q = ex.q(qi);
        for strategy in [
            DeletionStrategy::Qoco,
            DeletionStrategy::QocoMinus,
            DeletionStrategy::Random(3),
        ] {
            let planted = plant_mixed(q, &ex.ground, kw, km, 70 + qi as u64);
            let mut d = planted.db;
            let results = answer_set(q, &d).len();
            let mut crowd = SingleExpert::new(PerfectOracle::new(ex.ground.clone()));
            let config = CleaningConfig {
                deletion: strategy,
                split: SplitStrategyKind::Provenance,
                ..Default::default()
            };
            let report = clean_view(q, &mut d, &mut crowd, config).expect("converges");
            let questions = report.deletion_stats.verify_fact_questions
                + report.insertion_stats.filled_variables
                + report.insertion_stats.satisfiable_questions;
            let upper = report.deletion_upper_bound + report.insertion_upper_bound;
            t.row(vec![
                format!("Q{qi}"),
                strategy.label().to_string(),
                format!("{}", results + planted.missing.len()),
                questions.to_string(),
                upper.saturating_sub(questions).to_string(),
                upper.to_string(),
            ]);
        }
    }
    t
}

/// Figure 3f: question-type breakdown on Q3 with (2,2)/(5,5)/(10,10)
/// missing and wrong answers.
pub fn fig3f(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Figure 3f — Mixed, types of questions (Q3, QOCO + Provenance)",
        &[
            "#missing,#wrong",
            "verify answers",
            "verify tuples",
            "fill missing",
        ],
    );
    let q = ex.q(3);
    for k in [2usize, 5, 10] {
        let planted = plant_mixed(q, &ex.ground, k, k, 50 + k as u64);
        let mut d = planted.db;
        let mut crowd = SingleExpert::new(PerfectOracle::new(ex.ground.clone()));
        let report = clean_view(&q.clone(), &mut d, &mut crowd, CleaningConfig::default())
            .expect("converges");
        let (va, vt, fm) = report.question_breakdown();
        t.row(vec![
            format!("({k}, {k})"),
            va.to_string(),
            vt.to_string(),
            fm.to_string(),
        ]);
    }
    t.note("all three categories grow with the error count, as in the paper");
    t
}

/// Figure 4: the real-crowd experiment — a 3-expert imperfect panel with
/// majority voting on Q2 and Q3 (5 wrong + 5 missing answers), counting
/// total crowd answers per category.
pub fn fig4(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Figure 4 — Imperfect experts (3-expert panel, 10% error, majority vote)",
        &[
            "query",
            "deletion",
            "verify answers",
            "verify tuples",
            "fill missing",
            "total answers",
        ],
    );
    for qi in [2usize, 3] {
        let q = ex.q(qi);
        let planted = plant_mixed(q, &ex.ground, 5, 5, 20 + qi as u64);
        for strategy in [
            DeletionStrategy::Qoco,
            DeletionStrategy::QocoMinus,
            DeletionStrategy::Random(5),
        ] {
            // imperfect crowds are noisy: average over panel replicates
            let mut sums = (0usize, 0usize, 0usize, 0usize);
            let mut converged = 0usize;
            let replicates = 5u64;
            for rep in 0..replicates {
                let mut d = planted.db.clone();
                let experts: Vec<ImperfectOracle> = (0..3)
                    .map(|i| {
                        ImperfectOracle::new(
                            ex.ground.clone(),
                            0.10,
                            700 + qi as u64 * 100 + rep * 10 + i,
                        )
                    })
                    .collect();
                let mut crowd = MajorityCrowd::new(experts);
                let config = CleaningConfig {
                    deletion: strategy,
                    max_iterations: 80,
                    ..Default::default()
                };
                if let Ok(report) = clean_view(q, &mut d, &mut crowd, config) {
                    let s = report.total_stats;
                    sums.0 += s.verify_answer_crowd_answers;
                    sums.1 += s.verify_fact_crowd_answers + s.satisfiable_crowd_answers;
                    sums.2 += s.open_answer_variables;
                    sums.3 += s.total_cost();
                    converged += 1;
                }
            }
            match sums.0.checked_div(converged) {
                None => t.row(vec![
                    format!("Q{qi}"),
                    strategy.label().to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "did not converge".into(),
                ]),
                Some(avg0) => t.row(vec![
                    format!("Q{qi}"),
                    strategy.label().to_string(),
                    avg0.to_string(),
                    (sums.1 / converged).to_string(),
                    (sums.2 / converged).to_string(),
                    (sums.3 / converged).to_string(),
                ]),
            }
        }
    }
    t.note("fill-missing counts are identical across deletion strategies of the same query (same insertion algorithm), as the paper observes");
    t
}

/// The Section 7.1 DBGroup case study, tabulated.
pub fn dbgroup_case() -> Table {
    let ground = generate_dbgroup(DbGroupConfig::default());
    let queries = dbgroup_queries(ground.schema());
    let plan: [(usize, usize); 4] = [(1, 1), (2, 1), (1, 2), (1, 3)];
    let mut dirty = ground.clone();
    for (q, (wrong, missing)) in queries.iter().zip(plan) {
        dirty = plant_mixed(q, &dirty, wrong, missing, 11).db;
    }
    let mut t = Table::new(
        "Section 7.1 — DBGroup case study (4 report queries, perfect oracle)",
        &[
            "query",
            "wrong found",
            "missing found",
            "tuples deleted",
            "tuples inserted",
            "closed questions",
        ],
    );
    let mut tot = (0usize, 0usize, 0usize, 0usize, 0usize);
    for q in &queries {
        let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
        let report =
            clean_view(q, &mut dirty, &mut crowd, CleaningConfig::default()).expect("converges");
        t.row(vec![
            q.name().to_string(),
            report.wrong_answers.to_string(),
            report.missing_answers.to_string(),
            report.edits.deletions().to_string(),
            report.edits.insertions().to_string(),
            report.total_stats.closed_questions().to_string(),
        ]);
        tot.0 += report.wrong_answers;
        tot.1 += report.missing_answers;
        tot.2 += report.edits.deletions();
        tot.3 += report.edits.insertions();
        tot.4 += report.total_stats.closed_questions();
    }
    t.row(vec![
        "total".into(),
        tot.0.to_string(),
        tot.1.to_string(),
        tot.2.to_string(),
        tot.3.to_string(),
        tot.4.to_string(),
    ]);
    t.note("paper's run on the real DBGroup DB: 5 wrong + 7 missing answers; 6 tuples removed, 8 added");
    t
}

/// Ablation A1: greedy interactive hitting set vs the exact minimum —
/// how many deletions were strictly necessary?
pub fn ablation_hitting_set(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Ablation A1 — greedy vs exact minimum hitting set",
        &[
            "query",
            "#wrong",
            "QOCO deletions",
            "minimum deletions",
            "QOCO questions",
        ],
    );
    for qi in [1usize, 2, 3] {
        let q = ex.q(qi);
        let planted = plant_wrong_answers(q, &ex.ground, 3, 3, 30 + qi as u64);
        let mut d = planted.db.clone();
        let mut minimum = 0usize;
        for w in &planted.wrong {
            let witnesses = witnesses_for_answer(q, &d, w);
            // restrict the exact solver to false facts (the true optimum
            // must delete only false ones)
            let false_only: Vec<std::collections::BTreeSet<Fact>> = witnesses
                .iter()
                .map(|set| {
                    set.iter()
                        .filter(|f| !ex.ground.contains(f))
                        .cloned()
                        .collect()
                })
                .collect();
            minimum += qoco_core::HittingSetInstance::new(false_only)
                .minimum_hitting_set()
                .len();
        }
        let mut deletions = 0usize;
        let mut questions = 0usize;
        for w in &planted.wrong {
            let mut crowd = SingleExpert::new(PerfectOracle::new(ex.ground.clone()));
            let out = crowd_remove_wrong_answer(q, &mut d, w, &mut crowd, DeletionStrategy::Qoco)
                .expect("removal succeeds");
            deletions += out.edits.deletions();
            questions += out.questions;
        }
        t.row(vec![
            format!("Q{qi}"),
            planted.wrong.len().to_string(),
            deletions.to_string(),
            minimum.to_string(),
            questions.to_string(),
        ]);
    }
    t.note("greedy may delete more than the optimum; the paper notes the extra deletions still improve the database");
    t
}

/// Ablation A2: the value of the unique-minimal-hitting-set shortcut
/// (QOCO vs QOCO⁻) as witness multiplicity grows.
pub fn ablation_umhs(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Ablation A2 — unique-minimal-hitting-set shortcut (Q1)",
        &[
            "witnesses/answer",
            "QOCO questions",
            "QOCO- questions",
            "saved",
        ],
    );
    let q = ex.q(1);
    for w in [2usize, 4, 6] {
        let run = |strategy| deletion_run(&ex.ground, q, 3, w, strategy, 200 + w as u64).questions;
        let qoco = run(DeletionStrategy::Qoco);
        let minus = run(DeletionStrategy::QocoMinus);
        t.row(vec![
            w.to_string(),
            qoco.to_string(),
            minus.to_string(),
            minus.saturating_sub(qoco).to_string(),
        ]);
    }
    t
}

/// Ablation A3: alternative deletion heuristics (Section 4 mentions
/// influence/responsibility/trust-based alternatives to most-frequent).
pub fn ablation_heuristics(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Ablation A3 — deletion selection heuristics (Q3, 5 wrong answers)",
        &["heuristic", "questions", "deletions"],
    );
    let q = ex.q(3);
    let planted = plant_wrong_answers(q, &ex.ground, 5, 3, 77);
    // synthetic trust scores: false facts score low, true facts high,
    // with noise so the signal is imperfect
    let mut trust: HashMap<Fact, f64> = HashMap::new();
    {
        let d = planted.db.clone();
        let mut h = 0.0f64;
        for w in &planted.wrong {
            for set in witnesses_for_answer(q, &d, w) {
                for f in set {
                    h = (h * 7.13 + 0.37).fract();
                    let base = if ex.ground.contains(&f) { 0.75 } else { 0.25 };
                    trust.insert(f, (base + 0.3 * (h - 0.5)).clamp(0.0, 1.0));
                }
            }
        }
    }
    let selectors: Vec<(&str, Box<dyn TupleSelector>)> = vec![
        ("most-frequent", Box::new(MostFrequentSelector)),
        ("responsibility", Box::new(ResponsibilitySelector)),
        ("trust", Box::new(TrustSelector::new(trust))),
        ("random", Box::new(RandomSelector::new(9))),
    ];
    for (name, mut selector) in selectors {
        let mut d = planted.db.clone();
        let mut questions = 0usize;
        let mut deletions = 0usize;
        for w in &planted.wrong {
            let mut crowd = SingleExpert::new(PerfectOracle::new(ex.ground.clone()));
            let out =
                crowd_remove_wrong_answer_with(q, &mut d, w, &mut crowd, &mut *selector, true)
                    .expect("removal succeeds");
            questions += out.questions;
            deletions += out.edits.deletions();
        }
        t.row(vec![
            name.to_string(),
            questions.to_string(),
            deletions.to_string(),
        ]);
    }
    t
}

/// Ablation A4: composite questions (Section 9) — group-testing deletion
/// vs per-tuple questions, across queries.
pub fn ablation_composite(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Ablation A4 — composite (group-testing) questions vs per-tuple questions",
        &["query", "per-tuple (QOCO)", "composite", "universe size"],
    );
    for qi in [1usize, 2, 3] {
        let q = ex.q(qi);
        let planted = plant_wrong_answers(q, &ex.ground, 3, 4, 90 + qi as u64);
        let mut singles = 0usize;
        let mut composites = 0usize;
        let mut universe = 0usize;
        {
            let mut d = planted.db.clone();
            let mut crowd = SingleExpert::new(PerfectOracle::new(ex.ground.clone()));
            for w in &planted.wrong {
                let out =
                    crowd_remove_wrong_answer(q, &mut d, w, &mut crowd, DeletionStrategy::Qoco)
                        .expect("removal succeeds");
                singles += out.questions;
                universe += out.upper_bound;
            }
        }
        {
            let mut d = planted.db.clone();
            let mut crowd = SingleExpert::new(PerfectOracle::new(ex.ground.clone()));
            for w in &planted.wrong {
                let out = crowd_remove_wrong_answer_composite(q, &mut d, w, &mut crowd)
                    .expect("removal succeeds");
                composites += out.questions;
            }
        }
        t.row(vec![
            format!("Q{qi}"),
            singles.to_string(),
            composites.to_string(),
            universe.to_string(),
        ]);
    }
    t.note("an honest negative on these instances: planted witnesses are false-fact-dense, so frequency-guided per-tuple questions beat group testing; composite wins in true-fact-dense universes (see composite::tests::composite_beats_individual_questions_when_most_facts_are_true)");
    t
}

/// Sweep S2: expert error rate vs total crowd answers (extends Figure 4's
/// single 10 % point into a curve; panel of 3, majority vote).
pub fn sweep_error_rate(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Sweep S2 — expert error rate (Q3, 3 wrong + 3 missing, 3-expert panel)",
        &[
            "error rate",
            "total crowd answers",
            "iterations",
            "converged",
        ],
    );
    let q = ex.q(3);
    let planted = plant_mixed(q, &ex.ground, 3, 3, 44);
    let truth: std::collections::BTreeSet<qoco_data::Tuple> = {
        let gm = ex.ground.clone();
        answer_set(q, &gm).into_iter().collect()
    };
    for pct in [0u32, 5, 10, 20, 30] {
        let mut answers_sum = 0usize;
        let mut iter_sum = 0usize;
        let mut converged = 0usize;
        let replicates = 3u64;
        for rep in 0..replicates {
            let mut d = planted.db.clone();
            let experts: Vec<ImperfectOracle> = (0..3)
                .map(|i| {
                    ImperfectOracle::new(
                        ex.ground.clone(),
                        pct as f64 / 100.0,
                        2_000 + pct as u64 * 10 + rep * 3 + i,
                    )
                })
                .collect();
            let mut crowd = MajorityCrowd::new(experts);
            let config = CleaningConfig {
                max_iterations: 80,
                ..Default::default()
            };
            if let Ok(report) = clean_view(q, &mut d, &mut crowd, config) {
                let now: std::collections::BTreeSet<qoco_data::Tuple> = {
                    let dm = d.clone();
                    answer_set(q, &dm).into_iter().collect()
                };
                answers_sum += report.total_stats.total_cost();
                iter_sum += report.iterations;
                if now == truth {
                    converged += 1;
                }
            }
        }
        t.row(vec![
            format!("{pct}%"),
            (answers_sum / replicates as usize).to_string(),
            (iter_sum as f64 / replicates as f64).round().to_string(),
            format!("{converged}/{replicates}"),
        ]);
    }
    t.note("majority voting absorbs moderate error rates at a rising answer cost");
    t
}

/// Telemetry T1: the per-phase breakdown of one full cleaning session,
/// derived from the span timeline rather than the report's own counters —
/// the observability cross-check that the instrumentation sees the same
/// session the algorithms ran.
pub fn phase_breakdown(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Telemetry T1 — phase breakdown of one cleaning session (Q3, 3 wrong + 3 missing)",
        &[
            "phase (span name)",
            "spans",
            "total time",
            "share of session",
        ],
    );
    let q = ex.q(3);
    let planted = plant_mixed(q, &ex.ground, 3, 3, 33);
    let mut d = planted.db;
    let collector = std::sync::Arc::new(qoco_telemetry::InMemoryCollector::new());
    let timeline = {
        // The figures binary may already hold a session guard around all
        // targets (--telemetry / --profile); `session()` would deadlock on
        // the non-reentrant session lock, so nest inside it instead.
        let nested = qoco_telemetry::enabled();
        let _nested_guard = nested.then(|| qoco_telemetry::nested_session(collector.clone()));
        let _session_guard = (!nested).then(|| qoco_telemetry::session(collector.clone()));
        let mut crowd = SingleExpert::new(PerfectOracle::new(ex.ground.clone()));
        let report = clean_view(q, &mut d, &mut crowd, CleaningConfig::default())
            .expect("perfect oracle converges");
        drop(report);
        collector.timeline(Vec::new(), qoco_telemetry::metrics().snapshot())
    };
    let session_ns = timeline
        .phase_totals()
        .get("clean.session")
        .map(|p| p.total_ns)
        .unwrap_or_else(|| timeline.total_ns())
        .max(1);
    for (name, total) in timeline.phase_totals() {
        t.row(vec![
            name.to_string(),
            total.count.to_string(),
            qoco_telemetry::fmt_ns(total.total_ns),
            format!("{:.1}%", 100.0 * total.total_ns as f64 / session_ns as f64),
        ]);
    }
    let m = timeline.metrics();
    t.note(format!(
        "counters: eval.assignments_tried={}, deletion.witnesses_enumerated={}, insertion.splits_generated={}, crowd.questions_asked={}",
        m.counter("eval.assignments_tried"),
        m.counter("deletion.witnesses_enumerated"),
        m.counter("insertion.splits_generated"),
        m.counter("crowd.questions_asked"),
    ));
    t.note("shares exceed 100% in total because nested spans (iteration ⊂ session, phases ⊂ iteration) each count their full extent");
    t
}

/// Watch W1: the question-optimality *trajectory* — questions asked vs the
/// accumulated hitting-set lower bound at every crowd-answer tick of one
/// cleaning session, sampled by a logical-tick qoco-watch. The terminal
/// ratio is what `qoco-cli explain` reports; this figure shows the path
/// there, which is what the live dashboard's optimality panel plots.
pub fn watch_optimality(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Watch W1 — questions vs hitting-set lower bound over session ticks (Q3, 3 wrong + 3 missing)",
        &["tick", "questions asked", "lower bound", "ratio"],
    );
    let q = ex.q(3);
    let planted = plant_mixed(q, &ex.ground, 3, 3, 33);
    let mut d = planted.db;
    let collector = std::sync::Arc::new(qoco_telemetry::InMemoryCollector::new());
    let watch = {
        // Same nesting dance as phase_breakdown: the figures binary may
        // already hold the session guard.
        let nested = qoco_telemetry::enabled();
        let _nested_guard = nested.then(|| qoco_telemetry::nested_session(collector.clone()));
        let _session_guard = (!nested).then(|| qoco_telemetry::session(collector.clone()));
        let guard = qoco_telemetry::start_watch(Vec::new(), qoco_telemetry::WatchTick::Logical);
        let mut crowd = SingleExpert::new(PerfectOracle::new(ex.ground.clone()));
        let report = clean_view(q, &mut d, &mut crowd, CleaningConfig::default())
            .expect("perfect oracle converges");
        drop(report);
        let watch = guard.watch().expect("session is live, so the watch is");
        drop(guard); // takes the final end-of-session tick
        watch
    };
    let store = watch.store();
    let questions = store.samples("session.questions_asked");
    let bounds = store.samples("session.lower_bound");
    for s in &questions {
        // the most recent lower-bound sample at or before this tick
        let bound = bounds
            .iter()
            .rev()
            .find(|b| b.tick <= s.tick)
            .map(|b| b.value);
        let (bound_cell, ratio_cell) = match bound {
            Some(b) if b > 0.0 => (format!("{b:.0}"), format!("{:.2}", s.value / b)),
            _ => ("—".to_string(), "—".to_string()),
        };
        t.row(vec![
            s.tick.to_string(),
            format!("{:.0}", s.value),
            bound_cell,
            ratio_cell,
        ]);
    }
    t.note("one tick per crowd answer (the qoco-watch logical clock); ratio 1.00 is Theorem 4.5 optimal");
    t.note("the lower bound accumulates as deletion plans are made, so early ratios overshoot until the first plan lands");
    t
}

/// Sweep S1: the cleanliness parameter of Section 7.2 (global noise).
pub fn sweep_cleanliness(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "Sweep S1 — data cleanliness 60–95% (Q3, skew 50%, QOCO + Provenance)",
        &[
            "cleanliness",
            "wrong found",
            "missing found",
            "closed questions",
            "filled vars",
            "edits",
        ],
    );
    let q = ex.q(3);
    for pct in [60u32, 70, 80, 90, 95] {
        let spec = NoiseSpec {
            cleanliness: pct as f64 / 100.0,
            skewness: 0.5,
            seed: 4,
        };
        let mut d = inject_noise(&ex.ground, spec);
        let mut crowd = SingleExpert::new(PerfectOracle::new(ex.ground.clone()));
        let config = CleaningConfig {
            max_iterations: 120,
            ..Default::default()
        };
        let report = clean_view(q, &mut d, &mut crowd, config).expect("converges");
        t.row(vec![
            format!("{pct}%"),
            report.wrong_answers.to_string(),
            report.missing_answers.to_string(),
            report.total_stats.closed_questions().to_string(),
            report.total_stats.filled_variables.to_string(),
            report.edits.len().to_string(),
        ]);
    }
    t.note("dirtier data costs more interaction, monotonically");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_rows_have_expected_shape() {
        let ex = Experiments::soccer();
        let t = fig3a(&ex);
        assert_eq!(t.rows.len(), 9); // 3 queries × 3 strategies
                                     // QOCO ≤ QOCO- for each query
        for chunk in t.rows.chunks(3) {
            let qoco: usize = chunk[0][3].parse().unwrap();
            let minus: usize = chunk[1][3].parse().unwrap();
            assert!(qoco <= minus, "{chunk:?}");
        }
    }

    #[test]
    fn fig3b_provenance_wins() {
        let ex = Experiments::soccer();
        let t = fig3b(&ex);
        assert_eq!(t.rows.len(), 9);
        for chunk in t.rows.chunks(3) {
            let prov: usize = chunk[0][3].parse().unwrap();
            for other in &chunk[1..] {
                let o: usize = other[3].parse().unwrap();
                assert!(prov <= o, "Provenance must not lose: {chunk:?}");
            }
        }
    }

    #[test]
    fn fig3d_gap_grows_with_noise() {
        let ex = Experiments::soccer();
        let t = fig3d(&ex);
        assert_eq!(t.rows.len(), 9);
        // within each noise level, QOCO ≤ QOCO⁻ ≤-ish Random; and QOCO's
        // questions grow monotonically across levels
        let q_at = |row: usize| t.rows[row][3].parse::<usize>().unwrap();
        assert!(
            q_at(0) <= q_at(3) && q_at(3) <= q_at(6),
            "QOCO questions grow with #wrong"
        );
        for chunk in t.rows.chunks(3) {
            let qoco: usize = chunk[0][3].parse().unwrap();
            let minus: usize = chunk[1][3].parse().unwrap();
            assert!(qoco <= minus, "{chunk:?}");
        }
    }

    #[test]
    fn fig3f_tuple_and_fill_categories_grow() {
        let ex = Experiments::soccer();
        let t = fig3f(&ex);
        assert_eq!(t.rows.len(), 3);
        let col = |row: usize, col: usize| t.rows[row][col].parse::<usize>().unwrap();
        assert!(
            col(0, 2) <= col(1, 2) && col(1, 2) <= col(2, 2),
            "verify tuples grows"
        );
        assert!(
            col(0, 3) <= col(1, 3) && col(1, 3) <= col(2, 3),
            "fill missing grows"
        );
    }

    #[test]
    fn sweep_cleanliness_cost_is_monotone_decreasing() {
        let ex = Experiments::soccer();
        let t = sweep_cleanliness(&ex);
        assert_eq!(t.rows.len(), 5);
        let edits = |row: usize| t.rows[row][5].parse::<usize>().unwrap();
        assert!(edits(0) >= edits(4), "cleaner data needs fewer edits");
    }

    #[test]
    fn phase_breakdown_covers_the_session() {
        let ex = Experiments::soccer();
        let t = phase_breakdown(&ex);
        let phases: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        for expected in [
            "clean.session",
            "clean.deletion_phase",
            "clean.insertion_phase",
            "eval.assignments",
        ] {
            assert!(
                phases.contains(&expected),
                "missing {expected} in {phases:?}"
            );
        }
        // the counters note proves the registry saw the same session
        let note = t.notes.first().expect("counters note");
        assert!(!note.contains("eval.assignments_tried=0"), "{note}");
        assert!(!note.contains("crowd.questions_asked=0"), "{note}");
    }

    #[test]
    fn dbgroup_case_totals_add_up() {
        let t = dbgroup_case();
        assert_eq!(t.rows.len(), 5); // 4 queries + total
        let sum: usize = t.rows[..4]
            .iter()
            .map(|r| r[1].parse::<usize>().unwrap())
            .sum();
        assert_eq!(sum.to_string(), t.rows[4][1]);
    }
}
