//! Minimal text tables for figure output.

use std::fmt;

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title (figure id + caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Tab-separated rendering (header + rows; notes as `# comment` lines)
    /// for downstream plotting tools.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            out.push_str("# ");
            out.push_str(n);
            out.push('\n');
        }
        out.push_str(&self.headers.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:<w$}  ", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Fig X", &["query", "questions"]);
        t.row(vec!["Q1".into(), "5".into()]);
        t.row(vec!["Q2-long".into(), "123".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("== Fig X =="));
        assert!(s.contains("Q2-long"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn tsv_rendering() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let tsv = t.to_tsv();
        assert!(tsv.starts_with("# hello\na\tb\n1\t2\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
