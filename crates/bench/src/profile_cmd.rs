//! Profiling one scaling-sweep cell under the sampling profiler.
//!
//! `qoco-bench profile CELL` and `qoco-bench regressions --attribute` both
//! need the same thing: run a named cell of the eval sweep (see
//! [`crate::scaling`]) in a loop under [`qoco_telemetry::Profiler`] and
//! fold the samples, so a ±25% gate failure can be localized to a phase
//! (`eval.par_chunk`, `eval.assignments`, …) instead of a whole cell.
//!
//! The `--inject-slowdown` plumbing multiplies a *recorded mean* after
//! measurement — a number, not work, so a profile would never see it. For
//! attribution runs the injection is re-materialized as real CPU time: a
//! busy-wait inside a span named `inject.slowdown`, sized so the iteration
//! slows by the injected factor. The profile then names `inject.slowdown`
//! as the top frame, which is exactly the property CI asserts.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qoco_data::Edit;
use qoco_engine::{all_assignments, answer_set, Assignment, EvalOptions, MaterializedView};
use qoco_telemetry::{diff_profiles, InMemoryCollector, Profile, Profiler};

use crate::scaling::{cleaning_cycle_facts, dense_workload, selective_workload};

/// A parsed `workload/size/engine/threads` cell key.
pub struct CellSpec {
    /// `"selective"`, `"dense"` or `"cleaning_sweep"`.
    pub workload: &'static str,
    /// Tuples per relation.
    pub size: usize,
    /// `"current"` for the eval workloads, `"view"` or `"fullre"` for
    /// `cleaning_sweep`.
    pub engine: &'static str,
    /// Thread count for the eval.
    pub threads: usize,
}

/// Parse a sweep cell key (e.g. `selective/1000/current/2` or
/// `cleaning_sweep/1000/view/1`). The seed engine cannot be profiled: it
/// is a frozen calibration artifact with no span instrumentation, so its
/// profile would be empty.
pub fn parse_cell(key: &str) -> Result<CellSpec, String> {
    let parts: Vec<&str> = key.split('/').collect();
    let [workload, size, engine, threads] = parts[..] else {
        return Err(format!(
            "cell `{key}` is not of the form workload/size/engine/threads"
        ));
    };
    let (workload, engine) = match (workload, engine) {
        ("selective", "current") => ("selective", "current"),
        ("dense", "current") => ("dense", "current"),
        ("cleaning_sweep", "view") => ("cleaning_sweep", "view"),
        ("cleaning_sweep", "fullre") => ("cleaning_sweep", "fullre"),
        ("selective" | "dense", other) => {
            return Err(format!(
                "only `current` engine cells can be profiled (got `{other}`): \
                 the seed engine carries no span instrumentation"
            ));
        }
        ("cleaning_sweep", other) => {
            return Err(format!(
                "cleaning_sweep engine must be `view` or `fullre` (got `{other}`)"
            ));
        }
        (other, _) => {
            return Err(format!(
                "unknown workload `{other}` (selective|dense|cleaning_sweep)"
            ));
        }
    };
    let size: usize = size
        .parse()
        .map_err(|_| format!("cell size `{size}` is not a number"))?;
    let threads: usize = threads
        .parse()
        .map_err(|_| format!("cell threads `{threads}` is not a number"))?;
    if size == 0 || threads == 0 {
        return Err("cell size and threads must be positive".to_string());
    }
    Ok(CellSpec {
        workload,
        size,
        engine,
        threads,
    })
}

/// Run `cell` in a loop for `budget` under the sampler at `interval` and
/// return the folded profile. `inject_factor` re-materializes an injected
/// slowdown as real busy-wait time inside an `inject.slowdown` span (see
/// the module docs); pass `None` for an honest profile.
pub fn profile_cell(
    cell: &str,
    interval: Duration,
    budget: Duration,
    inject_factor: Option<f64>,
) -> Result<Profile, String> {
    let spec = parse_cell(cell)?;
    // The profiler needs a live session; the collector's span records are
    // irrelevant here (the profile is the output), so an in-memory sink
    // that is dropped on exit is the cheapest thing that enables telemetry.
    let session = qoco_telemetry::session(Arc::new(InMemoryCollector::new()));
    // One iteration of the cell's measured unit: a full evaluation for the
    // eval workloads, a single edit (+ answer-set maintenance) for
    // `cleaning_sweep`.
    let mut iteration: Box<dyn FnMut()> = match spec.workload {
        "cleaning_sweep" => {
            let (mut db, q) = selective_workload(spec.size);
            // match the sweep's measurement: steady-state edits, with the
            // one-time lazy index builds paid before profiling starts
            db.ensure_indexes();
            let cycle = cleaning_cycle_facts(&q, spec.size);
            let mut step = 0usize;
            let mut next_edit = move || {
                let f = &cycle[(step / 2) % cycle.len()];
                let e = if step.is_multiple_of(2) {
                    Edit::delete(f.clone())
                } else {
                    Edit::insert(f.clone())
                };
                step += 1;
                e
            };
            if spec.engine == "view" {
                let mut view = MaterializedView::new(q.clone(), &db);
                Box::new(move || {
                    let e = next_edit();
                    db.apply(&e).expect("valid edit");
                    view.apply_edit(&db, &e);
                })
            } else {
                Box::new(move || {
                    let e = next_edit();
                    db.apply(&e).expect("valid edit");
                    answer_set(&q, &db);
                })
            }
        }
        _ => {
            let (db, q) = match spec.workload {
                "selective" => selective_workload(spec.size),
                _ => dense_workload(spec.size),
            };
            let opts = EvalOptions {
                threads: Some(spec.threads),
                ..EvalOptions::default()
            };
            Box::new(move || {
                all_assignments(&q, &db, &Assignment::new(), opts);
            })
        }
    };
    // Warm-up outside the profiled region: lazy index builds (and the
    // initial view materialization) would otherwise smear one-time setup
    // over the first iteration's samples.
    iteration();
    let profiler = Profiler::start(interval);
    {
        let _root = qoco_telemetry::span("profile.cell");
        let started = Instant::now();
        while started.elapsed() < budget {
            let iter_started = Instant::now();
            iteration();
            if let Some(factor) = inject_factor.filter(|f| *f > 1.0) {
                let spin = iter_started.elapsed().mul_f64(factor - 1.0);
                let _injected = qoco_telemetry::span("inject.slowdown");
                let spin_started = Instant::now();
                while spin_started.elapsed() < spin {
                    std::hint::spin_loop();
                }
            }
        }
    }
    let profile = profiler.stop();
    drop(session);
    if profile.is_empty() {
        return Err(format!(
            "profiling {cell} captured no samples (budget {budget:?}, interval {interval:?})"
        ));
    }
    Ok(profile)
}

/// `name pct%` pairs for the `n` frames with the most self samples —
/// the one-line attribution used in gate-failure messages.
pub fn top_frames_line(profile: &Profile, n: usize) -> String {
    let total = profile.samples.max(1) as f64;
    profile
        .top_self(n)
        .into_iter()
        .map(|(frame, count)| format!("{frame} {:.1}%", 100.0 * count as f64 / total))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Human-readable frame-share diff of two folded profiles: every frame
/// whose share moved at least `min_delta` (fraction of samples), grown
/// frames first.
pub fn render_diff(base: &Profile, head: &Profile, min_delta: f64) -> String {
    let deltas = diff_profiles(base, head);
    let mut out = format!(
        "frame share diff (base {} samples, head {} samples; showing |Δ| ≥ {:.0}%):\n",
        base.samples,
        head.samples,
        min_delta * 100.0
    );
    out.push_str(&format!(
        "{:<40} {:>8} {:>8} {:>8}\n",
        "frame", "base", "head", "delta"
    ));
    let mut shown = 0;
    for d in &deltas {
        if d.delta.abs() < min_delta {
            continue;
        }
        shown += 1;
        out.push_str(&format!(
            "{:<40} {:>7.1}% {:>7.1}% {:>+7.1}%\n",
            d.frame,
            d.base_share * 100.0,
            d.head_share * 100.0,
            d.delta * 100.0
        ));
    }
    if shown == 0 {
        out.push_str("(no frame moved that much — the profiles agree)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_keys_parse_and_reject() {
        let c = parse_cell("selective/1000/current/2").unwrap();
        assert_eq!(c.workload, "selective");
        assert_eq!(c.size, 1000);
        assert_eq!(c.threads, 2);
        assert!(parse_cell("selective/1000/current").is_err());
        assert!(parse_cell("mystery/1000/current/1").is_err());
        assert!(
            parse_cell("dense/1000/seed/1").is_err(),
            "seed not profilable"
        );
        assert!(parse_cell("dense/x/current/1").is_err());
        assert!(parse_cell("dense/0/current/1").is_err());
        let c = parse_cell("cleaning_sweep/1000/view/1").unwrap();
        assert_eq!(c.workload, "cleaning_sweep");
        assert_eq!(c.engine, "view");
        assert_eq!(
            parse_cell("cleaning_sweep/1000/fullre/1").unwrap().engine,
            "fullre"
        );
        assert!(
            parse_cell("cleaning_sweep/1000/current/1").is_err(),
            "cleaning cells have no `current` engine"
        );
    }

    #[test]
    fn profiling_a_cleaning_cell_yields_view_frames() {
        let profile = profile_cell(
            "cleaning_sweep/300/view/1",
            Duration::from_micros(100),
            Duration::from_millis(80),
            None,
        )
        .unwrap();
        let totals = profile.total_by_frame();
        assert!(totals.contains_key("profile.cell"));
        assert!(
            totals.contains_key("view.apply_edit"),
            "view sweep time should be under view.apply_edit: {:?}",
            profile.counts()
        );
        // delta maintenance runs small *seeded* evaluations nested under
        // view.apply_edit; what must vanish is the top-level full
        // re-evaluation the fullre engine pays per edit
        assert!(
            !profile
                .counts()
                .contains_key("profile.cell;eval.assignments"),
            "view sweep should not re-evaluate from scratch: {:?}",
            profile.counts()
        );
    }

    #[test]
    fn profiling_a_small_cell_yields_eval_frames() {
        let profile = profile_cell(
            "dense/300/current/1",
            Duration::from_micros(100),
            Duration::from_millis(80),
            None,
        )
        .unwrap();
        assert!(profile.samples > 0);
        let totals = profile.total_by_frame();
        assert!(
            totals.contains_key("eval.assignments"),
            "eval frames missing from {:?}",
            profile.counts()
        );
        assert!(totals.contains_key("profile.cell"));
    }

    #[test]
    fn injected_slowdown_dominates_the_profile() {
        let profile = profile_cell(
            "dense/300/current/1",
            Duration::from_micros(100),
            Duration::from_millis(80),
            Some(4.0),
        )
        .unwrap();
        let top = profile.top_self(1);
        assert_eq!(
            top[0].0,
            "inject.slowdown",
            "a ×4 injection must own the top self frame: {:?}",
            profile.top_self(5)
        );
    }

    #[test]
    fn top_frames_line_formats_shares() {
        let mut p = Profile::default();
        p.record("a;b", 75);
        p.record("a;c", 25);
        assert_eq!(top_frames_line(&p, 2), "b 75.0%, c 25.0%");
    }

    #[test]
    fn diff_rendering_flags_grown_frames() {
        let mut base = Profile::default();
        base.record("cell;eval", 80);
        base.record("cell;probe", 20);
        let mut head = Profile::default();
        head.record("cell;eval", 40);
        head.record("cell;probe", 60);
        let text = render_diff(&base, &head, 0.05);
        let probe_line = text.lines().find(|l| l.starts_with("probe")).unwrap();
        assert!(probe_line.contains("+40.0%"), "{text}");
        let flat = render_diff(&base, &base, 0.05);
        assert!(flat.contains("profiles agree"), "{flat}");
    }
}
