//! The perf-regression gate: re-run the eval scaling sweep and compare it
//! against the committed `BENCH_eval.json` baseline.
//!
//! Raw cross-run comparison would flag every run on a machine slower than
//! the one that wrote the baseline, so the gate calibrates first: the
//! *seed* engine cells measure a frozen algorithm (the preserved PR 2
//! baseline, untouched by ongoing work), which makes their measured/baseline
//! ratio a pure machine-speed signal. The geometric mean of those ratios
//! becomes the calibration factor, and every *current*-engine cell is then
//! judged against `baseline × calibration × threshold`. A >25% slowdown of
//! any cell beyond that scaled baseline fails the gate.

use crate::json::Json;
use crate::scaling::Sample;

/// Relative slowdown tolerated per cell (1.25 = fail above +25%).
pub const DEFAULT_THRESHOLD: f64 = 1.25;

/// Absolute slack (ns) a cell must also exceed before it can fail: cells
/// this close to the scaled baseline are inside timer/scheduler noise no
/// matter what the ratio says.
pub const ABSOLUTE_FLOOR_NS: f64 = 500_000.0;

/// One cell of the committed baseline.
#[derive(Clone, Debug)]
pub struct BaselineCell {
    /// `workload/size/engine/threads`.
    pub key: String,
    /// Engine name (`"seed"` or `"current"`).
    pub engine: String,
    /// Mean wall-clock ns recorded in the baseline.
    pub mean_ns: f64,
}

/// The `host_parallelism` recorded in a baseline document, if present.
/// The gate's calibration corrects single-thread machine speed only, so a
/// comparison across hosts with different core counts should *warn* (the
/// thread-scaling cells may diverge for machine reasons) without gating.
pub fn baseline_host_parallelism(text: &str) -> Option<u64> {
    Json::parse(text)
        .ok()?
        .get("host_parallelism")?
        .as_f64()
        .map(|v| v as u64)
}

/// Parse `BENCH_eval.json` into comparable cells.
pub fn load_baseline(text: &str) -> Result<Vec<BaselineCell>, String> {
    let doc = Json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .ok_or("baseline has no \"results\" array")?;
    let mut cells = Vec::new();
    for (i, cell) in results.iter().enumerate() {
        let field = |name: &str| {
            cell.get(name)
                .ok_or_else(|| format!("results[{i}] missing \"{name}\""))
        };
        let workload = field("workload")?
            .as_str()
            .ok_or_else(|| format!("results[{i}].workload is not a string"))?;
        let engine = field("engine")?
            .as_str()
            .ok_or_else(|| format!("results[{i}].engine is not a string"))?;
        let num = |name: &str| -> Result<f64, String> {
            field(name)?
                .as_f64()
                .ok_or_else(|| format!("results[{i}].{name} is not a number"))
        };
        let (size, threads, mean_ns) = (num("size")?, num("threads")?, num("mean_ns")?);
        if !mean_ns.is_finite() || mean_ns <= 0.0 {
            return Err(format!("results[{i}].mean_ns must be positive"));
        }
        cells.push(BaselineCell {
            key: format!(
                "{workload}/{size}/{engine}/{threads}",
                size = size as u64,
                threads = threads as u64
            ),
            engine: engine.to_string(),
            mean_ns,
        });
    }
    if cells.is_empty() {
        return Err("baseline has an empty \"results\" array".to_string());
    }
    Ok(cells)
}

/// One compared cell.
pub struct CellVerdict {
    /// `workload/size/engine/threads`.
    pub key: String,
    /// Baseline mean (ns) as committed.
    pub baseline_ns: f64,
    /// Mean (ns) measured in this run.
    pub measured_ns: f64,
    /// `measured / (baseline × calibration)`.
    pub ratio: f64,
    /// Whether this cell breached the threshold.
    pub regressed: bool,
}

/// Outcome of a full comparison.
pub struct RegressionReport {
    /// Machine-speed factor derived from the seed cells (1.0 when the run
    /// matches the baseline host exactly).
    pub calibration: f64,
    /// How many seed cells fed the calibration.
    pub calibration_cells: usize,
    /// Per-cell verdicts for every non-seed cell measured in this run
    /// that also exists in the baseline (`current` eval cells plus both
    /// `cleaning_sweep` engines).
    pub cells: Vec<CellVerdict>,
    /// The threshold the verdicts were judged against.
    pub threshold: f64,
}

impl RegressionReport {
    /// True when no cell regressed.
    pub fn pass(&self) -> bool {
        self.cells.iter().all(|c| !c.regressed)
    }

    /// The cells that breached the threshold (empty on a passing run).
    pub fn regressed_cells(&self) -> Vec<&CellVerdict> {
        self.cells.iter().filter(|c| c.regressed).collect()
    }

    /// The worst (largest) calibrated ratio across compared cells.
    pub fn worst_ratio(&self) -> f64 {
        self.cells.iter().map(|c| c.ratio).fold(0.0, f64::max)
    }

    /// Human-readable table of the comparison.
    pub fn render(&self) -> String {
        let mut out = format!(
            "calibration ×{:.3} from {} seed cell(s); threshold ×{:.2} (+{:.0}µs floor)\n",
            self.calibration,
            self.calibration_cells,
            self.threshold,
            ABSOLUTE_FLOOR_NS / 1_000.0
        );
        out.push_str(&format!(
            "{:<30} {:>12} {:>12} {:>8}  verdict\n",
            "cell", "baseline", "measured", "ratio"
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<30} {:>10.1}ms {:>10.1}ms {:>8.2}  {}\n",
                c.key,
                c.baseline_ns / 1e6,
                c.measured_ns / 1e6,
                c.ratio,
                if c.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        out
    }

    /// One JSON line for `BENCH_trajectory.jsonl`. `host_parallelism` is
    /// recorded on every line so 1-core CI results are never mistaken for
    /// multi-core ones; `attribution` (cell key → top-frame summary from
    /// an `--attribute` re-run) is included only when non-empty.
    pub fn trajectory_line(
        &self,
        at_epoch_s: u64,
        mode: &str,
        host_parallelism: usize,
        attribution: &[(String, String)],
    ) -> String {
        // Build identity first, so `head -c` on a trajectory line already
        // says which binary produced it.
        let build = qoco_telemetry::build_info();
        let mut line = format!(
            "{{\"at_epoch_s\":{at_epoch_s},\"version\":\"{}\",\"git\":\"{}\",\"mode\":\"{mode}\",\"host_parallelism\":{host_parallelism},\"cells\":{},\"calibration\":{:.4},\"worst_ratio\":{:.4},\"pass\":{}",
            escape_json(build.version),
            escape_json(build.git),
            self.cells.len(),
            self.calibration,
            self.worst_ratio(),
            self.pass()
        );
        if !attribution.is_empty() {
            line.push_str(",\"attribution\":{");
            for (i, (cell, frames)) in attribution.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!(
                    "\"{}\":\"{}\"",
                    escape_json(cell),
                    escape_json(frames)
                ));
            }
            line.push('}');
        }
        line.push('}');
        line
    }
}

/// Minimal JSON string escaping for the trajectory line (cell keys and
/// frame names are plain identifiers, but a defensive escape is cheap).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Compare a fresh sweep against the baseline. Cells measured in this run
/// but absent from the baseline (or vice versa) are skipped — the quick
/// configuration deliberately measures a subset of the committed grid.
pub fn compare(samples: &[Sample], baseline: &[BaselineCell], threshold: f64) -> RegressionReport {
    let find = |key: &str| baseline.iter().find(|b| b.key == key);

    // Machine-speed calibration from the frozen seed algorithm.
    let mut log_sum = 0.0;
    let mut calibration_cells = 0usize;
    for s in samples.iter().filter(|s| s.engine == "seed") {
        if let Some(b) = find(&s.key()) {
            log_sum += (s.mean_ns / b.mean_ns).ln();
            calibration_cells += 1;
        }
    }
    let calibration = if calibration_cells > 0 {
        (log_sum / calibration_cells as f64).exp()
    } else {
        1.0
    };

    // Every non-seed cell is gated: "current" eval cells and both
    // cleaning_sweep engines ("view", "fullre"). Seed cells are the
    // calibration instrument, never judged.
    let mut cells = Vec::new();
    for s in samples.iter().filter(|s| s.engine != "seed") {
        let Some(b) = find(&s.key()) else { continue };
        let scaled = b.mean_ns * calibration;
        let ratio = s.mean_ns / scaled;
        let regressed = ratio > threshold && s.mean_ns - scaled > ABSOLUTE_FLOOR_NS;
        cells.push(CellVerdict {
            key: s.key(),
            baseline_ns: b.mean_ns,
            measured_ns: s.mean_ns,
            ratio,
            regressed,
        });
    }
    RegressionReport {
        calibration,
        calibration_cells,
        cells,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        workload: &'static str,
        engine: &'static str,
        threads: usize,
        mean_ns: f64,
    ) -> Sample {
        Sample {
            workload,
            size: 1000,
            engine,
            threads,
            mean_ns,
            iters: 3,
            assignments: 1000,
        }
    }

    fn baseline() -> Vec<BaselineCell> {
        load_baseline(
            r#"{"results": [
                {"workload": "selective", "size": 1000, "engine": "seed", "threads": 1, "mean_ns": 10000000, "iters": 3, "assignments": 1000},
                {"workload": "selective", "size": 1000, "engine": "current", "threads": 1, "mean_ns": 2000000, "iters": 3, "assignments": 1000},
                {"workload": "selective", "size": 1000, "engine": "current", "threads": 2, "mean_ns": 2000000, "iters": 3, "assignments": 1000}
            ]}"#,
        )
        .unwrap()
    }

    #[test]
    fn parses_the_committed_baseline_format() {
        let cells = baseline();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].key, "selective/1000/seed/1");
        assert_eq!(cells[0].mean_ns, 10_000_000.0);
    }

    #[test]
    fn matching_performance_passes() {
        let samples = vec![
            sample("selective", "seed", 1, 10_000_000.0),
            sample("selective", "current", 1, 2_100_000.0),
        ];
        let report = compare(&samples, &baseline(), DEFAULT_THRESHOLD);
        assert!((report.calibration - 1.0).abs() < 1e-9);
        assert!(report.pass(), "{}", report.render());
    }

    #[test]
    fn slow_machine_is_calibrated_away() {
        // Everything (seed included) runs 3× slower: a slower machine, not
        // a regression.
        let samples = vec![
            sample("selective", "seed", 1, 30_000_000.0),
            sample("selective", "current", 1, 6_200_000.0),
        ];
        let report = compare(&samples, &baseline(), DEFAULT_THRESHOLD);
        assert!((report.calibration - 3.0).abs() < 1e-9);
        assert!(report.pass(), "{}", report.render());
    }

    #[test]
    fn genuine_slowdown_fails_even_on_a_calibrated_machine() {
        // Seed unchanged (machine speed = baseline) but current 3× slower.
        let samples = vec![
            sample("selective", "seed", 1, 10_000_000.0),
            sample("selective", "current", 1, 6_000_000.0),
        ];
        let report = compare(&samples, &baseline(), DEFAULT_THRESHOLD);
        assert!(!report.pass());
        let cell = &report.cells[0];
        assert!(cell.regressed);
        assert!((cell.ratio - 3.0).abs() < 1e-9);
        assert!(report.render().contains("REGRESSED"));
        assert_eq!(report.regressed_cells().len(), 1);
        assert!(report
            .trajectory_line(123, "quick", 4, &[])
            .contains("\"pass\":false"));
    }

    #[test]
    fn trajectory_line_records_host_parallelism_and_attribution() {
        let samples = vec![
            sample("selective", "seed", 1, 10_000_000.0),
            sample("selective", "current", 1, 6_000_000.0),
        ];
        let report = compare(&samples, &baseline(), DEFAULT_THRESHOLD);
        let bare = report.trajectory_line(123, "quick", 8, &[]);
        assert!(bare.contains("\"host_parallelism\":8"), "{bare}");
        assert!(!bare.contains("attribution"), "{bare}");
        let attributed = report.trajectory_line(
            123,
            "quick",
            8,
            &[(
                "selective/1000/current/1".to_string(),
                "inject.slowdown 61.0%, eval.par_chunk 22.1%".to_string(),
            )],
        );
        assert!(
            attributed
                .contains("\"attribution\":{\"selective/1000/current/1\":\"inject.slowdown 61.0%"),
            "{attributed}"
        );
        // still a single well-formed JSON object
        assert!(
            crate::json::Json::parse(&attributed).is_ok(),
            "{attributed}"
        );
    }

    #[test]
    fn cells_missing_from_the_baseline_are_skipped() {
        let samples = vec![
            sample("selective", "seed", 1, 10_000_000.0),
            sample("selective", "current", 8, 2_000_000.0), // not in baseline()
        ];
        let report = compare(&samples, &baseline(), DEFAULT_THRESHOLD);
        assert!(report.cells.is_empty());
        assert!(report.pass());
    }

    #[test]
    fn cleaning_sweep_engines_are_gated_like_current() {
        let baseline = load_baseline(
            r#"{"results": [
                {"workload": "selective", "size": 1000, "engine": "seed", "threads": 1, "mean_ns": 10000000},
                {"workload": "cleaning_sweep", "size": 1000, "engine": "view", "threads": 1, "mean_ns": 5000},
                {"workload": "cleaning_sweep", "size": 1000, "engine": "fullre", "threads": 1, "mean_ns": 2000000}
            ]}"#,
        )
        .unwrap();
        // the incremental path regressed 400× (fell back to refresh-per-
        // edit): the gate must catch it even though the engine is "view"
        let samples = vec![
            sample("selective", "seed", 1, 10_000_000.0),
            sample("cleaning_sweep", "view", 1, 2_000_000.0),
            sample("cleaning_sweep", "fullre", 1, 2_050_000.0),
        ];
        let report = compare(&samples, &baseline, DEFAULT_THRESHOLD);
        assert_eq!(report.cells.len(), 2, "{}", report.render());
        let view_cell = report
            .cells
            .iter()
            .find(|c| c.key == "cleaning_sweep/1000/view/1")
            .unwrap();
        assert!(view_cell.regressed, "{}", report.render());
        let fullre_cell = report
            .cells
            .iter()
            .find(|c| c.key == "cleaning_sweep/1000/fullre/1")
            .unwrap();
        assert!(!fullre_cell.regressed, "{}", report.render());
    }

    #[test]
    fn baseline_host_parallelism_is_surfaced_when_recorded() {
        assert_eq!(
            baseline_host_parallelism(r#"{"host_parallelism": 8, "results": []}"#),
            Some(8)
        );
        assert_eq!(baseline_host_parallelism(r#"{"results": []}"#), None);
        assert_eq!(baseline_host_parallelism("not json"), None);
    }

    #[test]
    fn load_baseline_rejects_malformed_documents() {
        assert!(load_baseline("{}").is_err());
        assert!(load_baseline("{\"results\": []}").is_err());
        assert!(load_baseline("{\"results\": [{\"workload\": \"w\"}]}").is_err());
        assert!(load_baseline("not json").is_err());
    }
}
