//! Structural validation of decision-provenance JSONL exports.
//!
//! `qoco-cli --telemetry <path>` streams one JSON object per line; the
//! `"type":"decision"` lines are the decision-provenance record stream
//! (see `qoco-telemetry`'s `DecisionRecord`). CI runs
//! `qoco-bench validate-decisions FILE` over a real session export to gate
//! on the stream staying machine-readable: every decision must carry a
//! positive, unique integer id, non-empty `kind`/`question`/`outcome`
//! strings, and a string-valued `evidence` object. Parsing uses the
//! workspace's dependency-free [`crate::json`] parser.

use std::collections::BTreeSet;

use crate::json::Json;

/// What [`validate_decisions`] found in a valid export.
#[derive(Debug)]
pub struct DecisionSummary {
    /// Number of `"type":"decision"` lines.
    pub decisions: usize,
    /// Distinct decision kinds seen, sorted.
    pub kinds: BTreeSet<String>,
}

/// Validate every decision line of a telemetry JSONL export. Non-decision
/// lines (spans, events, metrics) are parsed but otherwise ignored.
/// `require_kinds` lists decision kinds that must appear at least once.
pub fn validate_decisions(text: &str, require_kinds: &[String]) -> Result<DecisionSummary, String> {
    let mut seen_ids: BTreeSet<u64> = BTreeSet::new();
    let mut kinds: BTreeSet<String> = BTreeSet::new();
    let mut decisions = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = i + 1;
        let v = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if v.get("type").and_then(Json::as_str) != Some("decision") {
            continue;
        }
        decisions += 1;
        let id = v
            .get("id")
            .and_then(Json::as_f64)
            .filter(|n| *n >= 1.0 && n.fract() == 0.0)
            .ok_or_else(|| format!("line {lineno}: decision id must be a positive integer"))?;
        if !seen_ids.insert(id as u64) {
            return Err(format!(
                "line {lineno}: duplicate decision id {}",
                id as u64
            ));
        }
        for key in ["kind", "question", "outcome"] {
            match v.get(key).and_then(Json::as_str) {
                Some(s) if key != "kind" || !s.is_empty() => {}
                Some(_) => return Err(format!("line {lineno}: empty decision kind")),
                None => return Err(format!("line {lineno}: decision is missing string `{key}`")),
            }
        }
        kinds.insert(
            v.get("kind")
                .and_then(Json::as_str)
                .expect("checked above")
                .to_string(),
        );
        match v.get("evidence") {
            Some(Json::Object(map)) => {
                for (k, val) in map {
                    if val.as_str().is_none() {
                        return Err(format!("line {lineno}: evidence `{k}` is not a string"));
                    }
                }
            }
            _ => {
                return Err(format!(
                    "line {lineno}: decision is missing its evidence object"
                ))
            }
        }
    }
    for k in require_kinds {
        if !kinds.contains(k) {
            return Err(format!(
                "no `{k}` decision in the log (kinds seen: {kinds:?})"
            ));
        }
    }
    Ok(DecisionSummary { decisions, kinds })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        r#"{"type":"span","name":"clean.session","start_ns":0,"end_ns":9}"#,
        "\n",
        r#"{"type":"decision","id":1,"at_ns":5,"tid":0,"kind":"deletion.plan","question":"q","outcome":"o","evidence":{"witnesses":"{a}"}}"#,
        "\n",
        r#"{"type":"decision","id":2,"at_ns":7,"span":3,"tid":0,"kind":"deletion.verify_fact","question":"TRUE(a)?","outcome":"false","evidence":{}}"#,
        "\n",
    );

    #[test]
    fn accepts_a_well_formed_export() {
        let s = validate_decisions(GOOD, &["deletion.plan".to_string()]).unwrap();
        assert_eq!(s.decisions, 2);
        assert!(s.kinds.contains("deletion.verify_fact"));
    }

    #[test]
    fn missing_required_kind_is_an_error() {
        let err = validate_decisions(GOOD, &["deletion.certificate".to_string()]).unwrap_err();
        assert!(err.contains("deletion.certificate"), "{err}");
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let dup = GOOD.replace("\"id\":2", "\"id\":1");
        let err = validate_decisions(&dup, &[]).unwrap_err();
        assert!(err.contains("duplicate decision id 1"), "{err}");
    }

    #[test]
    fn malformed_decisions_are_rejected() {
        for (broken, want) in [
            (GOOD.replace("\"id\":1", "\"id\":0"), "positive integer"),
            (GOOD.replace("\"question\":\"q\",", ""), "missing string"),
            (
                GOOD.replace(r#""evidence":{"witnesses":"{a}"}"#, r#""evidence":7"#),
                "evidence object",
            ),
            (
                GOOD.replace(r#""witnesses":"{a}""#, r#""witnesses":12"#),
                "not a string",
            ),
        ] {
            let err = validate_decisions(&broken, &[]).unwrap_err();
            assert!(err.contains(want), "expected {want:?} in {err}");
        }
    }

    #[test]
    fn non_json_line_is_an_error() {
        assert!(validate_decisions("not json\n", &[]).is_err());
    }
}
