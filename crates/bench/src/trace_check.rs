//! Structural validation of exported Chrome trace files.
//!
//! `scripts/ci.sh` exports a trace from the smoke-run and needs to know it
//! is actually loadable — without shelling out to python or a browser. The
//! checks here mirror what Perfetto requires of the trace-event format:
//! valid JSON in array or object form, complete (`ph: "X"`) events with
//! numeric timestamps, and — because this repo's point is making the
//! parallel eval fan-out visible — spans on at least two distinct thread
//! tracks.

use std::collections::BTreeSet;

use crate::json::Json;

/// Summary of a structurally valid trace.
#[derive(Debug)]
pub struct TraceSummary {
    /// Number of `ph: "X"` complete events.
    pub complete_events: usize,
    /// Distinct `tid` values among the complete events.
    pub thread_tracks: usize,
    /// Distinct span names among the complete events.
    pub span_names: BTreeSet<String>,
}

/// Validate `text` as a Chrome trace-event document. `min_tracks` is the
/// number of distinct thread tracks required among complete events;
/// `require_spans` lists span names that must each appear at least once.
pub fn validate_trace(
    text: &str,
    min_tracks: usize,
    require_spans: &[String],
) -> Result<TraceSummary, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    // Both documented forms: a bare event array, or an object whose
    // "traceEvents" key holds one.
    let events = match &doc {
        Json::Array(items) => items.as_slice(),
        Json::Object(_) => doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .ok_or("object-form trace has no \"traceEvents\" array")?,
        _ => return Err("trace document is neither an array nor an object".to_string()),
    };

    let mut complete_events = 0usize;
    let mut tids = BTreeSet::new();
    let mut span_names = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] has no \"ph\""))?;
        if ph != "X" {
            continue;
        }
        for field in ["ts", "dur", "pid", "tid"] {
            ev.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("traceEvents[{i}] ({ph}) missing numeric \"{field}\""))?;
        }
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] missing \"name\""))?;
        complete_events += 1;
        tids.insert(ev.get("tid").unwrap().as_f64().unwrap() as u64);
        span_names.insert(name.to_string());
    }

    if complete_events == 0 {
        return Err("trace contains no complete (ph=X) events".to_string());
    }
    if tids.len() < min_tracks {
        return Err(format!(
            "complete events span {} thread track(s), need at least {min_tracks} \
             (the parallel fan-out is not visible)",
            tids.len()
        ));
    }
    for want in require_spans {
        if !span_names.contains(want) {
            return Err(format!(
                "required span \"{want}\" not found (trace has: {span_names:?})"
            ));
        }
    }
    Ok(TraceSummary {
        complete_events,
        thread_tracks: tids.len(),
        span_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str, tid: u64) -> String {
        format!(r#"{{"name": "{name}", "ph": "X", "ts": 1.5, "dur": 2.0, "pid": 1, "tid": {tid}}}"#)
    }

    #[test]
    fn accepts_array_and_object_forms() {
        let body = format!("[{},{}]", event("a", 0), event("b", 1));
        let s = validate_trace(&body, 2, &[]).unwrap();
        assert_eq!(s.complete_events, 2);
        assert_eq!(s.thread_tracks, 2);
        let wrapped = format!("{{\"traceEvents\": {body}}}");
        assert!(validate_trace(&wrapped, 2, &[]).is_ok());
    }

    #[test]
    fn rejects_too_few_tracks_and_missing_spans() {
        let body = format!("[{},{}]", event("a", 0), event("b", 0));
        assert!(validate_trace(&body, 2, &[]).is_err());
        let err = validate_trace(&body, 1, &["missing.span".to_string()]).unwrap_err();
        assert!(err.contains("missing.span"), "{err}");
        assert!(validate_trace(&body, 1, &["a".to_string()]).is_ok());
    }

    #[test]
    fn rejects_empty_and_malformed_traces() {
        assert!(validate_trace("[]", 1, &[]).is_err());
        assert!(validate_trace("{\"traceEvents\": []}", 1, &[]).is_err());
        assert!(validate_trace("{}", 1, &[]).is_err());
        assert!(validate_trace("not json", 1, &[]).is_err());
        // metadata-only traces have no complete events
        let meta = r#"[{"name": "process_name", "ph": "M", "pid": 1}]"#;
        assert!(validate_trace(meta, 1, &[]).is_err());
    }
}
