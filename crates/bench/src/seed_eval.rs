//! The pre-optimization evaluation algorithm, preserved verbatim as a
//! benchmark baseline.
//!
//! This module re-implements the engine's original backtracking join: eager
//! `HashMap<Value, Vec<Tuple>>` column indexes (built lazily, cached across
//! evaluations like the old `Relation` did), a full `to_vec()` clone of the
//! candidate posting list at every descend, and a `candidates.sort()` per
//! descend to recover determinism. The scaling bench measures the current
//! zero-copy engine against this to quantify the speedup; nothing outside
//! `benches/eval.rs` should use it.

use std::collections::HashMap;

use qoco_data::{Database, RelId, Tuple, Value};
use qoco_engine::Assignment;
use qoco_query::{ConjunctiveQuery, Term};

/// The old engine's evaluation state: a database plus lazily built
/// owned-tuple column indexes, cached across calls the way the old
/// `Relation` cached them across probes.
pub struct SeedEval<'a> {
    db: &'a Database,
    indexes: HashMap<(RelId, usize), HashMap<Value, Vec<Tuple>>>,
}

impl<'a> SeedEval<'a> {
    /// Wrap `db`; indexes build on first probe of each column.
    pub fn new(db: &'a Database) -> Self {
        SeedEval {
            db,
            indexes: HashMap::new(),
        }
    }

    fn probe(&mut self, rel: RelId, col: usize, value: &Value) -> &[Tuple] {
        let index = self.indexes.entry((rel, col)).or_insert_with(|| {
            let mut map: HashMap<Value, Vec<Tuple>> = HashMap::new();
            for t in self.db.relation(rel).iter() {
                map.entry(t.values()[col].clone())
                    .or_default()
                    .push(t.clone());
            }
            map
        });
        index.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All valid assignments of `q`, sorted and deduplicated — the old
    /// `all_assignments` with default options.
    pub fn all_assignments(&mut self, q: &ConjunctiveQuery) -> Vec<Assignment> {
        let order = plan(q, self.db);
        let mut out = Vec::new();
        self.descend(q, &order, 0, Assignment::new(), &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// The answer set `Q(D)`, sorted and deduplicated.
    pub fn answer_set(&mut self, q: &ConjunctiveQuery) -> Vec<Tuple> {
        let mut answers: Vec<Tuple> = self
            .all_assignments(q)
            .iter()
            .map(|a| a.ground_head(q).expect("valid assignments are total"))
            .collect();
        answers.sort();
        answers.dedup();
        answers
    }

    fn descend(
        &mut self,
        q: &ConjunctiveQuery,
        order: &[usize],
        depth: usize,
        current: Assignment,
        out: &mut Vec<Assignment>,
    ) {
        if depth == order.len() {
            let ok = q
                .inequalities()
                .iter()
                .all(|e| current.check_inequality(e) == Some(true));
            if ok {
                out.push(current);
            }
            return;
        }
        let atom = &q.atoms()[order[depth]];
        let mut probe_col: Option<(usize, Value)> = None;
        for (col, term) in atom.terms.iter().enumerate() {
            if let Some(v) = current.ground_term(term) {
                probe_col = Some((col, v));
                break;
            }
        }
        // the seed's per-descend costs: a full clone of the posting list,
        // then a sort to recover deterministic order
        let mut candidates: Vec<Tuple> = match &probe_col {
            Some((col, v)) => self.probe(atom.rel, *col, v).to_vec(),
            None => self.db.relation(atom.rel).iter().cloned().collect(),
        };
        candidates.sort();
        'cand: for tuple in candidates {
            let mut next = current.clone();
            for (term, value) in atom.terms.iter().zip(tuple.values()) {
                match term {
                    Term::Const(c) => {
                        if c != value {
                            continue 'cand;
                        }
                    }
                    Term::Var(v) => {
                        if !next.bind(v.clone(), value.clone()) {
                            continue 'cand;
                        }
                    }
                }
            }
            for e in q.inequalities() {
                if next.check_inequality(e) == Some(false) {
                    continue 'cand;
                }
            }
            self.descend(q, order, depth + 1, next, out);
        }
    }
}

/// The seed's greedy atom order, including its original
/// `usize::MAX - bound` sort-key encoding.
fn plan(q: &ConjunctiveQuery, db: &Database) -> Vec<usize> {
    let n = q.atoms().len();
    let mut bound_vars: std::collections::BTreeSet<qoco_query::Var> = Default::default();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .copied()
            .min_by_key(|&i| {
                let a = &q.atoms()[i];
                let bound = a
                    .terms
                    .iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound_vars.contains(v),
                    })
                    .count();
                let size = db.relation(a.rel).len();
                (usize::MAX - bound, size, i)
            })
            .expect("remaining is non-empty");
        order.push(best);
        for v in q.atoms()[best].vars() {
            bound_vars.insert(v);
        }
        remaining.retain(|&i| i != best);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{tup, Schema};
    use qoco_engine::answer_set;
    use qoco_query::parse_query;

    #[test]
    fn seed_baseline_matches_current_engine() {
        let schema = Schema::builder()
            .relation("A", &["x", "g"])
            .relation("B", &["y", "g"])
            .build()
            .unwrap();
        let mut db = Database::empty(schema.clone());
        for i in 0..40u32 {
            db.insert_named("A", tup![format!("a{i}"), format!("g{}", i % 5)])
                .unwrap();
            db.insert_named("B", tup![format!("b{i}"), format!("g{}", i % 5)])
                .unwrap();
        }
        let q = parse_query(&schema, "Q(x, y) :- A(x, g), B(y, g).").unwrap();
        let mut seed = SeedEval::new(&db);
        assert_eq!(seed.answer_set(&q), answer_set(&q, &db));
    }
}
