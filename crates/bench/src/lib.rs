//! # qoco-bench — the figure-regeneration harness
//!
//! One function per table/figure of the paper's evaluation (Section 7).
//! Each returns a [`Table`] whose rows mirror the series the paper plots;
//! the `figures` binary prints them. Absolute numbers differ from the paper
//! (synthetic data, different noise placement) but the comparative shape —
//! who asks fewer questions, by roughly what factor — is the reproduction
//! target; see EXPERIMENTS.md for the side-by-side reading.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decision_check;
pub mod experiments;
pub mod flame_check;
pub mod json;
pub mod profile_cmd;
pub mod regressions;
pub mod request_check;
pub mod scaling;
pub mod seed_eval;
pub mod session_check;
pub mod table;
pub mod trace_check;
pub mod watch_replay;

pub use experiments::*;
pub use table::Table;
