//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p qoco-bench --bin figures -- all
//! cargo run --release -p qoco-bench --bin figures -- fig3a fig3b
//! ```
//!
//! Targets: fig3a fig3b fig3c fig3d fig3e fig3f fig4 dbgroup
//!          ablation-hs ablation-umhs ablation-heur sweep-clean phases
//!          watch all
//!
//! `--telemetry <path>` (or the `QOCO_TELEMETRY` environment variable)
//! streams a JSON-lines telemetry export of the whole run — every figure's
//! cleaning sessions, spans and the final metrics snapshot — so slow
//! figure regenerations can be profiled offline.
//!
//! `--profile <path>` runs the whole regeneration under the in-process
//! sampling profiler: a flamegraph SVG when the path ends in `.svg`,
//! folded stack lines otherwise.

use std::sync::Arc;

use qoco_bench::{
    ablation_composite, ablation_heuristics, ablation_hitting_set, ablation_umhs, dbgroup_case,
    fig3a, fig3b, fig3c, fig3d, fig3e, fig3f, fig4, phase_breakdown, sweep_cleanliness,
    sweep_error_rate, watch_optimality, Experiments,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // --out <dir>: also write each table as <dir>/<target>.tsv
    let mut out_dir: Option<std::path::PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        if pos + 1 >= args.len() {
            eprintln!("--out needs a directory argument");
            std::process::exit(2);
        }
        out_dir = Some(std::path::PathBuf::from(args.remove(pos + 1)));
        args.remove(pos);
    }
    // --telemetry <path> (flag wins over the QOCO_TELEMETRY env variable)
    let mut telemetry_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--telemetry") {
        if pos + 1 >= args.len() {
            eprintln!("--telemetry needs a file argument");
            std::process::exit(2);
        }
        telemetry_path = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    if telemetry_path.is_none() {
        telemetry_path = std::env::var("QOCO_TELEMETRY")
            .ok()
            .filter(|p| !p.is_empty());
    }
    // --profile <path>: run everything under the sampling profiler
    let mut profile_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--profile") {
        if pos + 1 >= args.len() {
            eprintln!("--profile needs an output path (.svg or .folded)");
            std::process::exit(2);
        }
        profile_path = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let telemetry = telemetry_path.map(|path| {
        let collector = Arc::new(
            qoco_telemetry::JsonlCollector::create(&path).unwrap_or_else(|e| {
                eprintln!("cannot create telemetry export {path}: {e}");
                std::process::exit(2);
            }),
        );
        eprintln!("streaming telemetry to {path}");
        (qoco_telemetry::session(collector.clone()), collector)
    });
    // The sampler only sees spans under an installed session; when profiling
    // without --telemetry, install a discarded in-memory sink to enable one.
    let _profile_session = (profile_path.is_some() && telemetry.is_none())
        .then(|| qoco_telemetry::session(Arc::new(qoco_telemetry::InMemoryCollector::new())));
    let profiler = profile_path
        .as_ref()
        .map(|_| qoco_telemetry::Profiler::start(qoco_telemetry::DEFAULT_SAMPLE_INTERVAL));
    let targets: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig3a",
            "fig3b",
            "fig3c",
            "fig3d",
            "fig3e",
            "fig3f",
            "fig4",
            "dbgroup",
            "ablation-hs",
            "ablation-umhs",
            "ablation-heur",
            "ablation-composite",
            "sweep-clean",
            "sweep-error",
            "phases",
            "watch",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    let needs_soccer = targets.iter().any(|t| *t != "dbgroup");
    let ex = needs_soccer.then(Experiments::soccer);

    for target in targets {
        let started = std::time::Instant::now();
        let table = match target {
            "fig3a" => fig3a(ex.as_ref().expect("soccer context")),
            "fig3b" => fig3b(ex.as_ref().expect("soccer context")),
            "fig3c" => fig3c(ex.as_ref().expect("soccer context")),
            "fig3d" => fig3d(ex.as_ref().expect("soccer context")),
            "fig3e" => fig3e(ex.as_ref().expect("soccer context")),
            "fig3f" => fig3f(ex.as_ref().expect("soccer context")),
            "fig4" => fig4(ex.as_ref().expect("soccer context")),
            "dbgroup" => dbgroup_case(),
            "ablation-hs" => ablation_hitting_set(ex.as_ref().expect("soccer context")),
            "ablation-umhs" => ablation_umhs(ex.as_ref().expect("soccer context")),
            "ablation-heur" => ablation_heuristics(ex.as_ref().expect("soccer context")),
            "ablation-composite" => ablation_composite(ex.as_ref().expect("soccer context")),
            "sweep-clean" => sweep_cleanliness(ex.as_ref().expect("soccer context")),
            "sweep-error" => sweep_error_rate(ex.as_ref().expect("soccer context")),
            "phases" => phase_breakdown(ex.as_ref().expect("soccer context")),
            "watch" => watch_optimality(ex.as_ref().expect("soccer context")),
            other => {
                eprintln!("unknown target `{other}`; see --help text in the source header");
                std::process::exit(2);
            }
        };
        println!("{table}");
        println!("  [generated in {:.2?}]\n", started.elapsed());
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create output directory");
            let path = dir.join(format!("{target}.tsv"));
            std::fs::write(&path, table.to_tsv()).expect("write TSV table");
        }
    }

    if let (Some(path), Some(profiler)) = (&profile_path, profiler) {
        let profile = profiler.stop();
        let rendered = if path.ends_with(".svg") {
            profile.flamegraph_svg("qoco figures regeneration")
        } else {
            profile.to_folded()
        };
        std::fs::write(path, rendered).expect("write profile output");
        eprintln!(
            "profile: {} sample(s), {} dropped → {path}",
            profile.samples, profile.dropped
        );
    }
    if let Some((_guard, collector)) = &telemetry {
        collector.write_metrics(&qoco_telemetry::metrics().snapshot());
        collector.flush();
    }
}
