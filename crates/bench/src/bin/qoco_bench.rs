//! `qoco-bench` — operational entry points for the bench harness.
//!
//! Subcommands:
//!
//! * `regressions` — re-run the eval scaling sweep and gate it against the
//!   committed `BENCH_eval.json` baseline (exit 1 on any regressed cell).
//!   `--quick` measures the CI-sized subset; `--check` suppresses all file
//!   writes; otherwise a summary line is appended to
//!   `BENCH_trajectory.jsonl`. `--inject-slowdown CELL=FACTOR` multiplies
//!   one measured cell after the fact — CI uses it to prove the gate trips.
//! * `validate-trace FILE` — structurally validate an exported Chrome
//!   trace (array or object form), requiring `--min-tracks N` distinct
//!   thread tracks (default 2) and any `--require-span NAME` spans.
//! * `validate-decisions FILE` — structurally validate the decision-
//!   provenance lines of a `--telemetry` JSONL export (unique positive
//!   ids, string evidence), requiring any `--require-kind NAME` kinds.

use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use qoco_bench::decision_check::validate_decisions;
use qoco_bench::regressions::{compare, load_baseline, DEFAULT_THRESHOLD};
use qoco_bench::scaling::{scaling_sweep, SweepConfig};
use qoco_bench::trace_check::validate_trace;

fn repo_path(file: &str) -> String {
    format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: qoco-bench regressions [--quick] [--check] [--threshold X] \
         [--baseline FILE] [--inject-slowdown workload/size/engine/threads=FACTOR]\n       \
         qoco-bench validate-trace FILE [--min-tracks N] [--require-span NAME]...\n       \
         qoco-bench validate-decisions FILE [--require-kind NAME]..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("regressions") => run_regressions(&args[1..]),
        Some("validate-trace") => run_validate_trace(&args[1..]),
        Some("validate-decisions") => run_validate_decisions(&args[1..]),
        _ => usage(),
    }
}

fn run_regressions(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut check = false;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut baseline_path = repo_path("BENCH_eval.json");
    let mut injections: Vec<(String, f64)> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--threshold" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => threshold = v,
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline_path = v.clone(),
                None => return usage(),
            },
            "--inject-slowdown" => {
                let Some((cell, factor)) = it
                    .next()
                    .and_then(|v| v.split_once('='))
                    .and_then(|(c, f)| f.parse::<f64>().ok().map(|f| (c.to_string(), f)))
                else {
                    return usage();
                };
                injections.push((cell, factor));
            }
            _ => return usage(),
        }
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match load_baseline(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::full()
    };
    let mode = if quick { "quick" } else { "full" };
    eprintln!(
        "measuring {mode} sweep ({} sizes × {} thread counts, 2 workloads)…",
        config.sizes.len(),
        config.threads.len()
    );
    let mut samples = scaling_sweep(&config);
    for (cell, factor) in &injections {
        let Some(s) = samples.iter_mut().find(|s| s.key() == *cell) else {
            eprintln!("error: --inject-slowdown cell {cell} was not measured in this sweep");
            return ExitCode::FAILURE;
        };
        eprintln!("injecting ×{factor} slowdown into {cell}");
        s.mean_ns *= factor;
    }

    let report = compare(&samples, &baseline, threshold);
    print!("{}", report.render());

    if !check {
        let at_epoch_s = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let line = report.trajectory_line(at_epoch_s, mode);
        let path = repo_path("BENCH_trajectory.jsonl");
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                use std::io::Write;
                writeln!(f, "{line}")
            });
        match appended {
            Ok(()) => eprintln!("appended trajectory entry to {path}"),
            Err(e) => eprintln!("warning: could not append to {path}: {e}"),
        }
    }

    if report.pass() {
        println!(
            "regression gate: PASS ({} cells compared)",
            report.cells.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "regression gate: FAIL ({} of {} cells regressed)",
            report.cells.iter().filter(|c| c.regressed).count(),
            report.cells.len()
        );
        ExitCode::FAILURE
    }
}

fn run_validate_trace(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut min_tracks = 2usize;
    let mut require_spans = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--min-tracks" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_tracks = v,
                None => return usage(),
            },
            "--require-span" => match it.next() {
                Some(v) => require_spans.push(v.clone()),
                None => return usage(),
            },
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };

    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_trace(&text, min_tracks, &require_spans) {
        Ok(summary) => {
            println!(
                "{file}: valid Chrome trace — {} complete events on {} thread tracks, {} span names",
                summary.complete_events,
                summary.thread_tracks,
                summary.span_names.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{file}: INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_validate_decisions(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut require_kinds = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require-kind" => match it.next() {
                Some(v) => require_kinds.push(v.clone()),
                None => return usage(),
            },
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };

    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_decisions(&text, &require_kinds) {
        Ok(summary) => {
            println!(
                "{file}: valid decision log — {} decision(s) across {} kind(s)",
                summary.decisions,
                summary.kinds.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{file}: INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}
