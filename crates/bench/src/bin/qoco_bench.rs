//! `qoco-bench` — operational entry points for the bench harness.
//!
//! Subcommands:
//!
//! * `regressions` — re-run the eval scaling sweep and gate it against the
//!   committed `BENCH_eval.json` baseline (exit 1 on any regressed cell).
//!   `--quick` measures the CI-sized subset; `--check` suppresses all file
//!   writes; otherwise a summary line is appended to
//!   `BENCH_trajectory.jsonl`. `--inject-slowdown CELL=FACTOR` multiplies
//!   one measured cell after the fact — CI uses it to prove the gate trips.
//!   `--attribute` re-runs each regressed cell under the sampling profiler
//!   and names the top frames in the failure message (and the trajectory
//!   line), turning "a cell regressed" into "this phase regressed".
//! * `profile CELL` — run one sweep cell under the sampling profiler and
//!   write folded stacks (or a flamegraph SVG with an `.svg` `--out`).
//!   `profile --diff BASE HEAD` compares two folded files frame by frame.
//! * `validate-trace FILE` — structurally validate an exported Chrome
//!   trace (array or object form), requiring `--min-tracks N` distinct
//!   thread tracks (default 2) and any `--require-span NAME` spans.
//! * `validate-flamegraph FILE` — structurally validate a flamegraph SVG
//!   (frame groups, tooltips, in-canvas rects), requiring any
//!   `--require-frame NAME` frames.
//! * `validate-decisions FILE` — structurally validate the decision-
//!   provenance lines of a `--telemetry` JSONL export (unique positive
//!   ids, string evidence), requiring any `--require-kind NAME` kinds.
//! * `validate-sessions` — the serve-replay correctness gate: drive the
//!   Figure 1 session to completion, then rehydrate from every journal
//!   prefix (every possible `kill -9` point) and require a byte-identical
//!   final report, plus duplicate/out-of-order submission rejection.
//! * `validate-requests` — the request-provenance gate: strictly parse a
//!   serve run's `--access-log` JSONL (a corrupted line fails), then
//!   cross-check its request ids against the `serve.request` spans and
//!   decision records of `--telemetry` exports and the `r=` fields of
//!   `--journal` files. `--require-request ID` additionally demands the
//!   named id reached every layer.
//! * `watch-replay SERIES --rules FILE` — re-evaluate qoco-watch alert
//!   rules offline over the `"type":"sample"` lines of a `--telemetry`
//!   export and print the deterministic alert timeline. `--expect-fire
//!   RULE` / `--expect-resolve RULE` turn it into a CI gate (exit 1 when
//!   the named rule never fired / never resolved).

use std::process::ExitCode;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use qoco_bench::decision_check::validate_decisions;
use qoco_bench::flame_check::validate_flamegraph;
use qoco_bench::profile_cmd::{profile_cell, render_diff, top_frames_line};
use qoco_bench::regressions::{
    baseline_host_parallelism, compare, load_baseline, DEFAULT_THRESHOLD,
};
use qoco_bench::scaling::{scaling_sweep, SweepConfig};
use qoco_bench::trace_check::validate_trace;
use qoco_bench::watch_replay::replay;
use qoco_telemetry::Profile;

fn repo_path(file: &str) -> String {
    format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: qoco-bench regressions [--quick] [--check] [--attribute] [--threshold X] \
         [--baseline FILE] [--inject-slowdown workload/size/engine/threads=FACTOR]\n       \
         qoco-bench profile workload/size/current/threads [--out FILE.folded|FILE.svg] \
         [--interval-us N] [--budget-ms N]\n       \
         qoco-bench profile --diff BASE.folded HEAD.folded [--min-delta PCT]\n       \
         qoco-bench validate-trace FILE [--min-tracks N] [--require-span NAME]...\n       \
         qoco-bench validate-flamegraph FILE [--require-frame NAME]...\n       \
         qoco-bench validate-decisions FILE [--require-kind NAME]...\n       \
         qoco-bench validate-sessions\n       \
         qoco-bench validate-requests --access-log FILE... [--telemetry FILE]... \
         [--journal FILE]... [--require-request ID]...\n       \
         qoco-bench watch-replay SERIES --rules FILE [--expect-fire RULE]... \
         [--expect-resolve RULE]..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("regressions") => run_regressions(&args[1..]),
        Some("profile") => run_profile(&args[1..]),
        Some("validate-trace") => run_validate_trace(&args[1..]),
        Some("validate-flamegraph") => run_validate_flamegraph(&args[1..]),
        Some("validate-decisions") => run_validate_decisions(&args[1..]),
        Some("validate-sessions") => run_validate_sessions(&args[1..]),
        Some("validate-requests") => run_validate_requests(&args[1..]),
        Some("watch-replay") => run_watch_replay(&args[1..]),
        _ => usage(),
    }
}

fn run_validate_sessions(args: &[String]) -> ExitCode {
    if !args.is_empty() {
        return usage();
    }
    match qoco_bench::session_check::validate_sessions() {
        Ok(summary) => {
            println!(
                "serve-replay gate: {} answer(s), {} journal prefix(es) replayed \
                 byte-identically; duplicates and out-of-order submissions bounced",
                summary.answers, summary.prefixes
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: serve-replay gate failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_validate_requests(args: &[String]) -> ExitCode {
    let mut access: Vec<String> = Vec::new();
    let mut telemetry: Vec<String> = Vec::new();
    let mut journals: Vec<String> = Vec::new();
    let mut require: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let bucket = match arg.as_str() {
            "--access-log" => &mut access,
            "--telemetry" => &mut telemetry,
            "--journal" => &mut journals,
            "--require-request" => &mut require,
            _ => return usage(),
        };
        match it.next() {
            Some(v) => bucket.push(v.clone()),
            None => return usage(),
        }
    }

    let read_all = |paths: &[String]| -> Result<Vec<(String, String)>, String> {
        paths
            .iter()
            .map(|p| {
                std::fs::read_to_string(p)
                    .map(|text| (p.clone(), text))
                    .map_err(|e| format!("cannot read {p}: {e}"))
            })
            .collect()
    };
    let outcome = read_all(&access).and_then(|access| {
        let telemetry = read_all(&telemetry)?;
        let journals = read_all(&journals)?;
        qoco_bench::request_check::validate_requests(&access, &telemetry, &journals, &require)
    });
    match outcome {
        Ok(summary) => {
            println!(
                "request-provenance gate: {} access line(s) over {} request id(s); \
                 {} serve.request span(s), {} journal record(s) and {} decision(s) \
                 cross-checked",
                summary.access_lines,
                summary.distinct_ids,
                summary.spans,
                summary.journal_tagged,
                summary.decisions_tagged
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: request-provenance gate failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_watch_replay(args: &[String]) -> ExitCode {
    let mut series = None;
    let mut rules_path = None;
    let mut expect_fire: Vec<String> = Vec::new();
    let mut expect_resolve: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rules" => match it.next() {
                Some(v) => rules_path = Some(v.clone()),
                None => return usage(),
            },
            "--expect-fire" => match it.next() {
                Some(v) => expect_fire.push(v.clone()),
                None => return usage(),
            },
            "--expect-resolve" => match it.next() {
                Some(v) => expect_resolve.push(v.clone()),
                None => return usage(),
            },
            _ if series.is_none() && !arg.starts_with('-') => series = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let (Some(series), Some(rules_path)) = (series, rules_path) else {
        return usage();
    };

    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let outcome = read(&series)
        .and_then(|series_text| Ok((series_text, read(&rules_path)?)))
        .and_then(|(series_text, rules_text)| replay(&series_text, &rules_text));
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", outcome.report);

    let mut failed = false;
    for (expectation, rules, pick) in [
        ("fire", &expect_fire, 0usize),
        ("resolve", &expect_resolve, 1usize),
    ] {
        for rule in rules {
            match outcome.rule_counts(rule) {
                None => {
                    eprintln!("error: --expect-{expectation} names unknown rule `{rule}`");
                    failed = true;
                }
                Some(counts) => {
                    let n = [counts.0, counts.1][pick];
                    if n == 0 {
                        eprintln!(
                            "error: rule `{rule}` was expected to {expectation} but never did"
                        );
                        failed = true;
                    }
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn run_regressions(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut check = false;
    let mut attribute = false;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut baseline_path = repo_path("BENCH_eval.json");
    let mut injections: Vec<(String, f64)> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--attribute" => attribute = true,
            "--threshold" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => threshold = v,
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline_path = v.clone(),
                None => return usage(),
            },
            "--inject-slowdown" => {
                let Some((cell, factor)) = it
                    .next()
                    .and_then(|v| v.split_once('='))
                    .and_then(|(c, f)| f.parse::<f64>().ok().map(|f| (c.to_string(), f)))
                else {
                    return usage();
                };
                injections.push((cell, factor));
            }
            _ => return usage(),
        }
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match load_baseline(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A warning, not a gate: the ±25% threshold absorbs scheduler noise,
    // but not a baseline recorded on a machine with a different core
    // count — flag that so a surprising verdict is interpretable.
    if let Some(recorded) = baseline_host_parallelism(&baseline_text) {
        let local = host_parallelism() as u64;
        if recorded != local {
            eprintln!(
                "warning: baseline was recorded with host_parallelism={recorded}, \
                 this machine has {local}; thread-scaling cells may not be comparable"
            );
        }
    }

    let config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::full()
    };
    let mode = if quick { "quick" } else { "full" };
    eprintln!(
        "measuring {mode} sweep ({} eval sizes × {} thread counts, 2 eval workloads \
         + cleaning_sweep at {} sizes)…",
        config.sizes.len(),
        config.threads.len(),
        config.cleaning_sizes.len()
    );
    let mut samples = scaling_sweep(&config);
    for (cell, factor) in &injections {
        let Some(s) = samples.iter_mut().find(|s| s.key() == *cell) else {
            eprintln!("error: --inject-slowdown cell {cell} was not measured in this sweep");
            return ExitCode::FAILURE;
        };
        eprintln!("injecting ×{factor} slowdown into {cell}");
        s.mean_ns *= factor;
    }

    let report = compare(&samples, &baseline, threshold);
    print!("{}", report.render());

    // Per-phase attribution: re-run each regressed cell under the sampler
    // and name its hottest frames. An injected slowdown only multiplied a
    // recorded mean, so the re-run materializes it as real busy-wait time
    // inside an `inject.slowdown` span — the profile then names the
    // injected phase, which is what CI asserts.
    let mut attribution: Vec<(String, String)> = Vec::new();
    if attribute && !report.pass() {
        for cell in report.regressed_cells() {
            let inject_factor = injections
                .iter()
                .find(|(c, _)| *c == cell.key)
                .map(|(_, f)| *f);
            eprintln!(
                "attributing regression in {} (re-run under sampler)…",
                cell.key
            );
            match profile_cell(
                &cell.key,
                Duration::from_micros(200),
                Duration::from_millis(150),
                inject_factor,
            ) {
                Ok(profile) => {
                    let frames = top_frames_line(&profile, 3);
                    println!(
                        "attribution for {}: top regressed frames: {frames} ({} samples)",
                        cell.key, profile.samples
                    );
                    attribution.push((cell.key.clone(), frames));
                }
                Err(e) => eprintln!("warning: could not attribute {}: {e}", cell.key),
            }
        }
    }

    if !check {
        let at_epoch_s = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let line = report.trajectory_line(at_epoch_s, mode, host_parallelism(), &attribution);
        let path = repo_path("BENCH_trajectory.jsonl");
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                use std::io::Write;
                writeln!(f, "{line}")
            });
        match appended {
            Ok(()) => eprintln!("appended trajectory entry to {path}"),
            Err(e) => eprintln!("warning: could not append to {path}: {e}"),
        }
    }

    if report.pass() {
        println!(
            "regression gate: PASS ({} cells compared)",
            report.cells.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "regression gate: FAIL ({} of {} cells regressed)",
            report.cells.iter().filter(|c| c.regressed).count(),
            report.cells.len()
        );
        ExitCode::FAILURE
    }
}

fn run_profile(args: &[String]) -> ExitCode {
    // diff mode: compare two folded files, no measurement
    if args.first().map(String::as_str) == Some("--diff") {
        let mut min_delta = 0.02f64;
        let mut files: Vec<String> = Vec::new();
        let mut it = args[1..].iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--min-delta" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                    Some(v) => min_delta = v / 100.0,
                    None => return usage(),
                },
                _ if !arg.starts_with('-') => files.push(arg.clone()),
                _ => return usage(),
            }
        }
        let [base_path, head_path] = files.as_slice() else {
            return usage();
        };
        let load = |path: &str| -> Result<Profile, String> {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Profile::parse_folded(&text).map_err(|e| format!("{path}: {e}"))
        };
        match (load(base_path), load(head_path)) {
            (Ok(base), Ok(head)) => {
                print!("{}", render_diff(&base, &head, min_delta));
                ExitCode::SUCCESS
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let mut cell = None;
        let mut out = None;
        let mut interval = Duration::from_micros(200);
        let mut budget = Duration::from_millis(500);
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--out" => match it.next() {
                    Some(v) => out = Some(v.clone()),
                    None => return usage(),
                },
                "--interval-us" => match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => interval = Duration::from_micros(v),
                    None => return usage(),
                },
                "--budget-ms" => match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => budget = Duration::from_millis(v),
                    None => return usage(),
                },
                _ if cell.is_none() && !arg.starts_with('-') => cell = Some(arg.clone()),
                _ => return usage(),
            }
        }
        let Some(cell) = cell else { return usage() };

        eprintln!("profiling {cell} for {budget:?} (sampling every {interval:?})…");
        let profile = match profile_cell(&cell, interval, budget, None) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "captured {} samples ({} dropped); top frames: {}",
            profile.samples,
            profile.dropped,
            top_frames_line(&profile, 3)
        );
        match out {
            Some(path) => {
                let rendered = if path.ends_with(".svg") {
                    profile.flamegraph_svg(&format!("qoco eval cell {cell}"))
                } else {
                    profile.to_folded()
                };
                if let Err(e) = std::fs::write(&path, rendered) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
            }
            None => print!("{}", profile.to_folded()),
        }
        ExitCode::SUCCESS
    }
}

fn run_validate_flamegraph(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut require_frames = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require-frame" => match it.next() {
                Some(v) => require_frames.push(v.clone()),
                None => return usage(),
            },
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };

    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_flamegraph(&text, &require_frames) {
        Ok(summary) => {
            println!(
                "{file}: valid flamegraph — {} frames, {} distinct names",
                summary.frames,
                summary.frame_names.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{file}: INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_validate_trace(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut min_tracks = 2usize;
    let mut require_spans = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--min-tracks" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_tracks = v,
                None => return usage(),
            },
            "--require-span" => match it.next() {
                Some(v) => require_spans.push(v.clone()),
                None => return usage(),
            },
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };

    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_trace(&text, min_tracks, &require_spans) {
        Ok(summary) => {
            println!(
                "{file}: valid Chrome trace — {} complete events on {} thread tracks, {} span names",
                summary.complete_events,
                summary.thread_tracks,
                summary.span_names.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{file}: INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_validate_decisions(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut require_kinds = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require-kind" => match it.next() {
                Some(v) => require_kinds.push(v.clone()),
                None => return usage(),
            },
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };

    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_decisions(&text, &require_kinds) {
        Ok(summary) => {
            println!(
                "{file}: valid decision log — {} decision(s) across {} kind(s)",
                summary.decisions,
                summary.kinds.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{file}: INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}
