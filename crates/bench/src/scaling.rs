//! The size × thread-count eval scaling sweep.
//!
//! Shared by `cargo bench --bench eval` (which writes `BENCH_eval.json` at
//! the repository root) and by the `qoco-bench regressions` gate (which
//! re-runs the sweep and compares it against that committed baseline). Both
//! must measure the exact same cells the same way, which is why the
//! workloads, the adaptive measurement loop, and the JSON rendering live
//! here rather than in the bench binary.

use std::hint::black_box;
use std::time::Instant;

use qoco_data::{tup, Database, Schema};
use qoco_engine::{all_assignments, Assignment, EvalOptions};
use qoco_query::{parse_query, ConjunctiveQuery};

use crate::seed_eval::SeedEval;

/// One measured cell of the sweep.
pub struct Sample {
    /// Workload name (`"selective"` or `"dense"`).
    pub workload: &'static str,
    /// Tuples per relation.
    pub size: usize,
    /// `"seed"` (preserved PR 2 baseline algorithm) or `"current"`.
    pub engine: &'static str,
    /// Thread count the engine was asked for (always 1 for seed).
    pub threads: usize,
    /// Mean wall-clock nanoseconds per evaluation.
    pub mean_ns: f64,
    /// Iterations the adaptive loop settled on.
    pub iters: usize,
    /// Valid assignments the evaluation produced (sanity anchor).
    pub assignments: usize,
}

impl Sample {
    /// `workload/size/engine/threads` — the cell's identity, used to match
    /// measurements against baseline entries.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.workload, self.size, self.engine, self.threads
        )
    }
}

/// Which cells to measure and how long to measure each.
pub struct SweepConfig {
    /// Tuples per relation, per cell.
    pub sizes: Vec<usize>,
    /// Thread counts for the current engine.
    pub threads: Vec<usize>,
    /// Measurement budget per cell (the adaptive loop stops once this much
    /// measured time has accumulated).
    pub budget_ns: u128,
}

impl SweepConfig {
    /// The full grid `cargo bench --bench eval` runs: sizes 1k/4k/16k,
    /// threads 1/2/4/8, 300 ms per cell.
    pub fn full() -> Self {
        SweepConfig {
            sizes: vec![1_000, 4_000, 16_000],
            threads: vec![1, 2, 4, 8],
            budget_ns: 300_000_000,
        }
    }

    /// The CI-sized subset the regression gate runs with `--quick`:
    /// size 1k, threads 1/2, 60 ms per cell.
    pub fn quick() -> Self {
        SweepConfig {
            sizes: vec![1_000],
            threads: vec![1, 2],
            budget_ns: 60_000_000,
        }
    }
}

/// The *dense* workload: `n` tuples per relation, `n / 10` join groups of
/// 10 tuples each, so `Q(x, y) :- A(x, g), B(y, g)` has `10 n` valid
/// assignments. Output-bound: every candidate survives, so this measures
/// shared enumeration costs, not index layout.
pub fn dense_workload(n: usize) -> (Database, ConjunctiveQuery) {
    let schema = Schema::builder()
        .relation("A", &["x", "g"])
        .relation("B", &["y", "g"])
        .build()
        .unwrap();
    let mut db = Database::empty(schema.clone());
    let groups = (n / 10).max(1);
    for i in 0..n {
        db.insert_named("A", tup![format!("a{i:06}"), format!("g{:06}", i % groups)])
            .unwrap();
        db.insert_named("B", tup![format!("b{i:06}"), format!("g{:06}", i % groups)])
            .unwrap();
    }
    let q = parse_query(&schema, "Q(x, y) :- A(x, g), B(y, g).").unwrap();
    (db, q)
}

/// The *selective* workload: `B` mirrors `A` with columns flipped, in join
/// groups of 200. `Q(x) :- A(x, g), B(g, x)` probes `B` on the
/// low-selectivity group column (the first ground column), so every descend
/// walks a 200-tuple posting list of which exactly one candidate survives
/// the bound-`x` check. Probe-bound: this is where the seed's per-descend
/// `to_vec()` + sort + clone-then-check is paid 200× per survivor.
pub fn selective_workload(n: usize) -> (Database, ConjunctiveQuery) {
    let schema = Schema::builder()
        .relation("A", &["x", "g"])
        .relation("B", &["g", "x"])
        .build()
        .unwrap();
    let mut db = Database::empty(schema.clone());
    let groups = (n / 200).max(1);
    for i in 0..n {
        let x = format!("a{i:06}");
        let g = format!("g{:06}", i % groups);
        db.insert_named("A", tup![x.clone(), g.clone()]).unwrap();
        db.insert_named("B", tup![g, x]).unwrap();
    }
    let q = parse_query(&schema, "Q(x) :- A(x, g), B(g, x).").unwrap();
    (db, q)
}

/// Wall-clock mean over an adaptively chosen iteration count: at least 3
/// iterations, stopping once `budget_ns` of measurement have accumulated
/// (capped at 50 iterations).
pub fn measure(budget_ns: u128, mut f: impl FnMut() -> usize) -> (f64, usize) {
    f(); // warm-up (also builds lazy indexes)
    let mut total_ns: u128 = 0;
    let mut iters = 0usize;
    while iters < 3 || (total_ns < budget_ns && iters < 50) {
        let start = Instant::now();
        black_box(f());
        total_ns += start.elapsed().as_nanos();
        iters += 1;
    }
    (total_ns as f64 / iters as f64, iters)
}

type WorkloadFn = fn(usize) -> (Database, ConjunctiveQuery);

/// Run the sweep: for every workload × size, measure the seed engine once
/// (single-threaded — its algorithm predates the parallel path) and the
/// current engine at every configured thread count, asserting both produce
/// identical assignments.
pub fn scaling_sweep(config: &SweepConfig) -> Vec<Sample> {
    let workloads: [(&'static str, WorkloadFn); 2] =
        [("selective", selective_workload), ("dense", dense_workload)];
    let mut samples = Vec::new();
    for (workload, build) in workloads {
        for &n in &config.sizes {
            let (db, q) = build(n);
            let expected = {
                let mut seed = SeedEval::new(&db);
                let baseline = seed.all_assignments(&q);
                let (mean_ns, iters) = {
                    let mut seed = SeedEval::new(&db);
                    measure(config.budget_ns, || seed.all_assignments(&q).len())
                };
                samples.push(Sample {
                    workload,
                    size: n,
                    engine: "seed",
                    threads: 1,
                    mean_ns,
                    iters,
                    assignments: baseline.len(),
                });
                baseline
            };
            for &t in &config.threads {
                let opts = EvalOptions {
                    threads: Some(t),
                    ..EvalOptions::default()
                };
                let res = all_assignments(&q, &db, &Assignment::new(), opts);
                assert_eq!(
                    res.assignments, expected,
                    "engines disagree on {workload} at n={n}, threads={t}"
                );
                let (mean_ns, iters) = measure(config.budget_ns, || {
                    all_assignments(&q, &db, &Assignment::new(), opts)
                        .assignments
                        .len()
                });
                samples.push(Sample {
                    workload,
                    size: n,
                    engine: "current",
                    threads: t,
                    mean_ns,
                    iters,
                    assignments: expected.len(),
                });
            }
        }
    }
    samples
}

/// Render the sweep in the `BENCH_eval.json` document format.
pub fn render_json(samples: &[Sample]) -> String {
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"eval_scaling\",\n");
    out.push_str(
        "  \"workloads\": {\n    \"selective\": \"Q(x) :- A(x, g), B(g, x); groups of 200, one survivor per probe\",\n    \"dense\": \"Q(x, y) :- A(x, g), B(y, g); groups of 10, every candidate survives\"\n  },\n",
    );
    out.push_str(&format!(
        "  \"host_parallelism\": {host_parallelism},\n  \"note\": \"threads > host_parallelism measure determinism-preserving overhead, not speedup\",\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"size\": {}, \"engine\": \"{}\", \"threads\": {}, \"mean_ns\": {:.0}, \"iters\": {}, \"assignments\": {}}}{sep}\n",
            s.workload, s.size, s.engine, s.threads, s.mean_ns, s.iters, s.assignments
        ));
    }
    out.push_str("  ],\n  \"speedup_vs_seed_single_thread\": {\n");
    let keys: Vec<(&'static str, usize)> = {
        let mut v: Vec<(&'static str, usize)> =
            samples.iter().map(|s| (s.workload, s.size)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for (i, &(w, n)) in keys.iter().enumerate() {
        let seed = samples
            .iter()
            .find(|s| s.workload == w && s.size == n && s.engine == "seed")
            .expect("seed sample");
        let cur = samples
            .iter()
            .find(|s| s.workload == w && s.size == n && s.engine == "current" && s.threads == 1)
            .expect("current t=1 sample");
        let sep = if i + 1 == keys.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{w}/{n}\": {:.2}{sep}\n",
            seed.mean_ns / cur.mean_ns
        ));
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_both_workloads_and_renders() {
        let config = SweepConfig {
            sizes: vec![200],
            threads: vec![1],
            budget_ns: 1_000_000,
        };
        let samples = scaling_sweep(&config);
        // 2 workloads × (1 seed + 1 current)
        assert_eq!(samples.len(), 4);
        assert!(samples.iter().all(|s| s.mean_ns > 0.0));
        assert_eq!(samples[0].key(), "selective/200/seed/1");
        let json = render_json(&samples);
        assert!(json.contains("\"bench\": \"eval_scaling\""));
        assert!(json.contains("\"speedup_vs_seed_single_thread\""));
    }
}
