//! The size × thread-count eval scaling sweep.
//!
//! Shared by `cargo bench --bench eval` (which writes `BENCH_eval.json` at
//! the repository root) and by the `qoco-bench regressions` gate (which
//! re-runs the sweep and compares it against that committed baseline). Both
//! must measure the exact same cells the same way, which is why the
//! workloads, the adaptive measurement loop, and the JSON rendering live
//! here rather than in the bench binary.
//!
//! Three workloads: `selective` and `dense` measure one full evaluation;
//! `cleaning_sweep` measures edits — a delete/re-insert cycle over a
//! selective-shaped database, with the answer set maintained either
//! incrementally (`view` engine, [`MaterializedView::apply_edit`] per
//! edit) or by full re-evaluation (`fullre` engine, the pre-view cleaning
//! loop's behaviour). Its `mean_ns` is per *edit*, so `1e9 / mean_ns` is
//! the edits-per-second figure the README quotes.

use std::hint::black_box;
use std::time::Instant;

use qoco_data::{tup, Database, Edit, Fact, Schema};
use qoco_engine::{all_assignments, answer_set, Assignment, EvalOptions, MaterializedView};
use qoco_query::{parse_query, ConjunctiveQuery};

use crate::seed_eval::SeedEval;

/// One measured cell of the sweep.
pub struct Sample {
    /// Workload name (`"selective"`, `"dense"` or `"cleaning_sweep"`).
    pub workload: &'static str,
    /// Tuples per relation.
    pub size: usize,
    /// `"seed"` (preserved PR 2 baseline algorithm) or `"current"` for the
    /// eval workloads; `"view"` (incremental) or `"fullre"` (re-evaluate
    /// after every edit) for `cleaning_sweep`.
    pub engine: &'static str,
    /// Thread count the engine was asked for (always 1 for seed).
    pub threads: usize,
    /// Mean wall-clock nanoseconds per evaluation.
    pub mean_ns: f64,
    /// Iterations the adaptive loop settled on.
    pub iters: usize,
    /// Valid assignments the evaluation produced (sanity anchor).
    pub assignments: usize,
}

impl Sample {
    /// `workload/size/engine/threads` — the cell's identity, used to match
    /// measurements against baseline entries.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.workload, self.size, self.engine, self.threads
        )
    }
}

/// Which cells to measure and how long to measure each.
pub struct SweepConfig {
    /// Tuples per relation, per eval-workload cell.
    pub sizes: Vec<usize>,
    /// Tuples per relation for the `cleaning_sweep` cells (kept separate:
    /// the edit cycle scales to 10⁶ tuples, where the seed eval engine —
    /// measured per full evaluation — would dominate the sweep's runtime).
    pub cleaning_sizes: Vec<usize>,
    /// Thread counts for the current engine.
    pub threads: Vec<usize>,
    /// Measurement budget per cell (the adaptive loop stops once this much
    /// measured time has accumulated).
    pub budget_ns: u128,
}

impl SweepConfig {
    /// The full grid `cargo bench --bench eval` runs: eval sizes
    /// 1k/4k/16k/100k at threads 1/2/4/8, cleaning sizes 1k/100k/1M,
    /// 300 ms per cell.
    pub fn full() -> Self {
        SweepConfig {
            sizes: vec![1_000, 4_000, 16_000, 100_000],
            cleaning_sizes: vec![1_000, 100_000, 1_000_000],
            threads: vec![1, 2, 4, 8],
            budget_ns: 300_000_000,
        }
    }

    /// The CI-sized subset the regression gate runs with `--quick`:
    /// size 1k, threads 1/2, 60 ms per cell. The cleaning size (1k) is
    /// also part of the full grid, so quick cells always have baseline
    /// counterparts.
    pub fn quick() -> Self {
        SweepConfig {
            sizes: vec![1_000],
            cleaning_sizes: vec![1_000],
            threads: vec![1, 2],
            budget_ns: 60_000_000,
        }
    }
}

/// The *dense* workload: `n` tuples per relation, `n / 10` join groups of
/// 10 tuples each, so `Q(x, y) :- A(x, g), B(y, g)` has `10 n` valid
/// assignments. Output-bound: every candidate survives, so this measures
/// shared enumeration costs, not index layout.
pub fn dense_workload(n: usize) -> (Database, ConjunctiveQuery) {
    let schema = Schema::builder()
        .relation("A", &["x", "g"])
        .relation("B", &["y", "g"])
        .build()
        .unwrap();
    let mut db = Database::empty(schema.clone());
    let groups = (n / 10).max(1);
    for i in 0..n {
        db.insert_named("A", tup![format!("a{i:06}"), format!("g{:06}", i % groups)])
            .unwrap();
        db.insert_named("B", tup![format!("b{i:06}"), format!("g{:06}", i % groups)])
            .unwrap();
    }
    let q = parse_query(&schema, "Q(x, y) :- A(x, g), B(y, g).").unwrap();
    (db, q)
}

/// The *selective* workload: `B` mirrors `A` with columns flipped, in join
/// groups of 200. `Q(x) :- A(x, g), B(g, x)` probes `B` on the
/// low-selectivity group column (the first ground column), so every descend
/// walks a 200-tuple posting list of which exactly one candidate survives
/// the bound-`x` check. Probe-bound: this is where the seed's per-descend
/// `to_vec()` + sort + clone-then-check is paid 200× per survivor.
pub fn selective_workload(n: usize) -> (Database, ConjunctiveQuery) {
    let schema = Schema::builder()
        .relation("A", &["x", "g"])
        .relation("B", &["g", "x"])
        .build()
        .unwrap();
    let mut db = Database::empty(schema.clone());
    let groups = (n / 200).max(1);
    for i in 0..n {
        let x = format!("a{i:06}");
        let g = format!("g{:06}", i % groups);
        db.insert_named("A", tup![x.clone(), g.clone()]).unwrap();
        db.insert_named("B", tup![g, x]).unwrap();
    }
    let q = parse_query(&schema, "Q(x) :- A(x, g), B(g, x).").unwrap();
    (db, q)
}

/// Wall-clock mean over an adaptively chosen iteration count: at least 3
/// iterations, stopping once `budget_ns` of measurement have accumulated
/// (capped at 50 iterations).
pub fn measure(budget_ns: u128, mut f: impl FnMut() -> usize) -> (f64, usize) {
    f(); // warm-up (also builds lazy indexes)
    let mut total_ns: u128 = 0;
    let mut iters = 0usize;
    while iters < 3 || (total_ns < budget_ns && iters < 50) {
        let start = Instant::now();
        black_box(f());
        total_ns += start.elapsed().as_nanos();
        iters += 1;
    }
    (total_ns as f64 / iters as f64, iters)
}

/// The facts the `cleaning_sweep` edit cycle touches: the first
/// `min(n, 64)` `A`-facts of the selective workload. Deleting one removes
/// its answer from the view; re-inserting restores it, so every edit is
/// *relevant* — the worst case for incremental maintenance.
pub fn cleaning_cycle_facts(q: &ConjunctiveQuery, n: usize) -> Vec<Fact> {
    let groups = (n / 200).max(1);
    let a = q.schema().rel_id("A").expect("selective workload has A");
    (0..n.min(64))
        .map(|i| Fact::new(a, tup![format!("a{i:06}"), format!("g{:06}", i % groups)]))
        .collect()
}

/// Measure the `cleaning_sweep` cells for one size: a delete/re-insert
/// cycle over [`cleaning_cycle_facts`], timed per edit. The `view` engine
/// pays one [`MaterializedView::apply_edit`] per edit; the `fullre` engine
/// re-runs `answer_set` after every edit (what the cleaning loop did
/// before views). Both engines are checked against a fresh evaluation at
/// the end of their run.
pub fn cleaning_sweep_cells(n: usize, budget_ns: u128) -> Vec<Sample> {
    let (db0, q) = selective_workload(n);
    // Build every index up front (clones inherit them): the first seeded
    // delta otherwise pays a one-time O(n) lazy index build for a column
    // the initial materialization never probed, which at 10⁶ tuples would
    // dominate a 3-iteration mean and misreport the steady-state edit cost.
    db0.ensure_indexes();
    let cycle = cleaning_cycle_facts(&q, n);
    let mut samples = Vec::new();

    // incremental engine: the view absorbs each edit as a delta
    {
        let mut db = db0.clone();
        let mut view = MaterializedView::new(q.clone(), &db);
        let mut step = 0usize;
        let (mean_ns, iters) = measure(budget_ns, || {
            let f = &cycle[(step / 2) % cycle.len()];
            let e = if step.is_multiple_of(2) {
                Edit::delete(f.clone())
            } else {
                Edit::insert(f.clone())
            };
            step += 1;
            db.apply(&e).expect("valid edit");
            view.apply_edit(&db, &e);
            view.len()
        });
        assert_eq!(
            view.answers(),
            answer_set(&q, &db),
            "view diverged from full re-evaluation at n={n}"
        );
        samples.push(Sample {
            workload: "cleaning_sweep",
            size: n,
            engine: "view",
            threads: 1,
            mean_ns,
            iters,
            assignments: view.len(),
        });
    }

    // full re-evaluation engine: the pre-view cleaning loop's behaviour
    {
        let mut db = db0.clone();
        let mut step = 0usize;
        let mut answers = 0usize;
        let (mean_ns, iters) = measure(budget_ns, || {
            let f = &cycle[(step / 2) % cycle.len()];
            let e = if step.is_multiple_of(2) {
                Edit::delete(f.clone())
            } else {
                Edit::insert(f.clone())
            };
            step += 1;
            db.apply(&e).expect("valid edit");
            answers = answer_set(&q, &db).len();
            answers
        });
        samples.push(Sample {
            workload: "cleaning_sweep",
            size: n,
            engine: "fullre",
            threads: 1,
            mean_ns,
            iters,
            assignments: answers,
        });
    }

    samples
}

type WorkloadFn = fn(usize) -> (Database, ConjunctiveQuery);

/// Run the sweep: for every workload × size, measure the seed engine once
/// (single-threaded — its algorithm predates the parallel path) and the
/// current engine at every configured thread count, asserting both produce
/// identical assignments.
pub fn scaling_sweep(config: &SweepConfig) -> Vec<Sample> {
    let workloads: [(&'static str, WorkloadFn); 2] =
        [("selective", selective_workload), ("dense", dense_workload)];
    let mut samples = Vec::new();
    for (workload, build) in workloads {
        for &n in &config.sizes {
            let (db, q) = build(n);
            let expected = {
                let mut seed = SeedEval::new(&db);
                let baseline = seed.all_assignments(&q);
                let (mean_ns, iters) = {
                    let mut seed = SeedEval::new(&db);
                    measure(config.budget_ns, || seed.all_assignments(&q).len())
                };
                samples.push(Sample {
                    workload,
                    size: n,
                    engine: "seed",
                    threads: 1,
                    mean_ns,
                    iters,
                    assignments: baseline.len(),
                });
                baseline
            };
            for &t in &config.threads {
                let opts = EvalOptions {
                    threads: Some(t),
                    ..EvalOptions::default()
                };
                let res = all_assignments(&q, &db, &Assignment::new(), opts);
                assert_eq!(
                    res.assignments, expected,
                    "engines disagree on {workload} at n={n}, threads={t}"
                );
                let (mean_ns, iters) = measure(config.budget_ns, || {
                    all_assignments(&q, &db, &Assignment::new(), opts)
                        .assignments
                        .len()
                });
                samples.push(Sample {
                    workload,
                    size: n,
                    engine: "current",
                    threads: t,
                    mean_ns,
                    iters,
                    assignments: expected.len(),
                });
            }
        }
    }
    for &n in &config.cleaning_sizes {
        samples.extend(cleaning_sweep_cells(n, config.budget_ns));
    }
    samples
}

/// Render the sweep in the `BENCH_eval.json` document format.
pub fn render_json(samples: &[Sample]) -> String {
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"eval_scaling\",\n");
    out.push_str(
        "  \"workloads\": {\n    \"selective\": \"Q(x) :- A(x, g), B(g, x); groups of 200, one survivor per probe\",\n    \"dense\": \"Q(x, y) :- A(x, g), B(y, g); groups of 10, every candidate survives\",\n    \"cleaning_sweep\": \"delete/re-insert cycle over the selective DB; mean_ns is per edit (view = incremental MaterializedView, fullre = full re-evaluation per edit)\"\n  },\n",
    );
    out.push_str(&format!(
        "  \"host_parallelism\": {host_parallelism},\n  \"note\": \"threads > host_parallelism measure determinism-preserving overhead, not speedup\",\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"size\": {}, \"engine\": \"{}\", \"threads\": {}, \"mean_ns\": {:.0}, \"iters\": {}, \"assignments\": {}}}{sep}\n",
            s.workload, s.size, s.engine, s.threads, s.mean_ns, s.iters, s.assignments
        ));
    }
    out.push_str("  ],\n  \"speedup_vs_seed_single_thread\": {\n");
    // keyed off the seed cells: cleaning_sweep has no seed engine, so its
    // (workload, size) pairs never appear here
    let keys: Vec<(&'static str, usize)> = {
        let mut v: Vec<(&'static str, usize)> = samples
            .iter()
            .filter(|s| s.engine == "seed")
            .map(|s| (s.workload, s.size))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for (i, &(w, n)) in keys.iter().enumerate() {
        let seed = samples
            .iter()
            .find(|s| s.workload == w && s.size == n && s.engine == "seed")
            .expect("seed sample");
        let cur = samples
            .iter()
            .find(|s| s.workload == w && s.size == n && s.engine == "current" && s.threads == 1)
            .expect("current t=1 sample");
        let sep = if i + 1 == keys.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{w}/{n}\": {:.2}{sep}\n",
            seed.mean_ns / cur.mean_ns
        ));
    }
    out.push_str("  }");
    // edits/sec advantage of the incremental view per cleaning size
    let cleaning_sizes: Vec<usize> = {
        let mut v: Vec<usize> = samples
            .iter()
            .filter(|s| s.workload == "cleaning_sweep")
            .map(|s| s.size)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    if !cleaning_sizes.is_empty() {
        out.push_str(",\n  \"cleaning_sweep_speedup_view_vs_fullre\": {\n");
        for (i, &n) in cleaning_sizes.iter().enumerate() {
            let cell = |engine: &str| {
                samples
                    .iter()
                    .find(|s| s.workload == "cleaning_sweep" && s.size == n && s.engine == engine)
            };
            let (Some(view), Some(fullre)) = (cell("view"), cell("fullre")) else {
                continue;
            };
            let sep = if i + 1 == cleaning_sizes.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    \"{n}\": {:.2}{sep}\n",
                fullre.mean_ns / view.mean_ns
            ));
        }
        out.push_str("  }");
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_all_workloads_and_renders() {
        let config = SweepConfig {
            sizes: vec![200],
            cleaning_sizes: vec![200],
            threads: vec![1],
            budget_ns: 1_000_000,
        };
        let samples = scaling_sweep(&config);
        // 2 eval workloads × (1 seed + 1 current) + cleaning (view + fullre)
        assert_eq!(samples.len(), 6);
        assert!(samples.iter().all(|s| s.mean_ns > 0.0));
        assert_eq!(samples[0].key(), "selective/200/seed/1");
        assert!(samples
            .iter()
            .any(|s| s.key() == "cleaning_sweep/200/view/1"));
        assert!(samples
            .iter()
            .any(|s| s.key() == "cleaning_sweep/200/fullre/1"));
        let json = render_json(&samples);
        assert!(json.contains("\"bench\": \"eval_scaling\""));
        assert!(json.contains("\"speedup_vs_seed_single_thread\""));
        assert!(json.contains("\"cleaning_sweep_speedup_view_vs_fullre\""));
        // the speedup-vs-seed map must not try to key off cleaning cells
        assert!(!json.contains("\"cleaning_sweep/200\":"));
        assert!(crate::json::Json::parse(&json).is_ok(), "{json}");
    }

    #[test]
    fn cleaning_sweep_cycle_edits_are_relevant_and_checked() {
        let samples = cleaning_sweep_cells(400, 500_000);
        assert_eq!(samples.len(), 2);
        let view = &samples[0];
        let fullre = &samples[1];
        assert_eq!(view.key(), "cleaning_sweep/400/view/1");
        assert_eq!(fullre.key(), "cleaning_sweep/400/fullre/1");
        assert!(view.mean_ns > 0.0 && fullre.mean_ns > 0.0);
        // the cycle facts really are A-facts of the selective workload
        let (db, q) = selective_workload(400);
        for f in cleaning_cycle_facts(&q, 400) {
            assert!(db.contains(&f), "{f:?} not in the workload DB");
        }
    }
}
