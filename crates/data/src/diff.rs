//! Database distance and the evaluation metrics of Section 7.2.
//!
//! * **distance** `|D − D'|`: size of the symmetric difference (Section 3.2;
//!   the paper writes `|D − D'| = |D' − D|` meaning the symmetric difference).
//! * **degree of data cleanliness**: `|D ∩ D_G| / (|D| + |D_G − D|)`.
//! * **noise skewness**: `|D − D_G| / (|D − D_G| + |D_G − D|)` — the share of
//!   the noise that is *false tuples* rather than *missing tuples*.
//!
//! These drive both noise injection (the generators solve for the number of
//! false/missing tuples achieving a target cleanliness and skew) and the
//! monotonicity assertions of Proposition 3.3 inside the cleaners.

use std::collections::HashSet;

use crate::database::Database;
use crate::error::DataError;
use crate::tuple::Fact;

/// A breakdown of how two databases differ.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Facts in `D` but not `D_G` — the *false* tuples.
    pub false_facts: Vec<Fact>,
    /// Facts in `D_G` but not `D` — the *missing* tuples.
    pub missing_facts: Vec<Fact>,
    /// Number of facts in both.
    pub common: usize,
}

impl DiffReport {
    /// `|D − D_G| + |D_G − D|`: the symmetric-difference distance.
    pub fn distance(&self) -> usize {
        self.false_facts.len() + self.missing_facts.len()
    }

    /// Degree of data cleanliness, `|D ∩ D_G| / (|D| + |D_G − D|)`.
    /// Defined as 1.0 for two empty databases.
    pub fn cleanliness(&self) -> f64 {
        let denom = self.common + self.false_facts.len() + self.missing_facts.len();
        if denom == 0 {
            1.0
        } else {
            self.common as f64 / denom as f64
        }
    }

    /// Noise skewness, `|D − D_G| / (|D − D_G| + |D_G − D|)`.
    /// Defined as 1.0 when there is no noise at all (a clean database has
    /// "all of its zero noise" on the false side by convention).
    pub fn skewness(&self) -> f64 {
        let denom = self.distance();
        if denom == 0 {
            1.0
        } else {
            self.false_facts.len() as f64 / denom as f64
        }
    }
}

/// Compute the full diff between `d` and `ground`.
///
/// Errors if the two databases do not share a schema.
pub fn diff(d: &Database, ground: &Database) -> Result<DiffReport, DataError> {
    if !std::sync::Arc::ptr_eq(d.schema(), ground.schema()) && d.schema() != ground.schema() {
        return Err(DataError::SchemaMismatch);
    }
    let d_facts: HashSet<Fact> = d.facts().collect();
    let g_facts: HashSet<Fact> = ground.facts().collect();
    let mut false_facts: Vec<Fact> = d_facts.difference(&g_facts).cloned().collect();
    let mut missing_facts: Vec<Fact> = g_facts.difference(&d_facts).cloned().collect();
    false_facts.sort();
    missing_facts.sort();
    let common = d_facts.intersection(&g_facts).count();
    Ok(DiffReport {
        false_facts,
        missing_facts,
        common,
    })
}

/// `|D − D_G|` symmetric-difference distance (Proposition 3.3's measure).
pub fn distance(d: &Database, ground: &Database) -> Result<usize, DataError> {
    Ok(diff(d, ground)?.distance())
}

/// Degree of data cleanliness of `d` w.r.t. `ground` (Section 7.2).
pub fn cleanliness(d: &Database, ground: &Database) -> Result<f64, DataError> {
    Ok(diff(d, ground)?.cleanliness())
}

/// Noise skewness of `d` w.r.t. `ground` (Section 7.2).
pub fn noise_skewness(d: &Database, ground: &Database) -> Result<f64, DataError> {
    Ok(diff(d, ground)?.skewness())
}

/// Degree of *result* cleanliness (Section 7.2): given the answer sets
/// `Q(D)` and `Q(D_G)` as tuple sets, `|Q(D) ∩ Q(D_G)| / (|Q(D)| +
/// |Q(D_G) − Q(D)|)`.
pub fn result_cleanliness<T: Eq + std::hash::Hash>(
    answers: &HashSet<T>,
    true_answers: &HashSet<T>,
) -> f64 {
    let common = answers.intersection(true_answers).count();
    let missing = true_answers.difference(answers).count();
    let denom = answers.len() + missing;
    if denom == 0 {
        1.0
    } else {
        common as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tup;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder().relation("T", &["a"]).build().unwrap()
    }

    fn db(schema: &Arc<Schema>, vals: &[&str]) -> Database {
        let mut d = Database::empty(schema.clone());
        for v in vals {
            d.insert_named("T", tup![*v]).unwrap();
        }
        d
    }

    #[test]
    fn identical_databases_have_zero_distance() {
        let s = schema();
        let d = db(&s, &["a", "b"]);
        let g = db(&s, &["a", "b"]);
        let r = diff(&d, &g).unwrap();
        assert_eq!(r.distance(), 0);
        assert_eq!(r.cleanliness(), 1.0);
        assert_eq!(r.skewness(), 1.0);
    }

    #[test]
    fn diff_separates_false_and_missing() {
        let s = schema();
        let d = db(&s, &["a", "x"]); // x is false
        let g = db(&s, &["a", "m"]); // m is missing
        let r = diff(&d, &g).unwrap();
        assert_eq!(r.false_facts.len(), 1);
        assert_eq!(r.missing_facts.len(), 1);
        assert_eq!(r.common, 1);
        assert_eq!(r.distance(), 2);
    }

    #[test]
    fn cleanliness_matches_paper_definition() {
        let s = schema();
        // 2 true, 1 false, 1 missing: |D∩DG|=2, |D|=3, |DG−D|=1 → 2/4.
        let d = db(&s, &["a", "b", "x"]);
        let g = db(&s, &["a", "b", "m"]);
        let c = cleanliness(&d, &g).unwrap();
        assert!((c - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skewness_extremes() {
        let s = schema();
        // Only false tuples → skew 1.0.
        let only_false = db(&s, &["a", "x"]);
        let g = db(&s, &["a"]);
        assert_eq!(noise_skewness(&only_false, &g).unwrap(), 1.0);
        // Only missing tuples → skew 0.0.
        let only_missing = db(&s, &["a"]);
        let g2 = db(&s, &["a", "m"]);
        assert_eq!(noise_skewness(&only_missing, &g2).unwrap(), 0.0);
    }

    #[test]
    fn fifty_percent_cleanliness() {
        // "if the data cleanliness is 50%, then the number of true tuples in
        // the dataset is exactly the same as the total number of false and
        // missing tuples" (Section 7.2).
        let s = schema();
        let d = db(&s, &["t1", "t2", "f1"]);
        let g = db(&s, &["t1", "t2", "m1"]);
        // true=2, false=1, missing=1 → 2 = 1+1, cleanliness 0.5.
        assert!((cleanliness(&d, &g).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn result_cleanliness_counts_answers() {
        let a: HashSet<u32> = [1, 2, 3].into();
        let t: HashSet<u32> = [2, 3, 4].into();
        // common=2, |Q(D)|=3, missing=1 → 2/4
        assert!((result_cleanliness(&a, &t) - 0.5).abs() < 1e-12);
        let empty: HashSet<u32> = HashSet::new();
        assert_eq!(result_cleanliness(&empty, &empty), 1.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let s = schema();
        let d = db(&s, &["a", "b"]);
        let g = db(&s, &["b", "c"]);
        assert_eq!(distance(&d, &g).unwrap(), distance(&g, &d).unwrap());
    }

    #[test]
    fn mismatched_schemas_error() {
        let s1 = schema();
        let s2 = Schema::builder().relation("U", &["a"]).build().unwrap();
        let d = Database::empty(s1);
        let g = Database::empty(s2);
        assert_eq!(diff(&d, &g).unwrap_err(), DataError::SchemaMismatch);
    }
}
