//! # qoco-data — relational substrate for QOCO
//!
//! This crate provides the storage layer that the QOCO cleaning algorithms
//! operate over: [`Value`]s, [`Tuple`]s, a relational [`Schema`], indexed
//! in-memory [`Relation`]s collected into a [`Database`], the idempotent
//! [`Edit`] model of the paper (insertion edits `R(ā)+` and deletion edits
//! `R(ā)−`, Section 3.1), and the database-distance / cleanliness metrics
//! used throughout the paper's evaluation (Section 7.2).
//!
//! The paper's model is the *truly open world assumption*: a fact in the
//! dirty database `D` may be true or false, and a fact absent from `D` may be
//! true or false; truth is determined by a ground-truth database `D_G`.
//! Nothing in this crate knows about queries or oracles — it is the pure data
//! substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod database;
pub mod diff;
pub mod edit;
pub mod error;
pub mod io;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use constraints::{ConstraintSet, ForeignKey, KeyConstraint, Violation};
pub use database::Database;
pub use diff::{cleanliness, diff, distance, noise_skewness, result_cleanliness, DiffReport};
pub use edit::{Edit, EditKind, EditLog};
pub use error::DataError;
pub use io::{load_dir, save_dir, IoError};
pub use relation::{Relation, TupleId};
pub use schema::{AttrId, RelId, RelationSchema, Schema, SchemaBuilder};
pub use tuple::{Fact, Tuple};
pub use value::Value;
