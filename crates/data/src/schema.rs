//! Relational schemas.
//!
//! A schema `S = {R_1, …, R_m}` is a finite set of relation symbols with
//! fixed arities (paper Section 2). Schemas are immutable once built and
//! shared (`Arc`) between the dirty database `D` and the ground truth `D_G`,
//! which must agree on relation symbols for edits and distance to make sense.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::DataError;

/// Identifier of a relation within a [`Schema`] (a dense index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(u32);

impl RelId {
    /// Build a `RelId` from a raw index. Mostly useful in tests; real ids
    /// come from [`Schema::rel_id`].
    pub fn from_index(i: usize) -> Self {
        RelId(u32::try_from(i).expect("relation index fits in u32"))
    }

    /// The dense index of this relation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R#{}", self.0)
    }
}

/// Identifier of an attribute (column) position within a relation.
pub type AttrId = usize;

/// The declaration of one relation: name, and named attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attrs: Vec<String>,
}

impl RelationSchema {
    /// Create a relation schema with the given attribute names.
    pub fn new(name: impl Into<String>, attrs: Vec<String>) -> Self {
        RelationSchema {
            name: name.into(),
            attrs,
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attribute names.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Position of a named attribute, if present.
    pub fn attr_index(&self, attr: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a == attr)
    }
}

/// An immutable relational schema shared by all databases of an instance.
#[derive(Debug, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<RelationSchema>,
    by_name: HashMap<String, RelId>,
}

impl Schema {
    /// Start building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the schema declares no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Look up a relation id by name.
    pub fn rel_id(&self, name: &str) -> Result<RelId, DataError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// The declaration of a relation.
    pub fn relation(&self, id: RelId) -> Result<&RelationSchema, DataError> {
        self.relations
            .get(id.index())
            .ok_or(DataError::BadRelId(id))
    }

    /// The name of a relation (panics on a foreign id — ids are only minted
    /// by this schema, so a miss is a logic error).
    pub fn rel_name(&self, id: RelId) -> &str {
        self.relations[id.index()].name()
    }

    /// The arity of a relation.
    pub fn arity(&self, id: RelId) -> usize {
        self.relations[id.index()].arity()
    }

    /// Iterate over `(RelId, &RelationSchema)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSchema)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId::from_index(i), r))
    }

    /// All relation ids in declaration order.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relations.len()).map(RelId::from_index)
    }
}

/// Builder for [`Schema`].
#[derive(Default)]
pub struct SchemaBuilder {
    relations: Vec<RelationSchema>,
    by_name: HashMap<String, RelId>,
    error: Option<DataError>,
}

impl SchemaBuilder {
    /// Declare a relation with named attributes.
    pub fn relation(mut self, name: &str, attrs: &[&str]) -> Self {
        if self.error.is_some() {
            return self;
        }
        if self.by_name.contains_key(name) {
            self.error = Some(DataError::DuplicateRelation(name.to_string()));
            return self;
        }
        let id = RelId::from_index(self.relations.len());
        self.by_name.insert(name.to_string(), id);
        self.relations.push(RelationSchema::new(
            name,
            attrs.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Declare a relation by arity with synthesized attribute names
    /// (`a0 … a{n-1}`), convenient for reduction gadgets and tests.
    pub fn relation_arity(self, name: &str, arity: usize) -> Self {
        let attrs: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
        self.relation(name, &attr_refs)
    }

    /// Finish the schema.
    pub fn build(self) -> Result<Arc<Schema>, DataError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(Arc::new(Schema {
            relations: self.relations,
            by_name: self.by_name,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world_cup_schema() -> Arc<Schema> {
        Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .relation("Players", &["name", "team", "birth_year", "birth_place"])
            .relation("Goals", &["name", "date"])
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id_round_trips() {
        let s = world_cup_schema();
        let games = s.rel_id("Games").unwrap();
        assert_eq!(s.rel_name(games), "Games");
        assert_eq!(s.arity(games), 5);
        assert_eq!(s.relation(games).unwrap().attr_index("stage"), Some(3));
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let s = world_cup_schema();
        assert_eq!(
            s.rel_id("Nope"),
            Err(DataError::UnknownRelation("Nope".to_string()))
        );
    }

    #[test]
    fn duplicate_relation_is_rejected() {
        let r = Schema::builder()
            .relation("A", &["x"])
            .relation("A", &["y"])
            .build();
        assert_eq!(
            r.unwrap_err(),
            DataError::DuplicateRelation("A".to_string())
        );
    }

    #[test]
    fn relation_arity_synthesizes_names() {
        let s = Schema::builder().relation_arity("R", 3).build().unwrap();
        let id = s.rel_id("R").unwrap();
        assert_eq!(s.relation(id).unwrap().attrs(), &["a0", "a1", "a2"]);
    }

    #[test]
    fn iteration_is_in_declaration_order() {
        let s = world_cup_schema();
        let names: Vec<&str> = s.iter().map(|(_, r)| r.name()).collect();
        assert_eq!(names, vec!["Games", "Teams", "Players", "Goals"]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn bad_rel_id_is_reported() {
        let s = world_cup_schema();
        let bogus = RelId::from_index(99);
        assert_eq!(s.relation(bogus), Err(DataError::BadRelId(bogus)));
    }
}
