//! Database instances.
//!
//! A [`Database`] is an instance of a [`Schema`]: one [`Relation`] per
//! declared relation symbol. The dirty database `D` and ground truth `D_G`
//! are both `Database` values sharing an `Arc<Schema>`.

use std::sync::Arc;

use crate::edit::{Edit, EditKind};
use crate::error::DataError;
use crate::relation::Relation;
use crate::schema::{RelId, Schema};
use crate::tuple::{Fact, Tuple};
use crate::value::Value;

/// A database instance over a shared schema.
#[derive(Debug, Clone)]
pub struct Database {
    schema: Arc<Schema>,
    relations: Vec<Relation>,
}

impl Database {
    /// An empty instance of `schema`.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let relations = schema
            .iter()
            .map(|(_, r)| Relation::new(r.arity()))
            .collect();
        Database { schema, relations }
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Total number of facts across all relations.
    pub fn len(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// True if the database holds no facts.
    pub fn is_empty(&self) -> bool {
        self.relations.iter().all(Relation::is_empty)
    }

    /// Immutable access to a relation.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Mutable access to a relation (edits only; the engine's read path
    /// probes indexes through shared borrows).
    pub fn relation_mut(&mut self, id: RelId) -> &mut Relation {
        &mut self.relations[id.index()]
    }

    /// Eagerly build every relation's sorted-id list and column indexes.
    /// Optional warm-up: probes build lazily anyway, but warming before a
    /// parallel evaluation avoids redundant racing index builds.
    pub fn ensure_indexes(&self) {
        for rel in &self.relations {
            rel.ensure_indexes();
        }
    }

    /// A database-wide edit version: the sum of all relation epochs. Moves
    /// whenever any relation is effectively mutated.
    pub fn epoch(&self) -> u64 {
        self.relations.iter().map(Relation::epoch).sum()
    }

    /// Insert a fact after validating arity. Returns whether the database
    /// changed.
    pub fn insert(&mut self, fact: Fact) -> Result<bool, DataError> {
        self.check(&fact)?;
        Ok(self.relations[fact.rel.index()].insert(fact.tuple))
    }

    /// Insert a fact by relation name; convenient for loaders and tests.
    pub fn insert_named(&mut self, rel: &str, tuple: Tuple) -> Result<bool, DataError> {
        let id = self.schema.rel_id(rel)?;
        self.insert(Fact::new(id, tuple))
    }

    /// Remove a fact. Returns whether the database changed.
    pub fn remove(&mut self, fact: &Fact) -> Result<bool, DataError> {
        self.check(fact)?;
        Ok(self.relations[fact.rel.index()].remove(&fact.tuple))
    }

    /// Membership test for a fact.
    pub fn contains(&self, fact: &Fact) -> bool {
        fact.rel.index() < self.relations.len()
            && self.relations[fact.rel.index()].contains(&fact.tuple)
    }

    /// Apply an edit (`D ⊕ e`, Section 3.1). Idempotent: applying an
    /// insertion of a present fact or a deletion of an absent fact is a
    /// no-op. Returns whether the database changed.
    pub fn apply(&mut self, edit: &Edit) -> Result<bool, DataError> {
        match edit.kind {
            EditKind::Insert => self.insert(edit.fact.clone()),
            EditKind::Delete => self.remove(&edit.fact),
        }
    }

    /// Apply a sequence of edits in order (`D ⊕ e_1 ⊕ … ⊕ e_k`).
    pub fn apply_all<'a>(
        &mut self,
        edits: impl IntoIterator<Item = &'a Edit>,
    ) -> Result<usize, DataError> {
        let mut changed = 0;
        for e in edits {
            if self.apply(e)? {
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// Iterate over every fact in the database.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.schema.rel_ids().flat_map(move |id| {
            self.relations[id.index()]
                .iter()
                .map(move |t| Fact::new(id, t.clone()))
        })
    }

    /// Every fact, sorted, for deterministic output.
    pub fn sorted_facts(&self) -> Vec<Fact> {
        let mut v: Vec<Fact> = self.facts().collect();
        v.sort();
        v
    }

    /// All distinct constants appearing anywhere in the database — the
    /// *active domain*, used for systematic enumeration (Proposition 3.4)
    /// and for noise generation.
    pub fn active_domain(&self) -> Vec<Value> {
        let mut dom: Vec<Value> = self
            .facts()
            .flat_map(|f| f.tuple.values().to_vec())
            .collect();
        dom.sort();
        dom.dedup();
        dom
    }

    /// Distinct constants in one column of one relation.
    pub fn column_domain(&self, rel: RelId, col: usize) -> Vec<Value> {
        let mut dom: Vec<Value> = self
            .relation(rel)
            .iter()
            .map(|t| t.values()[col].clone())
            .collect();
        dom.sort();
        dom.dedup();
        dom
    }

    fn check(&self, fact: &Fact) -> Result<(), DataError> {
        let decl = self.schema.relation(fact.rel)?;
        if decl.arity() != fact.tuple.arity() {
            return Err(DataError::ArityMismatch {
                rel: decl.name().to_string(),
                expected: decl.arity(),
                got: fact.tuple.arity(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("Teams", &["country", "continent"])
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .build()
            .unwrap()
    }

    #[test]
    fn insert_and_contains() {
        let mut db = Database::empty(schema());
        assert!(db.insert_named("Teams", tup!["GER", "EU"]).unwrap());
        let id = db.schema().rel_id("Teams").unwrap();
        assert!(db.contains(&Fact::new(id, tup!["GER", "EU"])));
        assert!(!db.contains(&Fact::new(id, tup!["ITA", "EU"])));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn apply_is_idempotent() {
        let mut db = Database::empty(schema());
        let id = db.schema().rel_id("Teams").unwrap();
        let f = Fact::new(id, tup!["GER", "EU"]);
        assert!(db.apply(&Edit::insert(f.clone())).unwrap());
        assert!(!db.apply(&Edit::insert(f.clone())).unwrap());
        assert!(db.apply(&Edit::delete(f.clone())).unwrap());
        assert!(!db.apply(&Edit::delete(f)).unwrap());
        assert!(db.is_empty());
    }

    #[test]
    fn apply_all_counts_effective_edits() {
        let mut db = Database::empty(schema());
        let id = db.schema().rel_id("Teams").unwrap();
        let a = Fact::new(id, tup!["GER", "EU"]);
        let edits = vec![
            Edit::insert(a.clone()),
            Edit::insert(a.clone()), // no-op
            Edit::delete(a),
        ];
        assert_eq!(db.apply_all(&edits).unwrap(), 2);
    }

    #[test]
    fn arity_is_validated() {
        let mut db = Database::empty(schema());
        let err = db.insert_named("Teams", tup!["GER"]).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let mut db = Database::empty(schema());
        assert!(db.insert_named("Nope", tup!["x"]).is_err());
    }

    #[test]
    fn facts_iterates_everything() {
        let mut db = Database::empty(schema());
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        db.insert_named("Teams", tup!["BRA", "SA"]).unwrap();
        db.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        assert_eq!(db.facts().count(), 3);
        assert_eq!(db.sorted_facts().len(), 3);
    }

    #[test]
    fn active_domain_is_sorted_and_deduped() {
        let mut db = Database::empty(schema());
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        db.insert_named("Teams", tup!["ITA", "EU"]).unwrap();
        let dom = db.active_domain();
        assert_eq!(
            dom,
            vec![Value::text("EU"), Value::text("GER"), Value::text("ITA")]
        );
    }

    #[test]
    fn column_domain_projects_one_column() {
        let mut db = Database::empty(schema());
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        db.insert_named("Teams", tup!["ITA", "EU"]).unwrap();
        let id = db.schema().rel_id("Teams").unwrap();
        assert_eq!(db.column_domain(id, 1), vec![Value::text("EU")]);
        assert_eq!(db.column_domain(id, 0).len(), 2);
    }
}
