//! Plain-text persistence: one TSV file per relation.
//!
//! A database saves to a directory with `<relation>.tsv` files. The first
//! line is the header (attribute names); each following line is one tuple.
//! Values round-trip exactly: integers are written as `#<digits>` and text
//! escapes tab, newline, carriage return, backslash and a leading `#`.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use crate::database::Database;
use crate::error::DataError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Errors from loading/saving databases.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(io::Error),
    /// A file's contents do not fit the schema.
    Format {
        /// The offending file.
        file: String,
        /// Line number (1-based).
        line: usize,
        /// Description.
        message: String,
    },
    /// Data-layer failure while rebuilding the database.
    Data(DataError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format {
                file,
                line,
                message,
            } => {
                write!(f, "{file}:{line}: {message}")
            }
            IoError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<DataError> for IoError {
    fn from(e: DataError) -> Self {
        IoError::Data(e)
    }
}

fn encode(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("#{i}"),
        Value::Text(s) => {
            if s.is_empty() {
                // an empty cell in an arity-1 relation would read as an
                // empty (skipped) line; use an explicit marker
                return "\\e".to_string();
            }
            let mut out = String::with_capacity(s.len());
            if s.starts_with('#') {
                out.push('\\');
            }
            for ch in s.chars() {
                match ch {
                    '\t' => out.push_str("\\t"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\\' => out.push_str("\\\\"),
                    other => out.push(other),
                }
            }
            out
        }
    }
}

fn decode(cell: &str) -> Result<Value, String> {
    if let Some(num) = cell.strip_prefix('#') {
        return num
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("bad integer literal `{cell}`"));
    }
    if cell == "\\e" {
        return Ok(Value::text(""));
    }
    let mut out = String::with_capacity(cell.len());
    let mut chars = cell.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some('#') => out.push('#'),
                Some(other) => {
                    // a leading `\#` guard writes `\` + `#…`; other escapes
                    // are errors
                    if out.is_empty() && other == '#' {
                        out.push('#');
                    } else {
                        return Err(format!("bad escape `\\{other}`"));
                    }
                }
                None => return Err("dangling backslash".to_string()),
            }
        } else {
            out.push(ch);
        }
    }
    Ok(Value::text(out))
}

/// Save `db` into `dir` (created if absent), one `<relation>.tsv` each.
pub fn save_dir(db: &Database, dir: &Path) -> Result<(), IoError> {
    fs::create_dir_all(dir)?;
    for (rel, decl) in db.schema().iter() {
        let path = dir.join(format!("{}.tsv", decl.name()));
        let mut file = fs::File::create(&path)?;
        writeln!(file, "{}", decl.attrs().join("\t"))?;
        for tuple in db.relation(rel).sorted() {
            let cells: Vec<String> = tuple.values().iter().map(encode).collect();
            writeln!(file, "{}", cells.join("\t"))?;
        }
    }
    Ok(())
}

/// Load a database over `schema` from a directory written by [`save_dir`].
/// Missing relation files load as empty relations.
pub fn load_dir(schema: std::sync::Arc<Schema>, dir: &Path) -> Result<Database, IoError> {
    let mut db = Database::empty(schema.clone());
    for (rel, decl) in schema.iter() {
        let path = dir.join(format!("{}.tsv", decl.name()));
        if !path.exists() {
            continue;
        }
        let file_label = path.display().to_string();
        let content = fs::read_to_string(&path)?;
        let mut lines = content.lines().enumerate();
        // header (validated loosely: column count must match)
        if let Some((_, header)) = lines.next() {
            let cols = header.split('\t').count();
            if cols != decl.arity() {
                return Err(IoError::Format {
                    file: file_label,
                    line: 1,
                    message: format!(
                        "header has {cols} columns, schema arity is {}",
                        decl.arity()
                    ),
                });
            }
        }
        for (idx, line) in lines {
            if line.is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split('\t').collect();
            if cells.len() != decl.arity() {
                return Err(IoError::Format {
                    file: file_label,
                    line: idx + 1,
                    message: format!(
                        "row has {} cells, schema arity is {}",
                        cells.len(),
                        decl.arity()
                    ),
                });
            }
            let mut values = Vec::with_capacity(cells.len());
            for cell in cells {
                values.push(decode(cell).map_err(|message| IoError::Format {
                    file: file_label.clone(),
                    line: idx + 1,
                    message,
                })?);
            }
            db.insert(crate::tuple::Fact::new(rel, Tuple::new(values)))?;
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("Teams", &["country", "continent"])
            .relation("Players", &["name", "team", "birth_year", "birth_place"])
            .build()
            .unwrap()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qoco-io-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_preserves_facts() {
        let s = schema();
        let mut db = Database::empty(s.clone());
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        db.insert_named("Teams", tup!["BRA", "SA"]).unwrap();
        db.insert_named("Players", tup!["Mario Götze", "GER", 1992, "GER"])
            .unwrap();
        let dir = tmpdir("roundtrip");
        save_dir(&db, &dir).unwrap();
        let loaded = load_dir(s, &dir).unwrap();
        assert_eq!(db.sorted_facts(), loaded.sorted_facts());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tricky_values_round_trip() {
        let s = Schema::builder().relation("T", &["v"]).build().unwrap();
        let mut db = Database::empty(s.clone());
        for v in [
            Value::text("tab\there"),
            Value::text("new\nline"),
            Value::text("back\\slash"),
            Value::text("#leading-hash"),
            Value::text("carriage\rreturn"),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::text(""),
        ] {
            db.insert(crate::tuple::Fact::new(
                s.rel_id("T").unwrap(),
                Tuple::new(vec![v]),
            ))
            .unwrap();
        }
        let dir = tmpdir("tricky");
        save_dir(&db, &dir).unwrap();
        let loaded = load_dir(s, &dir).unwrap();
        assert_eq!(db.sorted_facts(), loaded.sorted_facts());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_files_load_empty() {
        let s = schema();
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        let loaded = load_dir(s, &dir).unwrap();
        assert!(loaded.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn arity_mismatch_is_reported_with_position() {
        let s = schema();
        let dir = tmpdir("badrow");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("Teams.tsv"), "country\tcontinent\nGER\n").unwrap();
        let err = load_dir(s, &dir).unwrap_err();
        match err {
            IoError::Format { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_header_is_reported() {
        let s = schema();
        let dir = tmpdir("badheader");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("Teams.tsv"), "only-one-column\n").unwrap();
        assert!(matches!(
            load_dir(s, &dir),
            Err(IoError::Format { line: 1, .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_integer_is_reported() {
        let s = Schema::builder().relation("T", &["v"]).build().unwrap();
        let dir = tmpdir("badint");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("T.tsv"), "v\n#not-a-number\n").unwrap();
        assert!(matches!(
            load_dir(s, &dir),
            Err(IoError::Format { line: 2, .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn encode_decode_unit() {
        assert_eq!(encode(&Value::Int(5)), "#5");
        assert_eq!(decode("#5").unwrap(), Value::Int(5));
        assert_eq!(
            decode(&encode(&Value::text("#x"))).unwrap(),
            Value::text("#x")
        );
        assert!(decode("\\q").is_err());
        assert!(decode("x\\").is_err());
    }
}
