//! Error type for the data layer.

use std::fmt;

use crate::schema::RelId;

/// Errors raised by the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A relation name was not found in the schema.
    UnknownRelation(String),
    /// A relation id does not belong to this schema.
    BadRelId(RelId),
    /// A tuple's arity does not match its relation's declared arity.
    ArityMismatch {
        /// The relation involved.
        rel: String,
        /// The declared arity.
        expected: usize,
        /// The arity of the offending tuple.
        got: usize,
    },
    /// Two databases were combined that do not share a schema.
    SchemaMismatch,
    /// A relation with this name was declared twice.
    DuplicateRelation(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            DataError::BadRelId(id) => write!(f, "relation id {id:?} not in schema"),
            DataError::ArityMismatch { rel, expected, got } => {
                write!(
                    f,
                    "arity mismatch for `{rel}`: expected {expected}, got {got}"
                )
            }
            DataError::SchemaMismatch => write!(f, "databases do not share a schema"),
            DataError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` declared more than once")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::ArityMismatch {
            rel: "Games".into(),
            expected: 5,
            got: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("Games") && msg.contains('5') && msg.contains('4'));
        assert!(DataError::UnknownRelation("X".into())
            .to_string()
            .contains("X"));
        assert!(DataError::SchemaMismatch.to_string().contains("schema"));
    }
}
