//! Key and foreign-key constraints.
//!
//! The paper's future work (Section 9): "we plan to investigate how
//! constraints such as key and foreign key constraints can be incorporated
//! into our framework. The presence of such constraints will require a more
//! nuanced calculation of the (potential) interactions with the crowd, that
//! take into account the dependencies among tuples and possible constraints
//! violation." This module provides the declarative side — declaring
//! constraints and detecting the violations an edit would introduce; the
//! crowd-interaction side lives in `qoco_core::constrained`.

use std::collections::HashMap;
use std::fmt;

use crate::database::Database;
use crate::edit::{Edit, EditKind};
use crate::schema::RelId;
use crate::tuple::{Fact, Tuple};
use crate::value::Value;

/// A key constraint: no two tuples of `rel` agree on all `key` columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyConstraint {
    /// The constrained relation.
    pub rel: RelId,
    /// The key column positions.
    pub key: Vec<usize>,
}

/// An inclusion dependency: every `(from_rel, from_cols)` projection must
/// appear as a `(to_rel, to_cols)` projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// The referencing relation.
    pub from_rel: RelId,
    /// The referencing columns.
    pub from_cols: Vec<usize>,
    /// The referenced relation.
    pub to_rel: RelId,
    /// The referenced columns.
    pub to_cols: Vec<usize>,
}

/// A constraint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two facts share a key.
    KeyConflict {
        /// The constraint violated.
        rel: RelId,
        /// The new (or first) fact.
        fact: Fact,
        /// The conflicting existing fact.
        existing: Fact,
    },
    /// A referencing fact has no referenced counterpart.
    DanglingReference {
        /// The referencing fact.
        fact: Fact,
        /// The relation that should contain the referenced tuple.
        to_rel: RelId,
        /// The missing referenced key values.
        missing_key: Vec<Value>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::KeyConflict { fact, existing, .. } => {
                write!(f, "key conflict: {fact:?} vs existing {existing:?}")
            }
            Violation::DanglingReference {
                fact,
                to_rel,
                missing_key,
            } => {
                write!(f, "dangling reference from {fact:?}: no {to_rel:?} tuple with key {missing_key:?}")
            }
        }
    }
}

/// A set of declared constraints over one schema.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    keys: Vec<KeyConstraint>,
    fks: Vec<ForeignKey>,
}

impl ConstraintSet {
    /// An empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a key constraint.
    pub fn key(mut self, rel: RelId, key: Vec<usize>) -> Self {
        assert!(!key.is_empty(), "a key needs at least one column");
        self.keys.push(KeyConstraint { rel, key });
        self
    }

    /// Declare a foreign key.
    pub fn foreign_key(
        mut self,
        from_rel: RelId,
        from_cols: Vec<usize>,
        to_rel: RelId,
        to_cols: Vec<usize>,
    ) -> Self {
        assert_eq!(from_cols.len(), to_cols.len(), "column lists must align");
        assert!(
            !from_cols.is_empty(),
            "a foreign key needs at least one column"
        );
        self.fks.push(ForeignKey {
            from_rel,
            from_cols,
            to_rel,
            to_cols,
        });
        self
    }

    /// The declared keys.
    pub fn keys(&self) -> &[KeyConstraint] {
        &self.keys
    }

    /// The declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.fks
    }

    /// All violations in the database as it stands.
    pub fn violations(&self, db: &Database) -> Vec<Violation> {
        let mut out = Vec::new();
        for kc in &self.keys {
            let mut seen: HashMap<Vec<Value>, Tuple> = HashMap::new();
            let mut tuples = db.relation(kc.rel).sorted();
            tuples.sort();
            for t in tuples {
                let kv: Vec<Value> = kc.key.iter().map(|&i| t.values()[i].clone()).collect();
                if let Some(prev) = seen.get(&kv) {
                    out.push(Violation::KeyConflict {
                        rel: kc.rel,
                        fact: Fact::new(kc.rel, t.clone()),
                        existing: Fact::new(kc.rel, prev.clone()),
                    });
                } else {
                    seen.insert(kv, t);
                }
            }
        }
        for fk in &self.fks {
            for t in db.relation(fk.from_rel).sorted() {
                let kv: Vec<Value> = fk
                    .from_cols
                    .iter()
                    .map(|&i| t.values()[i].clone())
                    .collect();
                if !self.referenced_exists(db, fk, &kv) {
                    out.push(Violation::DanglingReference {
                        fact: Fact::new(fk.from_rel, t),
                        to_rel: fk.to_rel,
                        missing_key: kv,
                    });
                }
            }
        }
        out
    }

    /// Violations that applying `edit` to `db` would introduce (beyond any
    /// already present). Checks the edited fact against keys (insert) and
    /// referential integrity in both directions (insert and delete).
    pub fn edit_violations(&self, db: &Database, edit: &Edit) -> Vec<Violation> {
        let mut out = Vec::new();
        match edit.kind {
            EditKind::Insert => {
                if db.contains(&edit.fact) {
                    return out; // idempotent no-op
                }
                for kc in self.keys.iter().filter(|k| k.rel == edit.fact.rel) {
                    let kv: Vec<Value> = kc
                        .key
                        .iter()
                        .map(|&i| edit.fact.tuple.values()[i].clone())
                        .collect();
                    for existing in db.relation(kc.rel).sorted() {
                        let ek: Vec<Value> = kc
                            .key
                            .iter()
                            .map(|&i| existing.values()[i].clone())
                            .collect();
                        if ek == kv {
                            out.push(Violation::KeyConflict {
                                rel: kc.rel,
                                fact: edit.fact.clone(),
                                existing: Fact::new(kc.rel, existing),
                            });
                        }
                    }
                }
                for fk in self.fks.iter().filter(|f| f.from_rel == edit.fact.rel) {
                    let kv: Vec<Value> = fk
                        .from_cols
                        .iter()
                        .map(|&i| edit.fact.tuple.values()[i].clone())
                        .collect();
                    if !self.referenced_exists(db, fk, &kv) {
                        out.push(Violation::DanglingReference {
                            fact: edit.fact.clone(),
                            to_rel: fk.to_rel,
                            missing_key: kv,
                        });
                    }
                }
            }
            EditKind::Delete => {
                if !db.contains(&edit.fact) {
                    return out; // idempotent no-op
                }
                // deleting a referenced tuple can strand referencing ones
                for fk in self.fks.iter().filter(|f| f.to_rel == edit.fact.rel) {
                    let deleted_key: Vec<Value> = fk
                        .to_cols
                        .iter()
                        .map(|&i| edit.fact.tuple.values()[i].clone())
                        .collect();
                    // does another tuple still provide this key?
                    let still_provided = db.relation(fk.to_rel).iter().any(|t| {
                        *t != edit.fact.tuple
                            && fk
                                .to_cols
                                .iter()
                                .zip(&deleted_key)
                                .all(|(&i, v)| &t.values()[i] == v)
                    });
                    if still_provided {
                        continue;
                    }
                    for t in db.relation(fk.from_rel).sorted() {
                        let kv: Vec<Value> = fk
                            .from_cols
                            .iter()
                            .map(|&i| t.values()[i].clone())
                            .collect();
                        if kv == deleted_key {
                            out.push(Violation::DanglingReference {
                                fact: Fact::new(fk.from_rel, t),
                                to_rel: fk.to_rel,
                                missing_key: kv,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    fn referenced_exists(&self, db: &Database, fk: &ForeignKey, key: &[Value]) -> bool {
        db.relation(fk.to_rel).iter().any(|t| {
            fk.to_cols
                .iter()
                .zip(key)
                .all(|(&i, v)| &t.values()[i] == v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tup;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("Teams", &["country", "continent"])
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .build()
            .unwrap()
    }

    fn constraints(s: &Arc<Schema>) -> ConstraintSet {
        let teams = s.rel_id("Teams").unwrap();
        let games = s.rel_id("Games").unwrap();
        ConstraintSet::new()
            .key(teams, vec![0]) // country is a key
            .foreign_key(games, vec![1], teams, vec![0]) // winner references Teams
    }

    #[test]
    fn clean_database_has_no_violations() {
        let s = schema();
        let cs = constraints(&s);
        let mut db = Database::empty(s.clone());
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        db.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        assert!(cs.violations(&db).is_empty());
    }

    #[test]
    fn duplicate_key_is_detected() {
        let s = schema();
        let cs = constraints(&s);
        let mut db = Database::empty(s.clone());
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        db.insert_named("Teams", tup!["GER", "SA"]).unwrap();
        let v = cs.violations(&db);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::KeyConflict { .. }));
    }

    #[test]
    fn dangling_reference_is_detected() {
        let s = schema();
        let cs = constraints(&s);
        let mut db = Database::empty(s.clone());
        db.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        let v = cs.violations(&db);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::DanglingReference { .. }));
    }

    #[test]
    fn insert_edit_violations_are_predicted() {
        let s = schema();
        let cs = constraints(&s);
        let teams = s.rel_id("Teams").unwrap();
        let games = s.rel_id("Games").unwrap();
        let mut db = Database::empty(s.clone());
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        // key conflict: GER already present with another continent
        let e = Edit::insert(Fact::new(teams, tup!["GER", "SA"]));
        assert_eq!(cs.edit_violations(&db, &e).len(), 1);
        // dangling winner
        let e2 = Edit::insert(Fact::new(games, tup!["d", "ITA", "FRA", "Final", "1:0"]));
        assert_eq!(cs.edit_violations(&db, &e2).len(), 1);
        // fine insert
        let e3 = Edit::insert(Fact::new(games, tup!["d", "GER", "FRA", "Final", "1:0"]));
        assert!(cs.edit_violations(&db, &e3).is_empty());
    }

    #[test]
    fn delete_edit_stranding_is_predicted() {
        let s = schema();
        let cs = constraints(&s);
        let teams = s.rel_id("Teams").unwrap();
        let mut db = Database::empty(s.clone());
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        db.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        let e = Edit::delete(Fact::new(teams, tup!["GER", "EU"]));
        let v = cs.edit_violations(&db, &e);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::DanglingReference { .. }));
    }

    #[test]
    fn idempotent_noop_edits_violate_nothing() {
        let s = schema();
        let cs = constraints(&s);
        let teams = s.rel_id("Teams").unwrap();
        let mut db = Database::empty(s.clone());
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        // re-inserting the same fact: no violation
        let e = Edit::insert(Fact::new(teams, tup!["GER", "EU"]));
        assert!(cs.edit_violations(&db, &e).is_empty());
        // deleting an absent fact: no violation
        let e2 = Edit::delete(Fact::new(teams, tup!["ITA", "EU"]));
        assert!(cs.edit_violations(&db, &e2).is_empty());
    }

    #[test]
    fn delete_with_surviving_provider_is_fine() {
        // composite "provider" situation: two Teams rows share the key
        // column value only if the key is (country, continent)
        let s = schema();
        let teams = s.rel_id("Teams").unwrap();
        let games = s.rel_id("Games").unwrap();
        let cs = ConstraintSet::new().foreign_key(games, vec![1], teams, vec![0]);
        let mut db = Database::empty(s.clone());
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        db.insert_named("Teams", tup!["GER", "EU-WEST"]).unwrap();
        db.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        let e = Edit::delete(Fact::new(teams, tup!["GER", "EU"]));
        assert!(
            cs.edit_violations(&db, &e).is_empty(),
            "the other GER row still provides"
        );
    }

    #[test]
    fn violation_display() {
        let s = schema();
        let teams = s.rel_id("Teams").unwrap();
        let v = Violation::KeyConflict {
            rel: teams,
            fact: Fact::new(teams, tup!["GER", "SA"]),
            existing: Fact::new(teams, tup!["GER", "EU"]),
        };
        assert!(v.to_string().contains("key conflict"));
        let d = Violation::DanglingReference {
            fact: Fact::new(teams, tup!["GER", "EU"]),
            to_rel: teams,
            missing_key: vec![Value::text("GER")],
        };
        assert!(d.to_string().contains("dangling"));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_key_panics() {
        let s = schema();
        let teams = s.rel_id("Teams").unwrap();
        let _ = ConstraintSet::new().key(teams, vec![]);
    }
}
