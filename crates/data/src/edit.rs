//! Database edits.
//!
//! The paper's update model (Section 3.1): an insertion edit `R(ā)+` inserts
//! tuple `ā` into relation `R`; a deletion edit `R(ā)−` removes it. Updates
//! are modelled as deletion followed by insertion. Edits are *idempotent*:
//! `D ⊕ R(ā)+ = D` when `R(ā) ∈ D`, and symmetrically for deletion.

use std::fmt;

use crate::tuple::Fact;

/// The polarity of an edit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EditKind {
    /// Insertion edit `R(ā)+`.
    Insert,
    /// Deletion edit `R(ā)−`.
    Delete,
}

/// A single database edit.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Edit {
    /// Whether the fact is inserted or deleted.
    pub kind: EditKind,
    /// The fact being inserted or deleted.
    pub fact: Fact,
}

impl Edit {
    /// An insertion edit `R(ā)+`.
    pub fn insert(fact: Fact) -> Self {
        Edit {
            kind: EditKind::Insert,
            fact,
        }
    }

    /// A deletion edit `R(ā)−`.
    pub fn delete(fact: Fact) -> Self {
        Edit {
            kind: EditKind::Delete,
            fact,
        }
    }

    /// The edit that undoes this one.
    pub fn inverse(&self) -> Edit {
        Edit {
            kind: match self.kind {
                EditKind::Insert => EditKind::Delete,
                EditKind::Delete => EditKind::Insert,
            },
            fact: self.fact.clone(),
        }
    }
}

impl fmt::Debug for Edit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = match self.kind {
            EditKind::Insert => "+",
            EditKind::Delete => "-",
        };
        write!(f, "{:?}{}", self.fact, sign)
    }
}

/// An append-only log of the edits a cleaning session applied, in order.
///
/// The cleaners report this so callers can audit exactly how the dirty
/// database was changed (the paper's output is "a sequence of edits
/// `e_1, …, e_k`", Problem 3.2).
#[derive(Clone, Debug, Default)]
pub struct EditLog {
    edits: Vec<Edit>,
}

impl EditLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an edit.
    pub fn push(&mut self, e: Edit) {
        self.edits.push(e);
    }

    /// Append all edits of another log.
    pub fn extend(&mut self, other: EditLog) {
        self.edits.extend(other.edits);
    }

    /// The edits in application order.
    pub fn edits(&self) -> &[Edit] {
        &self.edits
    }

    /// Number of edits.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// True if no edits were applied.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Count of insertion edits.
    pub fn insertions(&self) -> usize {
        self.edits
            .iter()
            .filter(|e| e.kind == EditKind::Insert)
            .count()
    }

    /// Count of deletion edits.
    pub fn deletions(&self) -> usize {
        self.edits
            .iter()
            .filter(|e| e.kind == EditKind::Delete)
            .count()
    }
}

impl IntoIterator for EditLog {
    type Item = Edit;
    type IntoIter = std::vec::IntoIter<Edit>;
    fn into_iter(self) -> Self::IntoIter {
        self.edits.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelId;
    use crate::tup;

    fn fact(s: &str) -> Fact {
        Fact::new(RelId::from_index(0), tup![s])
    }

    #[test]
    fn inverse_flips_kind() {
        let e = Edit::insert(fact("a"));
        assert_eq!(e.inverse().kind, EditKind::Delete);
        assert_eq!(e.inverse().inverse(), e);
    }

    #[test]
    fn log_counts_by_kind() {
        let mut log = EditLog::new();
        log.push(Edit::insert(fact("a")));
        log.push(Edit::delete(fact("b")));
        log.push(Edit::delete(fact("c")));
        assert_eq!(log.len(), 3);
        assert_eq!(log.insertions(), 1);
        assert_eq!(log.deletions(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn log_extend_preserves_order() {
        let mut a = EditLog::new();
        a.push(Edit::insert(fact("1")));
        let mut b = EditLog::new();
        b.push(Edit::delete(fact("2")));
        a.extend(b);
        let kinds: Vec<EditKind> = a.edits().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EditKind::Insert, EditKind::Delete]);
    }

    #[test]
    fn debug_rendering_uses_signs() {
        assert!(format!("{:?}", Edit::insert(fact("a"))).ends_with('+'));
        assert!(format!("{:?}", Edit::delete(fact("a"))).ends_with('-'));
    }
}
