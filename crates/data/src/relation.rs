//! Indexed in-memory relations.
//!
//! A [`Relation`] stores a set of [`Tuple`]s plus lazily-built per-column
//! hash indexes. The query engine's backtracking join probes these indexes
//! with `(column, value)` keys; the cleaning algorithms mutate relations
//! through edits, which invalidates the indexes (they are rebuilt on the
//! next probe). At the paper's scale (2 k–5 k tuples) a full rebuild is
//! microseconds, and correctness under interleaved reads/edits stays simple.

use std::collections::{HashMap, HashSet};

use crate::tuple::Tuple;
use crate::value::Value;

/// A set of tuples of a fixed arity with lazy per-column indexes.
#[derive(Debug, Default, Clone)]
pub struct Relation {
    tuples: HashSet<Tuple>,
    /// `indexes[col][value]` = tuples whose `col`-th value equals `value`.
    /// Rebuilt lazily; `None` means stale.
    indexes: Vec<Option<HashMap<Value, Vec<Tuple>>>>,
    arity: usize,
}

impl Relation {
    /// Create an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            tuples: HashSet::new(),
            indexes: vec![None; arity],
            arity,
        }
    }

    /// The declared arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Insert a tuple. Returns `true` if the relation changed
    /// (idempotent-edit semantics of Section 3.1).
    ///
    /// # Panics
    /// Panics if the tuple's arity differs from the relation's; arity is
    /// validated at the [`Database`](crate::Database) boundary, so a
    /// mismatch here is a logic error.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.arity(),
            self.arity,
            "tuple arity must match relation arity"
        );
        let changed = self.tuples.insert(t);
        if changed {
            self.invalidate();
        }
        changed
    }

    /// Remove a tuple. Returns `true` if the relation changed.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let changed = self.tuples.remove(t);
        if changed {
            self.invalidate();
        }
        changed
    }

    /// Iterate over all tuples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// All tuples, sorted, for deterministic output.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }

    /// Tuples whose `col`-th value equals `value`, via the (lazily rebuilt)
    /// column index. Returns an empty slice if no tuple matches.
    pub fn probe(&mut self, col: usize, value: &Value) -> &[Tuple] {
        assert!(
            col < self.arity,
            "column {col} out of range for arity {}",
            self.arity
        );
        if self.indexes[col].is_none() {
            let mut idx: HashMap<Value, Vec<Tuple>> = HashMap::new();
            for t in &self.tuples {
                idx.entry(t.values()[col].clone())
                    .or_default()
                    .push(t.clone());
            }
            self.indexes[col] = Some(idx);
        }
        self.indexes[col]
            .as_ref()
            .expect("just built")
            .get(value)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Estimated number of distinct values in a column (builds the index).
    pub fn distinct_in_column(&mut self, col: usize) -> usize {
        self.probe(col, &Value::int(i64::MIN)); // force index build
        self.indexes[col].as_ref().map(|m| m.len()).unwrap_or(0)
    }

    fn invalidate(&mut self) {
        for idx in &mut self.indexes {
            *idx = None;
        }
    }
}

impl FromIterator<Tuple> for Relation {
    /// Build a relation from tuples; the arity is taken from the first
    /// tuple (0 if empty).
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map(|t| t.arity()).unwrap_or(0);
        let mut rel = Relation::new(arity);
        for t in it {
            rel.insert(t);
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    #[test]
    fn insert_is_idempotent() {
        let mut r = Relation::new(2);
        assert!(r.insert(tup!["ESP", "EU"]));
        assert!(!r.insert(tup!["ESP", "EU"]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_is_idempotent() {
        let mut r = Relation::new(1);
        r.insert(tup!["x"]);
        assert!(r.remove(&tup!["x"]));
        assert!(!r.remove(&tup!["x"]));
        assert!(r.is_empty());
    }

    #[test]
    fn probe_finds_matching_tuples() {
        let mut r = Relation::new(2);
        r.insert(tup!["GER", "EU"]);
        r.insert(tup!["ESP", "EU"]);
        r.insert(tup!["BRA", "SA"]);
        let eu = r.probe(1, &Value::text("EU"));
        assert_eq!(eu.len(), 2);
        let sa = r.probe(1, &Value::text("SA"));
        assert_eq!(sa.len(), 1);
        assert_eq!(sa[0], tup!["BRA", "SA"]);
        assert!(r.probe(0, &Value::text("ITA")).is_empty());
    }

    #[test]
    fn probe_sees_mutations() {
        let mut r = Relation::new(2);
        r.insert(tup!["GER", "EU"]);
        assert_eq!(r.probe(1, &Value::text("EU")).len(), 1);
        r.insert(tup!["ITA", "EU"]);
        assert_eq!(r.probe(1, &Value::text("EU")).len(), 2);
        r.remove(&tup!["GER", "EU"]);
        assert_eq!(r.probe(1, &Value::text("EU")).len(), 1);
    }

    #[test]
    fn distinct_counts_column_values() {
        let mut r = Relation::new(2);
        r.insert(tup!["a", "x"]);
        r.insert(tup!["b", "x"]);
        r.insert(tup!["c", "y"]);
        assert_eq!(r.distinct_in_column(0), 3);
        assert_eq!(r.distinct_in_column(1), 2);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new(1);
        r.insert(tup!["b"]);
        r.insert(tup!["a"]);
        assert_eq!(r.sorted(), vec![tup!["a"], tup!["b"]]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(tup!["only-one"]);
    }

    #[test]
    fn from_iterator_infers_arity() {
        let r: Relation = vec![tup![1, 2], tup![3, 4]].into_iter().collect();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
    }
}
