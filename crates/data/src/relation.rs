//! Indexed in-memory relations.
//!
//! A [`Relation`] stores its tuples in an append-only **arena** and serves
//! the query engine through per-column **posting lists** of [`TupleId`]s.
//! Posting lists are kept *pre-sorted by tuple order*, so the engine's
//! backtracking join consumes them directly — no per-probe clone, no
//! per-descend sort. Indexes are built lazily behind [`std::sync::OnceLock`]
//! cells, which makes [`Relation::probe`] a shared-borrow (`&self`)
//! operation that is safe to call from many evaluation threads at once.
//!
//! Every mutation bumps an **edit epoch**. Index cells that are already
//! built are maintained *in place* — a single insert or delete touches one
//! slot of the sorted-id list and one posting per built column index
//! (binary search by tuple order), so an edit costs O(log n) per index
//! instead of an O(n) rebuild on the next read. This is what makes the
//! engine's incremental materialized views cheap: without it every
//! post-edit delta probe would pay a full index rebuild. Unbuilt cells stay
//! unbuilt. Deletions tombstone arena slots; when tombstones outnumber
//! live tuples the arena compacts and *then* the cells reset, because
//! compaction reassigns `TupleId`s (safe: the engine never holds ids
//! across an edit).

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::tuple::Tuple;
use crate::value::Value;

/// A handle to a tuple slot in a relation's arena.
///
/// Valid only until the next mutation of the owning relation: edits may
/// tombstone or compact slots. Resolve with [`Relation::tuple`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId(u32);

impl TupleId {
    /// The arena slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set of tuples of a fixed arity backed by a tuple arena with pre-sorted
/// per-column posting lists.
#[derive(Debug, Default, Clone)]
pub struct Relation {
    /// Tuple arena; `live[i]` distinguishes live slots from tombstones.
    arena: Vec<Tuple>,
    live: Vec<bool>,
    /// Membership and dedup: tuple → its live arena slot. `Tuple` clones are
    /// O(1) (`Arc` payload), so the key adds no deep copy.
    ids: HashMap<Tuple, TupleId>,
    live_count: usize,
    /// Bumped on every effective mutation; see [`Relation::epoch`].
    epoch: u64,
    /// Live ids sorted by tuple order; rebuilt lazily after mutations.
    sorted_ids: OnceLock<Vec<TupleId>>,
    /// `indexes[col][value]` = ids of live tuples whose `col`-th value is
    /// `value`, in tuple-sorted order. Rebuilt lazily after mutations.
    indexes: Vec<OnceLock<HashMap<Value, Vec<TupleId>>>>,
    arity: usize,
}

impl Relation {
    /// Create an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arena: Vec::new(),
            live: Vec::new(),
            ids: HashMap::new(),
            live_count: 0,
            epoch: 0,
            sorted_ids: OnceLock::new(),
            indexes: (0..arity).map(|_| OnceLock::new()).collect(),
            arity,
        }
    }

    /// The declared arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (live) tuples.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.ids.contains_key(t)
    }

    /// The edit epoch: bumped on every effective insert/remove. Readers can
    /// cache derived state keyed by `(relation, epoch)` and know it is
    /// stale exactly when the epoch moved.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Insert a tuple. Returns `true` if the relation changed
    /// (idempotent-edit semantics of Section 3.1).
    ///
    /// # Panics
    /// Panics if the tuple's arity differs from the relation's; arity is
    /// validated at the [`Database`](crate::Database) boundary, so a
    /// mismatch here is a logic error.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.arity(),
            self.arity,
            "tuple arity must match relation arity"
        );
        if self.ids.contains_key(&t) {
            return false;
        }
        let id = TupleId(u32::try_from(self.arena.len()).expect("relation exceeds u32 slots"));
        self.arena.push(t.clone());
        self.live.push(true);
        self.ids.insert(t, id);
        self.live_count += 1;
        self.epoch += 1;
        self.index_insert(id);
        true
    }

    /// Remove a tuple. Returns `true` if the relation changed.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let Some(id) = self.ids.remove(t) else {
            return false;
        };
        self.index_remove(id);
        self.live[id.index()] = false;
        self.live_count -= 1;
        self.epoch += 1;
        self.maybe_compact();
        true
    }

    /// Iterate over all live tuples in arena (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.arena
            .iter()
            .zip(self.live.iter())
            .filter_map(|(t, &alive)| alive.then_some(t))
    }

    /// All tuples, sorted, for deterministic output.
    pub fn sorted(&self) -> Vec<Tuple> {
        self.sorted_ids()
            .iter()
            .map(|&id| self.arena[id.index()].clone())
            .collect()
    }

    /// Resolve a [`TupleId`] returned by [`probe`](Relation::probe) or
    /// [`sorted_ids`](Relation::sorted_ids).
    ///
    /// # Panics
    /// Panics if the id does not refer to a live slot (stale ids across
    /// mutations are a logic error).
    #[inline]
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        debug_assert!(self.live[id.index()], "stale TupleId used after an edit");
        &self.arena[id.index()]
    }

    /// All live tuple ids in tuple-sorted order (lazily rebuilt after
    /// mutations). The backbone of every posting list, and the engine's
    /// full-scan path.
    pub fn sorted_ids(&self) -> &[TupleId] {
        self.sorted_ids.get_or_init(|| {
            let mut ids: Vec<TupleId> = self
                .live
                .iter()
                .enumerate()
                .filter_map(|(i, &alive)| alive.then_some(TupleId(i as u32)))
                .collect();
            ids.sort_unstable_by(|a, b| self.arena[a.index()].cmp(&self.arena[b.index()]));
            ids
        })
    }

    /// Ids of tuples whose `col`-th value equals `value`, in tuple-sorted
    /// order, via the (lazily rebuilt) posting list. Returns an empty slice
    /// if no tuple matches. Shared borrow: safe to call concurrently from
    /// parallel evaluation threads.
    pub fn probe(&self, col: usize, value: &Value) -> &[TupleId] {
        assert!(
            col < self.arity,
            "column {col} out of range for arity {}",
            self.arity
        );
        let posting = self
            .index(col)
            .get(value)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        if !posting.is_empty() {
            qoco_telemetry::counter_add("eval.probe_hits", 1);
        }
        posting
    }

    /// Length of the posting list for `value` in `col` — the exact number
    /// of live tuples matching it. Unlike [`probe`](Relation::probe) this
    /// does **not** bump the `eval.probe_hits` counter: it exists for the
    /// planner's cardinality estimates and the semi-join pre-filter, which
    /// are bookkeeping, not data access.
    pub fn posting_len(&self, col: usize, value: &Value) -> usize {
        assert!(
            col < self.arity,
            "column {col} out of range for arity {}",
            self.arity
        );
        self.index(col).get(value).map(|v| v.len()).unwrap_or(0)
    }

    /// Like [`probe`](Relation::probe), but resolving ids to tuples.
    pub fn probe_tuples<'a>(
        &'a self,
        col: usize,
        value: &Value,
    ) -> impl Iterator<Item = &'a Tuple> {
        self.probe(col, value).iter().map(|&id| self.tuple(id))
    }

    /// Number of distinct values in a column (builds that column's index
    /// directly — no sentinel probe).
    pub fn distinct_in_column(&self, col: usize) -> usize {
        assert!(
            col < self.arity,
            "column {col} out of range for arity {}",
            self.arity
        );
        self.index(col).len()
    }

    /// Eagerly build the sorted-id list and every column index. Called
    /// before fanning evaluation out across threads so workers don't race
    /// to (redundantly) initialize the same `OnceLock` cells.
    pub fn ensure_indexes(&self) {
        self.sorted_ids();
        for col in 0..self.arity {
            self.index(col);
        }
    }

    fn index(&self, col: usize) -> &HashMap<Value, Vec<TupleId>> {
        self.indexes[col].get_or_init(|| {
            qoco_telemetry::counter_add("eval.index_rebuilds", 1);
            let mut idx: HashMap<Value, Vec<TupleId>> = HashMap::new();
            // Iterating ids in tuple-sorted order makes every posting list
            // sorted by construction.
            for &id in self.sorted_ids() {
                idx.entry(self.arena[id.index()].values()[col].clone())
                    .or_default()
                    .push(id);
            }
            idx
        })
    }

    /// Splice a freshly inserted tuple into every *built* index cell.
    /// Unbuilt cells are left alone — they materialize lazily from the
    /// arena and need no maintenance. Postings stay tuple-sorted because
    /// the insertion point comes from a binary search by tuple order.
    fn index_insert(&mut self, id: TupleId) {
        let Relation {
            arena,
            sorted_ids,
            indexes,
            ..
        } = self;
        let t = &arena[id.index()];
        if let Some(ids) = sorted_ids.get_mut() {
            let pos = ids
                .binary_search_by(|probe| arena[probe.index()].cmp(t))
                .unwrap_or_else(|p| p);
            ids.insert(pos, id);
        }
        for (col, cell) in indexes.iter_mut().enumerate() {
            if let Some(idx) = cell.get_mut() {
                let posting = idx.entry(t.values()[col].clone()).or_default();
                let pos = posting
                    .binary_search_by(|probe| arena[probe.index()].cmp(t))
                    .unwrap_or_else(|p| p);
                posting.insert(pos, id);
            }
        }
    }

    /// Remove a still-live tuple from every *built* index cell. Emptied
    /// postings are dropped so `distinct_in_column` and zero-length
    /// [`posting_len`](Relation::posting_len) checks stay exact.
    fn index_remove(&mut self, id: TupleId) {
        let Relation {
            arena,
            sorted_ids,
            indexes,
            ..
        } = self;
        let t = &arena[id.index()];
        if let Some(ids) = sorted_ids.get_mut() {
            if let Ok(pos) = ids.binary_search_by(|probe| arena[probe.index()].cmp(t)) {
                ids.remove(pos);
            }
        }
        for (col, cell) in indexes.iter_mut().enumerate() {
            if let Some(idx) = cell.get_mut() {
                let v = &t.values()[col];
                if let Some(posting) = idx.get_mut(v) {
                    if let Ok(pos) = posting.binary_search_by(|probe| arena[probe.index()].cmp(t)) {
                        posting.remove(pos);
                    }
                    if posting.is_empty() {
                        idx.remove(v);
                    }
                }
            }
        }
    }

    /// Reclaim tombstoned slots once they outnumber live tuples. Ids are
    /// reassigned, so every built index cell resets here (the one place
    /// in-place maintenance cannot survive); callers never hold ids across
    /// a `&mut` operation.
    fn maybe_compact(&mut self) {
        let dead = self.arena.len() - self.live_count;
        if dead <= 64 || dead <= self.live_count {
            return;
        }
        self.sorted_ids = OnceLock::new();
        for cell in &mut self.indexes {
            *cell = OnceLock::new();
        }
        let mut arena = Vec::with_capacity(self.live_count);
        for (t, &alive) in self.arena.iter().zip(self.live.iter()) {
            if alive {
                arena.push(t.clone());
            }
        }
        self.ids = arena
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), TupleId(i as u32)))
            .collect();
        self.live = vec![true; arena.len()];
        self.arena = arena;
    }
}

impl FromIterator<Tuple> for Relation {
    /// Build a relation from tuples; the arity is taken from the first
    /// tuple (0 if empty).
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map(|t| t.arity()).unwrap_or(0);
        let mut rel = Relation::new(arity);
        for t in it {
            rel.insert(t);
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    #[test]
    fn insert_is_idempotent() {
        let mut r = Relation::new(2);
        assert!(r.insert(tup!["ESP", "EU"]));
        assert!(!r.insert(tup!["ESP", "EU"]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_is_idempotent() {
        let mut r = Relation::new(1);
        r.insert(tup!["x"]);
        assert!(r.remove(&tup!["x"]));
        assert!(!r.remove(&tup!["x"]));
        assert!(r.is_empty());
    }

    #[test]
    fn probe_finds_matching_tuples() {
        let mut r = Relation::new(2);
        r.insert(tup!["GER", "EU"]);
        r.insert(tup!["ESP", "EU"]);
        r.insert(tup!["BRA", "SA"]);
        let eu: Vec<&Tuple> = r.probe_tuples(1, &Value::text("EU")).collect();
        assert_eq!(eu.len(), 2);
        let sa: Vec<&Tuple> = r.probe_tuples(1, &Value::text("SA")).collect();
        assert_eq!(sa.len(), 1);
        assert_eq!(*sa[0], tup!["BRA", "SA"]);
        assert!(r.probe(0, &Value::text("ITA")).is_empty());
    }

    #[test]
    fn probe_sees_mutations() {
        let mut r = Relation::new(2);
        r.insert(tup!["GER", "EU"]);
        assert_eq!(r.probe(1, &Value::text("EU")).len(), 1);
        r.insert(tup!["ITA", "EU"]);
        assert_eq!(r.probe(1, &Value::text("EU")).len(), 2);
        r.remove(&tup!["GER", "EU"]);
        assert_eq!(r.probe(1, &Value::text("EU")).len(), 1);
    }

    #[test]
    fn posting_lists_are_tuple_sorted() {
        let mut r = Relation::new(2);
        r.insert(tup!["c", "k"]);
        r.insert(tup!["a", "k"]);
        r.insert(tup!["b", "k"]);
        let tuples: Vec<Tuple> = r.probe_tuples(1, &Value::text("k")).cloned().collect();
        assert_eq!(tuples, vec![tup!["a", "k"], tup!["b", "k"], tup!["c", "k"]]);
        assert_eq!(r.sorted(), tuples);
    }

    #[test]
    fn epoch_moves_on_effective_mutations_only() {
        let mut r = Relation::new(1);
        let e0 = r.epoch();
        r.insert(tup!["x"]);
        let e1 = r.epoch();
        assert!(e1 > e0);
        r.insert(tup!["x"]); // no-op
        assert_eq!(r.epoch(), e1);
        r.remove(&tup!["missing"]); // no-op
        assert_eq!(r.epoch(), e1);
        r.remove(&tup!["x"]);
        assert!(r.epoch() > e1);
    }

    #[test]
    fn distinct_counts_column_values() {
        let mut r = Relation::new(2);
        r.insert(tup!["a", "x"]);
        r.insert(tup!["b", "x"]);
        r.insert(tup!["c", "y"]);
        assert_eq!(r.distinct_in_column(0), 3);
        assert_eq!(r.distinct_in_column(1), 2);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new(1);
        r.insert(tup!["b"]);
        r.insert(tup!["a"]);
        assert_eq!(r.sorted(), vec![tup!["a"], tup!["b"]]);
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut r = Relation::new(1);
        for i in 0..200i64 {
            r.insert(tup![i]);
        }
        for i in 0..150i64 {
            r.remove(&tup![i]);
        }
        assert_eq!(r.len(), 50);
        let expected: Vec<Tuple> = (150..200i64).map(|i| tup![i]).collect();
        assert_eq!(r.sorted(), expected);
        for i in 150..200i64 {
            assert!(r.contains(&tup![i]));
            assert_eq!(r.probe(0, &Value::int(i)).len(), 1);
        }
        // re-inserting a removed tuple works after compaction
        assert!(r.insert(tup![0i64]));
        assert_eq!(r.len(), 51);
    }

    /// Built indexes must be maintained in place across an edit sequence
    /// and stay identical to indexes rebuilt from scratch on a copy.
    #[test]
    fn in_place_index_maintenance_matches_rebuild() {
        let mut r = Relation::new(2);
        for i in 0..40i64 {
            r.insert(tup![i, i % 7]);
        }
        r.ensure_indexes(); // build the cells so edits take the in-place path
        let mut state: u64 = 0x5EED;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            let a = (rng() % 60) as i64;
            if rng() % 2 == 0 {
                r.insert(tup![a, a % 7]);
            } else {
                r.remove(&tup![a, a % 7]);
            }
            // A fresh clone starts with unbuilt cells (cloned state aside,
            // compare against a from-scratch rebuild of the same tuples).
            let fresh: Relation = r.iter().cloned().collect();
            assert_eq!(r.sorted(), fresh.sorted());
            for col in 0..2 {
                assert_eq!(r.distinct_in_column(col), fresh.distinct_in_column(col));
                for t in fresh.iter() {
                    let v = &t.values()[col];
                    let got: Vec<&Tuple> = r.probe_tuples(col, v).collect();
                    let want: Vec<&Tuple> = fresh.probe_tuples(col, v).collect();
                    assert_eq!(got, want, "posting for col {col} value {v:?} diverged");
                }
            }
        }
    }

    #[test]
    fn posting_len_is_exact_and_quiet() {
        let mut r = Relation::new(2);
        r.insert(tup!["GER", "EU"]);
        r.insert(tup!["ESP", "EU"]);
        r.insert(tup!["BRA", "SA"]);
        assert_eq!(r.posting_len(1, &Value::text("EU")), 2);
        assert_eq!(r.posting_len(1, &Value::text("SA")), 1);
        assert_eq!(r.posting_len(1, &Value::text("AS")), 0);
        r.remove(&tup!["ESP", "EU"]);
        assert_eq!(r.posting_len(1, &Value::text("EU")), 1);
    }

    #[test]
    fn emptied_postings_disappear_from_distinct_counts() {
        let mut r = Relation::new(2);
        r.insert(tup!["a", "x"]);
        r.insert(tup!["b", "y"]);
        r.ensure_indexes();
        r.remove(&tup!["b", "y"]);
        assert_eq!(r.distinct_in_column(1), 1);
        assert_eq!(r.posting_len(1, &Value::text("y")), 0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(tup!["only-one"]);
    }

    #[test]
    fn from_iterator_infers_arity() {
        let r: Relation = vec![tup![1, 2], tup![3, 4]].into_iter().collect();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
    }
}
