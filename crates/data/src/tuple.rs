//! Tuples and facts.
//!
//! A [`Tuple`] is an ordered sequence of constants; a [`Fact`] `R(ā)` pairs a
//! tuple with the relation it belongs to. The paper treats "a tuple `t` of a
//! relation `R`" and "a fact `R(t)`" interchangeably (Section 2); we make the
//! pairing explicit because witness sets and edits mix facts from different
//! relations.

use std::fmt;
use std::sync::Arc;

use crate::schema::RelId;
use crate::value::Value;

/// An immutable tuple of constants.
///
/// The payload is a shared slice so that the witness sets built by the
/// deletion algorithm (which may hold the same fact in dozens of witnesses)
/// clone in O(1).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values.into())
    }

    /// The arity of the tuple.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values of the tuple.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The value at position `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// A copy of this tuple with position `i` replaced by `v`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn with(&self, i: usize, v: Value) -> Tuple {
        assert!(
            i < self.0.len(),
            "index {i} out of range for arity {}",
            self.0.len()
        );
        let mut vals: Vec<Value> = self.0.to_vec();
        vals[i] = v;
        Tuple::new(vals)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(values: [Value; N]) -> Self {
        Tuple::new(values.into())
    }
}

/// A fact `R(ā)`: a tuple together with the relation it belongs to.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// The relation this fact belongs to.
    pub rel: RelId,
    /// The tuple of the fact.
    pub tuple: Tuple,
}

impl Fact {
    /// Build a fact.
    pub fn new(rel: RelId, tuple: Tuple) -> Self {
        Fact { rel, tuple }
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}{:?}", self.rel, self.tuple)
    }
}

/// Convenience macro for building a [`Tuple`] from heterogeneous literals.
///
/// ```
/// use qoco_data::tup;
/// let t = tup!["ESP", "EU"];
/// assert_eq!(t.arity(), 2);
/// ```
#[macro_export]
macro_rules! tup {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(i: usize) -> RelId {
        RelId::from_index(i)
    }

    #[test]
    fn tuple_equality_is_structural() {
        let a = tup!["GER", 1990];
        let b = tup!["GER", 1990];
        assert_eq!(a, b);
        assert_ne!(a, tup!["GER", 1991]);
    }

    #[test]
    fn tuple_accessors() {
        let t = tup!["a", 1, "b"];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(1), Some(&Value::int(1)));
        assert_eq!(t.get(3), None);
        assert_eq!(t.values().len(), 3);
    }

    #[test]
    fn with_replaces_a_single_position() {
        let t = tup!["a", "b"];
        let u = t.with(1, Value::text("c"));
        assert_eq!(u, tup!["a", "c"]);
        // original untouched
        assert_eq!(t, tup!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_panics_out_of_range() {
        let _ = tup!["a"].with(5, Value::int(0));
    }

    #[test]
    fn facts_differ_by_relation() {
        let t = tup!["x"];
        assert_ne!(Fact::new(rel(0), t.clone()), Fact::new(rel(1), t));
    }

    #[test]
    fn display_formats() {
        let t = tup!["ESP", 3];
        assert_eq!(format!("{t}"), "(ESP, 3)");
        assert_eq!(format!("{t:?}"), "(\"ESP\", 3)");
    }

    #[test]
    fn from_iterator_and_array() {
        let t: Tuple = vec![Value::int(1), Value::int(2)].into_iter().collect();
        assert_eq!(t, Tuple::from([Value::int(1), Value::int(2)]));
    }
}
