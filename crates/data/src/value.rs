//! The value domain of the database.
//!
//! The paper assumes a single underlying vocabulary `C` of constants with an
//! order (needed for the naïve enumeration strategy of Proposition 3.4).
//! We model it as a small enum of integers and interned strings. String
//! payloads are `Arc<str>` so that tuples, facts and witnesses can be cloned
//! cheaply while the algorithms shuffle them between witness sets, hitting
//! sets and edit lists.

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// A single constant of the underlying vocabulary.
///
/// `Value` is totally ordered (integers sort before text) so the domain can
/// be systematically enumerated, as required by Proposition 3.4 of the paper.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer constant (years, scores-as-numbers, counts, ids).
    Int(i64),
    /// A text constant (team names, dates like `"13.07.14"`, stages, …).
    Text(Arc<str>),
}

impl Value {
    /// Construct a text value from anything string-like.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Construct an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Return the text payload if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Return the integer payload if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Text(_) => None,
        }
    }

    /// A human-readable rendering without quoting, used in crowd questions.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Text(s) => Cow::Borrowed(s),
        }
    }

    /// The immediate successor of this value in the (Int, then Text) domain
    /// order. Used by the naïve systematic-enumeration baseline
    /// (Proposition 3.4); text successors append `'\u{1}'` which is the
    /// smallest strict extension in lexicographic order.
    pub fn successor(&self) -> Value {
        match self {
            Value::Int(i) => Value::Int(i.saturating_add(1)),
            Value::Text(s) => {
                let mut owned = s.to_string();
                owned.push('\u{1}');
                Value::Text(Arc::from(owned.as_str()))
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::text(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_values_compare_by_content() {
        assert_eq!(Value::text("ESP"), Value::text("ESP"));
        assert_ne!(Value::text("ESP"), Value::text("GER"));
    }

    #[test]
    fn ints_sort_before_text() {
        assert!(Value::int(999) < Value::text("0"));
    }

    #[test]
    fn order_is_total_on_ints() {
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::int(-5) < Value::int(0));
    }

    #[test]
    fn successor_of_int_increments() {
        assert_eq!(Value::int(7).successor(), Value::int(8));
    }

    #[test]
    fn successor_of_max_int_saturates() {
        assert_eq!(Value::int(i64::MAX).successor(), Value::int(i64::MAX));
    }

    #[test]
    fn successor_of_text_is_strictly_greater_and_minimal_extension() {
        let v = Value::text("abc");
        let s = v.successor();
        assert!(s > v);
        // No text value strictly between v and its successor shares the
        // prefix "abc" and is shorter than the successor.
        assert_eq!(s, Value::text("abc\u{1}"));
    }

    #[test]
    fn render_and_display() {
        assert_eq!(Value::int(10).render(), "10");
        assert_eq!(Value::text("Final").render(), "Final");
        assert_eq!(format!("{}", Value::text("EU")), "EU");
        assert_eq!(format!("{:?}", Value::text("EU")), "\"EU\"");
        assert_eq!(format!("{:?}", Value::int(3)), "3");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::int(5));
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from("x".to_string()), Value::text("x"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::int(3).as_int(), Some(3));
        assert_eq!(Value::int(3).as_text(), None);
        assert_eq!(Value::text("a").as_text(), Some("a"));
        assert_eq!(Value::text("a").as_int(), None);
    }
}
