//! Cleaning views defined by *unions* of conjunctive queries.
//!
//! The paper (Section 2) states all results extend to unions of CQs; this
//! module carries that out on top of the single-CQ algorithms:
//!
//! * a tuple is a **true** answer of `U = Q₁ ∪ … ∪ Qₖ` iff it is a true
//!   answer of *some* disjunct, so verification asks per-disjunct
//!   `TRUE(Qᵢ, t)?` until one says yes (at most `k` questions);
//! * a **wrong** answer must be removed from *every* disjunct that produces
//!   it — each removal is an Algorithm 1 run on that disjunct;
//! * a **missing** answer needs only *one* disjunct to produce it — QOCO
//!   asks which disjunct can host a witness (a satisfiability question on
//!   the embedded `Qᵢ|t`) and runs Algorithm 2 there.

use std::collections::BTreeSet;

use qoco_crowd::{CrowdAccess, CrowdError};
use qoco_data::{Database, Tuple};
use qoco_engine::{answer_set, Assignment, MaterializedView};
use qoco_query::{embed_answer, UnionQuery};

use crate::cleaner::{CleaningConfig, CleaningReport};
use crate::deletion::crowd_remove_wrong_answer_tracked;
use crate::error::CleanError;
use crate::insertion::crowd_add_missing_answer_tracked;
use crate::report::{UnresolvedItem, UnresolvedPhase};

/// The union's answer set over `db`: the union of the disjuncts' answers.
pub fn union_answer_set(uq: &UnionQuery, db: &Database) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = uq
        .disjuncts()
        .iter()
        .flat_map(|q| answer_set(q, db))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// The union of the views' cached answers — [`union_answer_set`] without
/// re-evaluating any disjunct.
fn union_cached_answers(views: &[MaterializedView]) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = views.iter().flat_map(|v| v.answers()).collect();
    out.sort();
    out.dedup();
    out
}

/// Verify a union answer: true iff some disjunct certifies it. Asks the
/// crowd per disjunct, stopping at the first YES.
fn verify_union_answer<C: CrowdAccess + ?Sized>(
    uq: &UnionQuery,
    crowd: &mut C,
    t: &Tuple,
) -> Result<bool, CrowdError> {
    for (i, q) in uq.disjuncts().iter().enumerate() {
        let decision = qoco_telemetry::begin_decision();
        let verdict = crowd.verify_answer(q, t);
        qoco_telemetry::finish_decision(decision, "union.verify_answer", || {
            qoco_telemetry::DecisionDetail {
                question: format!("TRUE({}, {t})?", q.name()),
                outcome: match &verdict {
                    Ok(v) => v.to_string(),
                    Err(e) => format!("error: {e}"),
                },
                evidence: vec![
                    ("disjunct", format!("{}/{}", i + 1, uq.disjuncts().len())),
                    (
                        "rationale",
                        "a union answer is true iff some disjunct certifies it".to_string(),
                    ),
                ],
            }
        });
        if verdict? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Clean a union view until `U(D′) = U(D_G)` as certified by the crowd —
/// the Algorithm 3 loop lifted to unions.
pub fn clean_union_view<C: CrowdAccess + ?Sized>(
    uq: &UnionQuery,
    db: &mut Database,
    crowd: &mut C,
    config: CleaningConfig,
) -> Result<CleaningReport, CleanError> {
    let mut report = CleaningReport::new();
    let mut verified: BTreeSet<Tuple> = BTreeSet::new();
    let mut skipped: BTreeSet<Tuple> = BTreeSet::new();
    let mut split = config.split.build();
    let mut first = true;
    // One materialized view per disjunct; every edit from the tracked
    // Algorithm 1/2 runs notifies all of them, so each disjunct's answer
    // set stays cached across the whole session.
    let mut views: Vec<MaterializedView> = uq
        .disjuncts()
        .iter()
        .map(|q| MaterializedView::new(q.clone(), db))
        .collect();

    loop {
        for v in views.iter_mut() {
            v.sync(db);
        }
        let unverified: Vec<Tuple> = union_cached_answers(&views)
            .into_iter()
            .filter(|t| !verified.contains(t) && !skipped.contains(t))
            .collect();
        if !first && unverified.is_empty() {
            break;
        }
        first = false;
        report.iterations += 1;
        if report.iterations > config.max_iterations {
            return Err(CleanError::IterationBudget {
                budget: config.max_iterations,
            });
        }

        // ---- deletion: purge a wrong answer from every producing disjunct
        let del_before = crowd.stats();
        for t in unverified {
            if !views.iter().any(|v| v.contains(&t)) {
                continue;
            }
            match verify_union_answer(uq, crowd, &t) {
                Ok(true) => {
                    verified.insert(t);
                    continue;
                }
                Ok(false) => {}
                Err(e) => {
                    report.unresolved.push(UnresolvedItem {
                        phase: UnresolvedPhase::Verify,
                        answer: Some(t.clone()),
                        reason: e.to_string(),
                    });
                    skipped.insert(t);
                    continue;
                }
            }
            let mut removal_failed = false;
            for (i, q) in uq.disjuncts().iter().enumerate() {
                if views[i].contains(&t) {
                    let out = crowd_remove_wrong_answer_tracked(
                        q,
                        db,
                        &t,
                        crowd,
                        config.deletion,
                        &mut views,
                    )?;
                    report.deletion_upper_bound += out.upper_bound;
                    report.anomalies += out.anomalies;
                    report.edits.extend(out.edits);
                    if let Some(e) = out.failure {
                        report.unresolved.push(UnresolvedItem {
                            phase: UnresolvedPhase::Delete,
                            answer: Some(t.clone()),
                            reason: e.to_string(),
                        });
                        skipped.insert(t.clone());
                        removal_failed = true;
                        break;
                    }
                }
            }
            if !removal_failed {
                // counted only when every hosting disjunct finished its
                // removal — a crowd failure leaves the answer in the view
                report.wrong_answers += 1;
            }
        }
        report
            .deletion_stats
            .absorb(&crowd.stats().since(&del_before));

        // ---- insertion: find missing answers via any disjunct
        let ins_before = crowd.stats();
        'insertion: loop {
            let known = union_cached_answers(&views);
            // ask each disjunct's oracle view for a missing answer
            let mut found = None;
            for q in uq.disjuncts() {
                match crowd.next_missing_answer(q, &known) {
                    Ok(Some(t)) => {
                        found = Some(t);
                        break;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        report.unresolved.push(UnresolvedItem {
                            phase: UnresolvedPhase::Insert,
                            answer: None,
                            reason: e.to_string(),
                        });
                        break 'insertion;
                    }
                }
            }
            let Some(t) = found else { break };
            // pick the disjunct that can host a witness: the embedded
            // query must be satisfiable w.r.t. the ground truth
            let mut achieved = false;
            let mut failed = false;
            for (i, q) in uq.disjuncts().iter().enumerate() {
                let Ok(q_t) = embed_answer(q, t.values()) else {
                    continue;
                };
                let decision = qoco_telemetry::begin_decision();
                let hostable = crowd.verify_satisfiable(&q_t, &Assignment::new());
                qoco_telemetry::finish_decision(decision, "union.pick_host_disjunct", || {
                    qoco_telemetry::DecisionDetail {
                        question: format!("SAT(∅, {})?", q_t.name()),
                        outcome: match &hostable {
                            Ok(v) => v.to_string(),
                            Err(e) => format!("error: {e}"),
                        },
                        evidence: vec![
                            ("disjunct", format!("{}/{}", i + 1, uq.disjuncts().len())),
                            ("missing_answer", t.to_string()),
                            (
                                "rationale",
                                "a missing union answer needs one hosting disjunct; \
                                 insertion runs on the first satisfiable embedding"
                                    .to_string(),
                            ),
                        ],
                    }
                });
                match hostable {
                    Ok(true) => {}
                    Ok(false) => continue,
                    Err(e) => {
                        report.unresolved.push(UnresolvedItem {
                            phase: UnresolvedPhase::Insert,
                            answer: Some(t.clone()),
                            reason: e.to_string(),
                        });
                        skipped.insert(t.clone());
                        failed = true;
                        break;
                    }
                }
                let out = crowd_add_missing_answer_tracked(
                    q,
                    db,
                    &t,
                    crowd,
                    &mut *split,
                    config.insertion,
                    &mut views,
                )?;
                report.insertion_upper_bound += out.upper_bound;
                report.edits.extend(out.edits);
                if let Some(e) = out.failure {
                    report.unresolved.push(UnresolvedItem {
                        phase: UnresolvedPhase::Insert,
                        answer: Some(t.clone()),
                        reason: e.to_string(),
                    });
                    skipped.insert(t.clone());
                    failed = true;
                    break;
                }
                if out.achieved {
                    achieved = true;
                    verified.insert(t.clone());
                    break;
                }
            }
            if failed {
                break 'insertion;
            }
            report.missing_answers += 1;
            if !achieved {
                report.anomalies += 1;
            }
        }
        report
            .insertion_stats
            .absorb(&crowd.stats().since(&ins_before));
    }

    report.total_stats = report.deletion_stats;
    report.total_stats.absorb(&report.insertion_stats);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_crowd::{PerfectOracle, SingleExpert};
    use qoco_data::{tup, Schema};
    use qoco_query::parse_query;
    use std::sync::Arc;

    /// Union view: teams that won a final ∪ teams that lost a final
    /// ("teams that played a final").
    fn setup() -> (Arc<Schema>, Database, Database, UnionQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .build()
            .unwrap();
        let mut d = Database::empty(schema.clone());
        d.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        // false: BRA never beat FRA in a final
        d.insert_named("Games", tup!["99.99.99", "BRA", "FRA", "Final", "9:0"])
            .unwrap();

        let mut g = Database::empty(schema.clone());
        g.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        g.insert_named("Games", tup!["11.07.10", "ESP", "NED", "Final", "1:0"])
            .unwrap();

        let q_win = parse_query(&schema, r#"W(x) :- Games(d, x, y, "Final", u)"#).unwrap();
        let q_lose = parse_query(&schema, r#"L(x) :- Games(d, y, x, "Final", u)"#).unwrap();
        let uq = UnionQuery::new("Finalists", vec![q_win, q_lose]).unwrap();
        (schema, d, g, uq)
    }

    #[test]
    fn union_answers_union_the_disjuncts() {
        let (_, d, _, uq) = setup();
        let answers = union_answer_set(&uq, &d);
        // winners GER, BRA; losers ARG, FRA
        assert_eq!(
            answers,
            vec![tup!["ARG"], tup!["BRA"], tup!["FRA"], tup!["GER"]]
        );
    }

    #[test]
    fn union_cleaning_converges() {
        let (_, mut d, g, uq) = setup();
        let truth = {
            let gm = g.clone();
            union_answer_set(&uq, &gm)
        };
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let report = clean_union_view(&uq, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        assert_eq!(union_answer_set(&uq, &d), truth);
        // BRA and FRA were wrong (and fixed by the same fact deletion);
        // ESP and NED were missing — inserting the 2010 final for ESP
        // fixes NED as a side effect, so at least one is reported
        assert!(report.wrong_answers >= 1);
        assert!(report.missing_answers >= 1);
        assert_eq!(report.anomalies, 0);
    }

    #[test]
    fn answer_true_via_second_disjunct_is_kept() {
        let (_, mut d, g, uq) = setup();
        // ARG is a true answer via the *loser* disjunct only; cleaning must
        // not remove it even though the winner disjunct rejects it
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        clean_union_view(&uq, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        assert!(union_answer_set(&uq, &d).contains(&tup!["ARG"]));
    }

    #[test]
    fn clean_union_on_clean_db_is_free() {
        let (_, _, g, uq) = setup();
        let mut d = g.clone();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let report = clean_union_view(&uq, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        assert!(report.edits.is_empty());
    }
}
