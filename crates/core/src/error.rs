//! Errors raised by the cleaning algorithms.

use std::fmt;

use qoco_crowd::CrowdError;
use qoco_data::DataError;
use qoco_query::QueryError;

/// Errors raised while cleaning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CleanError {
    /// Underlying data-layer failure.
    Data(DataError),
    /// Query transformation failure (embedding, splitting).
    Query(QueryError),
    /// The crowd could not produce a witness for a missing answer (with a
    /// perfect oracle this means the target tuple is not a true answer).
    NoWitness(String),
    /// The iteration budget was exhausted before convergence (only possible
    /// with imperfect crowds).
    IterationBudget {
        /// The configured budget.
        budget: usize,
    },
    /// The naïve enumeration exhausted its question budget.
    QuestionBudget {
        /// The configured budget.
        budget: usize,
    },
    /// The crowd failed to answer a question even after the session's
    /// retry/escalation policy was exhausted. Top-level cleaners catch
    /// this per question and record it in the report's `unresolved`
    /// section; it only escapes from low-level helpers.
    CrowdUnavailable(CrowdError),
}

impl fmt::Display for CleanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CleanError::Data(e) => write!(f, "data error: {e}"),
            CleanError::Query(e) => write!(f, "query error: {e}"),
            CleanError::NoWitness(t) => {
                write!(f, "the crowd could not provide a witness for {t}")
            }
            CleanError::IterationBudget { budget } => {
                write!(f, "cleaning did not converge within {budget} iterations")
            }
            CleanError::QuestionBudget { budget } => {
                write!(f, "enumeration exceeded the {budget}-question budget")
            }
            CleanError::CrowdUnavailable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CleanError {}

impl From<DataError> for CleanError {
    fn from(e: DataError) -> Self {
        CleanError::Data(e)
    }
}

impl From<QueryError> for CleanError {
    fn from(e: QueryError) -> Self {
        CleanError::Query(e)
    }
}

impl From<CrowdError> for CleanError {
    fn from(e: CrowdError) -> Self {
        CleanError::CrowdUnavailable(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(CleanError::NoWitness("(ITA)".into())
            .to_string()
            .contains("ITA"));
        assert!(CleanError::IterationBudget { budget: 5 }
            .to_string()
            .contains('5'));
        assert!(CleanError::QuestionBudget { budget: 9 }
            .to_string()
            .contains('9'));
        let d: CleanError = DataError::SchemaMismatch.into();
        assert!(d.to_string().contains("schema"));
        let q: CleanError = QueryError::EmptyBody.into();
        assert!(q.to_string().contains("query"));
        let c = CrowdError {
            question: "TRUE(F)?".into(),
            attempts: 3,
            last: qoco_crowd::OracleError::Timeout,
        };
        let c: CleanError = c.into();
        assert!(c.to_string().contains("crowd unavailable"));
    }
}
