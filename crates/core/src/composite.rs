//! Composite questions: group-testing deletion (paper Section 9).
//!
//! "We plan to consider richer crowd interactions by allowing composite
//! crowd questions where, for example, the correctness of several tuples is
//! posed in a single question. Composite questions can potentially reduce
//! the number of questions posed in general."
//!
//! With a composite `TRUE-ALL(S)?` primitive, finding the false facts among
//! a witness universe becomes classical *group testing*: ask about the
//! whole set; a YES clears everything in one question, a NO splits the set
//! and recurses. With `f` false facts among `n`, this costs
//! `O(f · log(n/f))` questions instead of `n` — a large win exactly when
//! most witness tuples are true, which is the regime of the paper's
//! deletion experiments.

use qoco_crowd::CrowdAccess;
use qoco_data::{Database, Edit, EditLog, Fact, Tuple};
use qoco_engine::witnesses_for_answer;
use qoco_query::ConjunctiveQuery;

use crate::deletion::DeletionOutcome;
use crate::error::CleanError;
use crate::hitting_set::HittingSetInstance;

/// Identify the false facts in `facts` using composite questions
/// (binary-splitting group testing). Returns the false subset and the
/// number of composite questions asked. A crowd failure aborts the whole
/// group test ([`CleanError::CrowdUnavailable`]) — partial knowledge about
/// which *groups* are contaminated does not identify any individual fact.
pub fn find_false_facts<C: CrowdAccess + ?Sized>(
    crowd: &mut C,
    facts: &[Fact],
) -> Result<(Vec<Fact>, usize), CleanError> {
    let mut false_facts = Vec::new();
    let mut questions = 0usize;
    if facts.is_empty() {
        return Ok((false_facts, questions));
    }
    questions += 1;
    if crowd.verify_facts_all(facts)? {
        return Ok((false_facts, questions));
    }
    // stack of groups KNOWN to contain at least one false fact
    let mut stack: Vec<Vec<Fact>> = vec![facts.to_vec()];
    while let Some(group) = stack.pop() {
        if group.len() == 1 {
            if let Some(f) = group.into_iter().next() {
                false_facts.push(f);
            }
            continue;
        }
        let mid = group.len() / 2;
        let (left, right) = group.split_at(mid);
        questions += 1;
        if crowd.verify_facts_all(left)? {
            // left clean ⇒ the contamination is in the right half
            stack.push(right.to_vec());
        } else {
            stack.push(left.to_vec());
            // the right half may or may not also be contaminated
            questions += 1;
            if !crowd.verify_facts_all(right)? {
                stack.push(right.to_vec());
            }
        }
    }
    false_facts.sort();
    Ok((false_facts, questions))
}

/// Remove a wrong answer using composite questions: group-test the witness
/// universe for its false facts, then delete the false facts that hit every
/// witness (all of them — deleting every discovered false fact both fixes
/// the answer and cleans the database, per the paper's observation that
/// redundant deletions of false tuples "improve the correctness of the
/// database").
pub fn crowd_remove_wrong_answer_composite<C: CrowdAccess + ?Sized>(
    q: &ConjunctiveQuery,
    db: &mut Database,
    t: &Tuple,
    crowd: &mut C,
) -> Result<DeletionOutcome, CleanError> {
    let witnesses = witnesses_for_answer(q, db, t);
    let instance = HittingSetInstance::new(witnesses);
    let universe: Vec<Fact> = instance.universe().into_iter().collect();
    let upper_bound = universe.len();
    let (false_facts, questions) = find_false_facts(crowd, &universe)?;
    let mut edits = EditLog::new();
    let mut check = instance.clone();
    for f in &false_facts {
        check.confirm_false(f);
        edits.push(Edit::delete(f.clone()));
    }
    // with a truthful oracle every witness holds a false fact, so the
    // instance must now be destroyed; surviving sets are anomalies
    let anomalies = check.sets().len();
    db.apply_all(edits.edits())?;
    Ok(DeletionOutcome {
        edits,
        questions,
        upper_bound,
        anomalies,
        failure: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deletion::{crowd_remove_wrong_answer, DeletionStrategy};
    use qoco_crowd::{PerfectOracle, SingleExpert};
    use qoco_data::{tup, Schema};
    use qoco_engine::answer_set;
    use qoco_query::parse_query;
    use std::sync::Arc;

    /// The ESP scenario of Example 4.6 again: 4 finals in D, 3 false.
    fn setup() -> (Arc<Schema>, Database, Database, ConjunctiveQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap();
        let mut d = Database::empty(schema.clone());
        for (dt, w, r, s, u) in [
            ("11.07.10", "ESP", "NED", "Final", "1:0"),
            ("12.07.98", "ESP", "NED", "Final", "4:2"),
            ("17.07.94", "ESP", "NED", "Final", "3:1"),
            ("25.06.78", "ESP", "NED", "Final", "1:0"),
        ] {
            d.insert_named("Games", tup![dt, w, r, s, u]).unwrap();
        }
        d.insert_named("Teams", tup!["ESP", "EU"]).unwrap();
        let mut g = Database::empty(schema.clone());
        g.insert_named("Games", tup!["11.07.10", "ESP", "NED", "Final", "1:0"])
            .unwrap();
        g.insert_named("Teams", tup!["ESP", "EU"]).unwrap();
        let q = parse_query(
            &schema,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap();
        (schema, d, g, q)
    }

    #[test]
    fn group_testing_finds_exactly_the_false_facts() {
        let (schema, d, g, _) = setup();
        let games = schema.rel_id("Games").unwrap();
        let facts: Vec<Fact> = d
            .relation(games)
            .sorted()
            .into_iter()
            .map(|t| Fact::new(games, t))
            .collect();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g.clone()));
        let (false_facts, questions) = find_false_facts(&mut crowd, &facts).unwrap();
        assert_eq!(false_facts.len(), 3);
        assert!(false_facts.iter().all(|f| !g.contains(f)));
        assert!(questions >= 1);
        assert_eq!(crowd.stats().composite_questions, questions);
    }

    #[test]
    fn all_true_group_costs_one_question() {
        let (schema, _, g, _) = setup();
        let games = schema.rel_id("Games").unwrap();
        let facts = vec![Fact::new(
            games,
            tup!["11.07.10", "ESP", "NED", "Final", "1:0"],
        )];
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let (false_facts, questions) = find_false_facts(&mut crowd, &facts).unwrap();
        assert!(false_facts.is_empty());
        assert_eq!(questions, 1);
    }

    #[test]
    fn empty_group_is_free() {
        let (_, _, g, _) = setup();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let (false_facts, questions) = find_false_facts(&mut crowd, &[]).unwrap();
        assert!(false_facts.is_empty());
        assert_eq!(questions, 0);
    }

    #[test]
    fn composite_removal_cleans_the_answer() {
        let (_, mut d, g, q) = setup();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let out =
            crowd_remove_wrong_answer_composite(&q, &mut d, &tup!["ESP"], &mut crowd).unwrap();
        assert!(answer_set(&q, &d).is_empty());
        assert_eq!(out.anomalies, 0);
        assert_eq!(out.edits.deletions(), 3);
    }

    #[test]
    fn composite_beats_individual_questions_when_most_facts_are_true() {
        // a single long witness of uniform-frequency facts, exactly one of
        // them false: individual questions pay ~n, group testing ~log n
        let n = 16usize;
        let schema = Schema::builder()
            .relation("E", &["a", "b"])
            .build()
            .unwrap();
        let mut d = Database::empty(schema.clone());
        let mut g = Database::empty(schema.clone());
        let node = |i: usize| format!("n{i:02}");
        for i in 0..n {
            d.insert_named("E", tup![node(i).as_str(), node(i + 1).as_str()])
                .unwrap();
            if i != n - 1 {
                // the LAST edge is false (sorted last, so the tie-breaking
                // individual strategy asks about it last)
                g.insert_named("E", tup![node(i).as_str(), node(i + 1).as_str()])
                    .unwrap();
            }
        }
        // chain query: (x0) :- E(x0,x1), E(x1,x2), …, E(x15,x16)
        let body: Vec<String> = (0..n).map(|i| format!("E(x{i}, x{})", i + 1)).collect();
        let text = format!("(x0) :- {}", body.join(", "));
        let q = parse_query(&schema, &text).unwrap();
        let target = tup!["n00"];

        let mut d1 = d.clone();
        let mut crowd1 = SingleExpert::new(PerfectOracle::new(g.clone()));
        let composite =
            crowd_remove_wrong_answer_composite(&q, &mut d1, &target, &mut crowd1).unwrap();
        let mut d2 = d.clone();
        let mut crowd2 = SingleExpert::new(PerfectOracle::new(g.clone()));
        let singles = crowd_remove_wrong_answer(
            &q,
            &mut d2,
            &target,
            &mut crowd2,
            DeletionStrategy::QocoMinus,
        )
        .unwrap();
        assert!(answer_set(&q, &d1).is_empty());
        assert!(answer_set(&q, &d2).is_empty());
        assert!(
            composite.questions < singles.questions,
            "composite {} vs singles {}",
            composite.questions,
            singles.questions
        );
        // the false edge was found and deleted in both runs
        assert_eq!(composite.edits.deletions(), 1);
    }
}
