//! Tuple-selection heuristics for the deletion algorithm.
//!
//! Algorithm 1 "employs a greedy heuristic, asking the crowd first about
//! tuples that occur in the highest number of witnesses. This heuristic
//! could be replaced by others, such as asking the crowd first about
//! influential tuples, or tuples with high causality/responsibility, or
//! tuples which are least trustworthy (assuming that they have trust
//! scores)" (Section 4). Each alternative is a [`TupleSelector`]; the
//! ablation bench compares them.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qoco_data::Fact;

use crate::hitting_set::HittingSetInstance;

/// Chooses which witness tuple to verify next.
pub trait TupleSelector {
    /// Pick a fact from the remaining witness sets, or `None` if no sets
    /// remain.
    fn select(&mut self, instance: &HittingSetInstance<Fact>) -> Option<Fact>;

    /// Label for reports.
    fn name(&self) -> &'static str;
}

/// The paper's default: the most frequent tuple across witnesses.
#[derive(Debug, Default, Clone, Copy)]
pub struct MostFrequentSelector;

impl TupleSelector for MostFrequentSelector {
    fn select(&mut self, instance: &HittingSetInstance<Fact>) -> Option<Fact> {
        instance.most_frequent()
    }

    fn name(&self) -> &'static str {
        "most-frequent"
    }
}

/// Uniform random choice among the remaining witness tuples (the Random
/// baseline of Section 7.2).
#[derive(Debug)]
pub struct RandomSelector {
    rng: StdRng,
}

impl RandomSelector {
    /// Seeded random selector (seed fixed per experiment for
    /// reproducibility).
    pub fn new(seed: u64) -> Self {
        RandomSelector {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl TupleSelector for RandomSelector {
    fn select(&mut self, instance: &HittingSetInstance<Fact>) -> Option<Fact> {
        let universe: Vec<Fact> = instance.universe().into_iter().collect();
        if universe.is_empty() {
            return None;
        }
        let i = self.rng.random_range(0..universe.len());
        Some(universe[i].clone())
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Responsibility-style selection (after Meliou et al. \[46\]): the
/// responsibility of a fact for the wrong answer is `1 / (1 + k)` where `k`
/// is the size of the smallest contingency — here, the smallest witness
/// containing the fact minus the fact itself. Higher responsibility first;
/// ties broken by frequency, then by fact order.
#[derive(Debug, Default, Clone, Copy)]
pub struct ResponsibilitySelector;

impl TupleSelector for ResponsibilitySelector {
    fn select(&mut self, instance: &HittingSetInstance<Fact>) -> Option<Fact> {
        let mut best: Option<(usize, usize, Fact)> = None; // (min witness size, -freq, fact)
        for f in instance.universe() {
            let min_size = instance
                .sets()
                .iter()
                .filter(|s| s.contains(&f))
                .map(|s| s.len())
                .min()
                .unwrap_or(usize::MAX);
            let freq = instance.frequency(&f);
            let key = (min_size, usize::MAX - freq, f);
            match &best {
                Some(b) if *b <= key => {}
                _ => best = Some(key),
            }
        }
        best.map(|(_, _, f)| f)
    }

    fn name(&self) -> &'static str {
        "responsibility"
    }
}

/// Least-trustworthy-first selection using externally supplied trust
/// scores (e.g. from the extraction pipeline); unknown facts default to
/// trust 0.5. Ties broken by frequency then fact order.
#[derive(Debug, Clone)]
pub struct TrustSelector {
    trust: HashMap<Fact, f64>,
}

impl TrustSelector {
    /// Build from a score table; scores should lie in `[0, 1]`
    /// (1 = fully trusted).
    pub fn new(trust: HashMap<Fact, f64>) -> Self {
        TrustSelector { trust }
    }

    fn score(&self, f: &Fact) -> f64 {
        self.trust.get(f).copied().unwrap_or(0.5)
    }
}

impl TupleSelector for TrustSelector {
    fn select(&mut self, instance: &HittingSetInstance<Fact>) -> Option<Fact> {
        let mut best: Option<(f64, usize, Fact)> = None;
        for f in instance.universe() {
            let s = self.score(&f);
            let freq = instance.frequency(&f);
            let replace = match &best {
                None => true,
                Some((bs, bf, bfact)) => {
                    s < *bs || (s == *bs && freq > *bf) || (s == *bs && freq == *bf && f < *bfact)
                }
            };
            if replace {
                best = Some((s, freq, f));
            }
        }
        best.map(|(_, _, f)| f)
    }

    fn name(&self) -> &'static str {
        "trust"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{tup, RelId};
    use std::collections::BTreeSet;

    fn fact(i: i64) -> Fact {
        Fact::new(RelId::from_index(0), tup![i])
    }

    fn inst(sets: &[&[i64]]) -> HittingSetInstance<Fact> {
        HittingSetInstance::new(
            sets.iter()
                .map(|s| s.iter().map(|&i| fact(i)).collect::<BTreeSet<_>>()),
        )
    }

    #[test]
    fn most_frequent_selector_matches_instance() {
        let h = inst(&[&[1, 2], &[1, 3], &[4]]);
        assert_eq!(MostFrequentSelector.select(&h), Some(fact(1)));
        assert_eq!(MostFrequentSelector.name(), "most-frequent");
    }

    #[test]
    fn random_selector_is_seeded_and_in_universe() {
        let h = inst(&[&[1, 2], &[3]]);
        let picks1: Vec<_> = {
            let mut s = RandomSelector::new(7);
            (0..10).map(|_| s.select(&h).unwrap()).collect()
        };
        let picks2: Vec<_> = {
            let mut s = RandomSelector::new(7);
            (0..10).map(|_| s.select(&h).unwrap()).collect()
        };
        assert_eq!(picks1, picks2);
        let universe = h.universe();
        assert!(picks1.iter().all(|f| universe.contains(f)));
    }

    #[test]
    fn random_selector_on_empty_instance() {
        let h = inst(&[]);
        assert_eq!(RandomSelector::new(1).select(&h), None);
    }

    #[test]
    fn responsibility_prefers_small_witnesses() {
        // fact 9 sits in a 2-element witness (contingency 1); fact 1 is
        // more frequent but only in 3-element witnesses (contingency 2).
        let h = inst(&[&[1, 2, 3], &[1, 4, 5], &[1, 6, 7], &[9, 8]]);
        assert_eq!(ResponsibilitySelector.select(&h), Some(fact(8)));
        // fact 8 vs 9: same witness (size 2), same frequency → Ord tie-break
    }

    #[test]
    fn trust_selector_targets_least_trusted() {
        let h = inst(&[&[1, 2], &[2, 3]]);
        let mut trust = HashMap::new();
        trust.insert(fact(1), 0.9);
        trust.insert(fact(2), 0.9);
        trust.insert(fact(3), 0.1);
        let mut s = TrustSelector::new(trust);
        assert_eq!(s.select(&h), Some(fact(3)));
    }

    #[test]
    fn trust_selector_defaults_to_half() {
        let h = inst(&[&[1, 2]]);
        let mut trust = HashMap::new();
        trust.insert(fact(1), 0.8); // fact 2 unknown → 0.5 < 0.8
        let mut s = TrustSelector::new(trust);
        assert_eq!(s.select(&h), Some(fact(2)));
    }

    #[test]
    fn trust_ties_break_by_frequency() {
        let h = inst(&[&[1, 2], &[2, 3]]);
        let mut s = TrustSelector::new(HashMap::new()); // all 0.5
        assert_eq!(s.select(&h), Some(fact(2))); // most frequent among ties
    }
}
