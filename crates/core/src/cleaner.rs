//! Algorithm 3: the iterative mixed cleaner (paper Section 6.1).
//!
//! Repeatedly: verify every unverified answer of `Q(D)` against the crowd,
//! removing the wrong ones (Algorithm 1); then ask the crowd for missing
//! answers (`COMPL(Q(D))`) and add each (Algorithm 2). Fixing one kind of
//! error can surface errors of the other kind (Example 6.1: inserting
//! `Teams(ITA, EU)` adds the wrong answer `(Totti)` as a side effect), so
//! the outer loop runs until the view is verified complete and correct. By
//! Proposition 3.3 every edit moves `D` towards `D_G`, so with a truthful
//! oracle the loop converges.

use std::collections::BTreeSet;

use qoco_crowd::{CompletenessEstimator, CrowdAccess, GroundTruthEstimator};
use qoco_data::{Database, Tuple};
use qoco_engine::MaterializedView;
use qoco_query::ConjunctiveQuery;

use crate::deletion::{crowd_remove_wrong_answer_tracked, DeletionStrategy};
use crate::error::CleanError;
use crate::insertion::{crowd_add_missing_answer_tracked, InsertionOptions};
pub use crate::report::CleaningReport;
use crate::report::{UnresolvedItem, UnresolvedPhase};
use crate::split::SplitStrategyKind;

/// Configuration for a full cleaning session.
#[derive(Debug, Clone, Copy)]
pub struct CleaningConfig {
    /// Deletion algorithm (Section 7.2 competitors).
    pub deletion: DeletionStrategy,
    /// Split strategy for insertions.
    pub split: SplitStrategyKind,
    /// Insertion options.
    pub insertion: InsertionOptions,
    /// Outer-loop budget; exceeded only with untruthful crowds.
    pub max_iterations: usize,
}

impl Default for CleaningConfig {
    fn default() -> Self {
        CleaningConfig {
            deletion: DeletionStrategy::Qoco,
            split: SplitStrategyKind::Provenance,
            insertion: InsertionOptions::default(),
            max_iterations: 25,
        }
    }
}

/// Run Algorithm 3: clean `db` until `Q(D′) = Q(D_G)` as certified by the
/// crowd, using the ground-truth-free protocol (the crowd is the only
/// source of truth; `db` is never compared to `D_G` directly).
///
/// The `estimator` is the enumeration black-box of Section 6.1 deciding
/// when the result is complete; pass a
/// [`GroundTruthEstimator`] for oracle-grade stopping or a
/// [`Chao92Estimator`](qoco_crowd::Chao92Estimator) for the statistical
/// variant. The crowd's `None` reply to `COMPL(Q(D))` also ends the
/// insertion phase.
pub fn clean_view_with_estimator<C: CrowdAccess + ?Sized>(
    q: &ConjunctiveQuery,
    db: &mut Database,
    crowd: &mut C,
    config: CleaningConfig,
    estimator: &mut dyn CompletenessEstimator,
) -> Result<CleaningReport, CleanError> {
    let session_span = qoco_telemetry::span("clean.session")
        .field("query", q.name().to_string())
        .field("deletion", format!("{:?}", config.deletion))
        .field("split", format!("{:?}", config.split));
    let mut report = CleaningReport::new();
    let mut verified: BTreeSet<Tuple> = BTreeSet::new();
    // Answers the crowd could not be reached about: excluded from further
    // sweeps so the outer loop still terminates when the crowd dies.
    let mut skipped: BTreeSet<Tuple> = BTreeSet::new();
    let mut split = config.split.build();
    let mut first = true;
    // The answer set is maintained incrementally: every edit derived by the
    // tracked Algorithm 1/2 runs notifies the view, so the sweeps below
    // read cached answers instead of re-evaluating Q per membership check.
    let mut view = MaterializedView::new(q.clone(), db);

    loop {
        // resynchronize if the caller's database moved out of band
        view.sync(db);
        let unverified: Vec<Tuple> = view
            .answers()
            .into_iter()
            .filter(|t| !verified.contains(t) && !skipped.contains(t))
            .collect();
        if !first && unverified.is_empty() {
            break;
        }
        first = false;
        report.iterations += 1;
        if report.iterations > config.max_iterations {
            return Err(CleanError::IterationBudget {
                budget: config.max_iterations,
            });
        }
        let iter_span =
            qoco_telemetry::span("clean.iteration").field("iteration", report.iterations);

        // ---- Deletion part (lines 2–6) ----
        let del_span =
            qoco_telemetry::span("clean.deletion_phase").field("unverified", unverified.len());
        let del_before = crowd.stats();
        for t in unverified {
            // the answer may already have disappeared through earlier edits
            if !view.contains(&t) {
                continue;
            }
            let decision = qoco_telemetry::begin_decision();
            let verdict = crowd.verify_answer(q, &t);
            qoco_telemetry::finish_decision(decision, "clean.verify_answer", || {
                qoco_telemetry::DecisionDetail {
                    question: format!("TRUE({}, {t})?", q.name()),
                    outcome: match &verdict {
                        Ok(v) => v.to_string(),
                        Err(e) => format!("error: {e}"),
                    },
                    evidence: vec![
                        ("phase", "deletion-sweep".to_string()),
                        ("iteration", report.iterations.to_string()),
                    ],
                }
            });
            match verdict {
                Ok(true) => {
                    verified.insert(t);
                }
                Ok(false) => {
                    qoco_telemetry::event("clean.wrong_answer", || format!("{t}"));
                    let out = crowd_remove_wrong_answer_tracked(
                        q,
                        db,
                        &t,
                        crowd,
                        config.deletion,
                        std::slice::from_mut(&mut view),
                    )?;
                    report.deletion_upper_bound += out.upper_bound;
                    report.anomalies += out.anomalies;
                    report.edits.extend(out.edits);
                    if let Some(e) = out.failure {
                        qoco_telemetry::event("clean.unresolved", || format!("{t}: {e}"));
                        report.unresolved.push(UnresolvedItem {
                            phase: UnresolvedPhase::Delete,
                            answer: Some(t.clone()),
                            reason: e.to_string(),
                        });
                        skipped.insert(t);
                    } else {
                        // counted only when the removal actually completed —
                        // a crowd failure mid-removal leaves the answer in
                        // the view and is reported as unresolved instead
                        report.wrong_answers += 1;
                    }
                }
                Err(e) => {
                    qoco_telemetry::event("clean.unresolved", || format!("{t}: {e}"));
                    report.unresolved.push(UnresolvedItem {
                        phase: UnresolvedPhase::Verify,
                        answer: Some(t.clone()),
                        reason: e.to_string(),
                    });
                    skipped.insert(t);
                }
            }
        }
        report
            .deletion_stats
            .absorb(&crowd.stats().since(&del_before));
        del_span.finish();

        // ---- Insertion part (lines 7–9) ----
        let ins_span = qoco_telemetry::span("clean.insertion_phase");
        let ins_before = crowd.stats();
        loop {
            let known = view.answers();
            if estimator.likely_complete(known.len()) {
                break;
            }
            let decision = qoco_telemetry::begin_decision();
            let reply = crowd.next_missing_answer(q, &known);
            qoco_telemetry::finish_decision(decision, "clean.complete_result", || {
                qoco_telemetry::DecisionDetail {
                    question: format!("COMPL({}(D))?", q.name()),
                    outcome: match &reply {
                        Ok(Some(t)) => format!("missing: {t}"),
                        Ok(None) => "complete".to_string(),
                        Err(e) => format!("error: {e}"),
                    },
                    evidence: vec![
                        ("phase", "insertion-sweep".to_string()),
                        ("iteration", report.iterations.to_string()),
                        ("known_answers", known.len().to_string()),
                    ],
                }
            });
            let t = match reply {
                Ok(Some(t)) => t,
                Ok(None) => break,
                Err(e) => {
                    qoco_telemetry::event("clean.unresolved", || format!("{e}"));
                    report.unresolved.push(UnresolvedItem {
                        phase: UnresolvedPhase::Insert,
                        answer: None,
                        reason: e.to_string(),
                    });
                    break;
                }
            };
            estimator.observe(&t);
            qoco_telemetry::event("clean.missing_answer", || format!("{t}"));
            let out = crowd_add_missing_answer_tracked(
                q,
                db,
                &t,
                crowd,
                &mut *split,
                config.insertion,
                std::slice::from_mut(&mut view),
            )?;
            report.insertion_upper_bound += out.upper_bound;
            report.edits.extend(out.edits);
            if let Some(e) = out.failure {
                qoco_telemetry::event("clean.unresolved", || format!("{t}: {e}"));
                report.unresolved.push(UnresolvedItem {
                    phase: UnresolvedPhase::Insert,
                    answer: Some(t.clone()),
                    reason: e.to_string(),
                });
                skipped.insert(t);
                break;
            }
            report.missing_answers += 1;
            if out.achieved {
                verified.insert(t);
            } else {
                report.anomalies += 1;
            }
        }
        report
            .insertion_stats
            .absorb(&crowd.stats().since(&ins_before));
        ins_span.finish();
        iter_span.finish();
    }

    report.total_stats = report.deletion_stats;
    report.total_stats.absorb(&report.insertion_stats);
    session_span
        .field("iterations", report.iterations)
        .field("edits", report.edits.len())
        .finish();
    Ok(report)
}

/// [`clean_view_with_estimator`] with a permissive estimator: the crowd's
/// `COMPL(Q(D))` replies alone decide completeness — the setting of the
/// paper's simulated-oracle experiments.
pub fn clean_view<C: CrowdAccess + ?Sized>(
    q: &ConjunctiveQuery,
    db: &mut Database,
    crowd: &mut C,
    config: CleaningConfig,
) -> Result<CleaningReport, CleanError> {
    // usize::MAX distinct answers will never be reached: defer fully to the
    // crowd's completeness judgement.
    let mut estimator = GroundTruthEstimator::new(usize::MAX);
    clean_view_with_estimator(q, db, crowd, config, &mut estimator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_crowd::{PerfectOracle, SingleExpert};
    use qoco_data::{diff, tup, Schema};
    use qoco_engine::answer_set;
    use qoco_query::parse_query;
    use std::sync::Arc;

    /// Example 6.1's full scenario: the dirty D has
    ///  * missing Teams(ITA, EU) → (Pirlo) and (Totti) missing from Q2(D);
    ///  * false Goals(Totti, 09.06.06) → once Teams(ITA,EU) is added,
    ///    (Totti) would wrongly appear — unless QOCO removes the false
    ///    goal when it surfaces.
    fn setup() -> (Arc<Schema>, Database, Database, ConjunctiveQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .relation("Players", &["name", "team", "birth_year", "birth_place"])
            .relation("Goals", &["name", "date"])
            .build()
            .unwrap();
        let mut d = Database::empty(schema.clone());
        d.insert_named("Games", tup!["09.06.06", "ITA", "FRA", "Final", "5:3"])
            .unwrap();
        for (c, k) in [("GER", "EU"), ("ESP", "EU")] {
            d.insert_named("Teams", tup![c, k]).unwrap();
        }
        d.insert_named("Players", tup!["Pirlo", "ITA", 1979, "ITA"])
            .unwrap();
        d.insert_named("Players", tup!["Totti", "ITA", 1976, "ITA"])
            .unwrap();
        d.insert_named("Goals", tup!["Pirlo", "09.06.06"]).unwrap();
        d.insert_named("Goals", tup!["Totti", "09.06.06"]).unwrap(); // false

        let mut g = Database::empty(schema.clone());
        g.insert_named("Games", tup!["09.06.06", "ITA", "FRA", "Final", "5:3"])
            .unwrap();
        for (c, k) in [("GER", "EU"), ("ESP", "EU"), ("ITA", "EU")] {
            g.insert_named("Teams", tup![c, k]).unwrap();
        }
        g.insert_named("Players", tup!["Pirlo", "ITA", 1979, "ITA"])
            .unwrap();
        g.insert_named("Players", tup!["Totti", "ITA", 1976, "ITA"])
            .unwrap();
        g.insert_named("Goals", tup!["Pirlo", "09.06.06"]).unwrap();

        let q = parse_query(
            &schema,
            r#"Q2(x) :- Players(x, y, z, w), Goals(x, d), Games(d, y, v, "Final", u), Teams(y, "EU")."#,
        )
        .unwrap();
        (schema, d, g, q)
    }

    #[test]
    fn converges_to_the_true_result() {
        let (_, mut d, g, q) = setup();
        let true_answers = {
            let gm = g.clone();
            answer_set(&q, &gm)
        };
        let mut crowd = SingleExpert::new(PerfectOracle::new(g.clone()));
        let report = clean_view(&q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        assert_eq!(answer_set(&q, &d), true_answers);
        // Pirlo was missing; inserting Teams(ITA, EU) surfaced the wrong
        // (Totti) in a later iteration, which got removed.
        assert!(report.missing_answers >= 1);
        assert!(report.wrong_answers >= 1);
        assert!(report.iterations >= 2);
        // Q(D') = Q(D_G) even though D' ≠ D_G is allowed; here the false
        // goal fact must have been deleted:
        let goals = q.schema().rel_id("Goals").unwrap();
        assert!(!d.contains(&qoco_data::Fact::new(goals, tup!["Totti", "09.06.06"])));
    }

    #[test]
    fn every_edit_moves_towards_ground_truth() {
        // Proposition 3.3: replay the edit log and check the distance to
        // D_G never increases.
        let (_, d0, g, q) = setup();
        let mut d = d0.clone();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g.clone()));
        let report = clean_view(&q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        let mut replay = d0.clone();
        let mut dist = diff(&replay, &g).unwrap().distance();
        for e in report.edits.edits() {
            replay.apply(e).unwrap();
            let next = diff(&replay, &g).unwrap().distance();
            assert!(next <= dist, "edit {e:?} increased the distance");
            dist = next;
        }
    }

    #[test]
    fn clean_database_needs_no_edits() {
        let (_, _, g, q) = setup();
        let mut d = g.clone();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let report = clean_view(&q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        assert!(report.edits.is_empty());
        assert_eq!(report.wrong_answers, 0);
        assert_eq!(report.missing_answers, 0);
        // the single true answer (Pirlo; Totti has no goal in D_G) was
        // verified exactly once
        assert_eq!(report.total_stats.verify_answer_questions, 1);
    }

    #[test]
    fn empty_view_with_missing_answers_is_filled() {
        // first-iteration case: Q(D) empty but Q(D_G) not (line 1's
        // FirstIter flag).
        let (_, mut d, g, q) = setup();
        // remove everything that supports answers in D
        let goals = q.schema().rel_id("Goals").unwrap();
        d.remove(&qoco_data::Fact::new(goals, tup!["Pirlo", "09.06.06"]))
            .unwrap();
        d.remove(&qoco_data::Fact::new(goals, tup!["Totti", "09.06.06"]))
            .unwrap();
        assert!(answer_set(&q, &d).is_empty());
        let mut crowd = SingleExpert::new(PerfectOracle::new(g.clone()));
        let report = clean_view(&q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        let true_answers = {
            let gm = g.clone();
            answer_set(&q, &gm)
        };
        assert_eq!(answer_set(&q, &d), true_answers);
        assert!(report.missing_answers >= 1);
    }

    #[test]
    fn ground_truth_estimator_stops_insertions_early() {
        let (_, mut d, g, q) = setup();
        // an estimator that claims completeness at 0 answers: no insertion
        // questions at all
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let mut estimator = GroundTruthEstimator::new(0);
        let report = clean_view_with_estimator(
            &q,
            &mut d,
            &mut crowd,
            CleaningConfig::default(),
            &mut estimator,
        )
        .unwrap();
        assert_eq!(report.missing_answers, 0);
        assert_eq!(report.total_stats.complete_result_tasks, 0);
    }

    #[test]
    fn all_strategy_combinations_converge() {
        let (_, d, g, q) = setup();
        let strategies = [
            (DeletionStrategy::Qoco, SplitStrategyKind::Provenance),
            (DeletionStrategy::QocoMinus, SplitStrategyKind::MinCut),
            (DeletionStrategy::Random(3), SplitStrategyKind::Random(3)),
            (DeletionStrategy::Qoco, SplitStrategyKind::Naive),
        ];
        let true_answers = {
            let gm = g.clone();
            answer_set(&q, &gm)
        };
        for (deletion, split) in strategies {
            let mut di = d.clone();
            let mut crowd = SingleExpert::new(PerfectOracle::new(g.clone()));
            let config = CleaningConfig {
                deletion,
                split,
                ..Default::default()
            };
            clean_view(&q, &mut di, &mut crowd, config).unwrap();
            assert_eq!(
                answer_set(&q, &di),
                true_answers,
                "strategy {deletion:?}/{split:?} failed to converge"
            );
        }
    }
}
