//! The resumable cleaning session: an explicit state machine over the
//! (deterministic) Algorithm 3 loop.
//!
//! A [`SessionMachine`] owns nothing but a [`SessionSpec`] (the immutable
//! inputs: dirty database, query, strategy configuration) and the
//! *consumed-answer log* — the same record stream the PR 4 write-ahead
//! journal persists. Its three states:
//!
//! ```text
//!             step()                       submit(answer)
//!  [spec] ───────────▶ AwaitingAnswers ◀───────────────┐
//!                        │        │                    │
//!                        │        └────────────────────┘
//!                        │   (more questions to come)
//!                        ▼
//!                 Finished(report)     — or Failed(reason) on a
//!                                        cleaner-level error
//! ```
//!
//! `step()` re-runs the cleaner from the pristine spec with a
//! [`SuspendingOracle`] that replays the log and unwinds at the first
//! unanswered question (see `qoco_crowd::suspend`). Because every cleaning
//! algorithm in this repo is a deterministic function of the answer
//! sequence (the PR 2 invariant), the replayed prefix is bit-identical on
//! every step — and on every *rehydration*: a machine rebuilt from a
//! journal read off disk after a crash lands in exactly the state the dead
//! process was in.
//!
//! Answer submission is strictly ordered (`seq == log.len() + 1`) and
//! idempotent at this layer: re-submitting an already-consumed `seq` is
//! acknowledged as a duplicate without touching the log. Sessions are
//! expired by [`SessionMachine::expire`], which appends a `dropped` fault:
//! the expert dead-latch then fails every later question fast and the
//! cleaner terminates with a PARTIAL REPORT through the ordinary
//! `unresolved` machinery — expiry needs no new code path in the cleaner.
//!
//! The cost of statelessness is recomputation: stepping a session of *n*
//! answers replays all *n*, so a full conversation is O(n²) replayed
//! answers. Replay is pure in-memory compute (no crowd latency, no I/O);
//! for the session sizes the paper's workloads produce (tens of
//! questions) it is far below the cost of one HTTP round-trip. Telemetry
//! counters incremented inside the cleaner (question counts, probe hits)
//! are re-incremented on every step — a documented inflation; the serve
//! layer's own `sessions.*`/`serve.*` metrics are exact.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use qoco_crowd::{
    install_suspend_hook, Answer, JournalRecord, OracleError, PendingQuestion, SingleExpert,
    SuspendSignal, SuspendingOracle,
};
use qoco_data::Database;
use qoco_query::ConjunctiveQuery;

use crate::cleaner::{clean_view, CleaningConfig, CleaningReport};

/// The immutable inputs of a cleaning session. Everything else — the
/// machine's whole mutable state — is the answer log.
#[derive(Clone)]
pub struct SessionSpec {
    /// The query whose view is being cleaned.
    pub query: ConjunctiveQuery,
    /// The dirty database, as submitted. Never mutated in place: every
    /// step clones it and replays the edits.
    pub dirty: Database,
    /// Cleaning strategy configuration.
    pub config: CleaningConfig,
    /// Idle allowance in milliseconds before the reaper may expire the
    /// session (`None`: never). Interpreted by the serve layer; carried
    /// in the spec so it survives restarts.
    pub deadline_ms: Option<u64>,
}

/// Where a stepped session stands.
pub enum SessionState {
    /// Parked: the cleaner needs this answer before it can continue.
    AwaitingAnswers(PendingQuestion),
    /// The cleaner ran to completion (the report may still be partial if
    /// faults were absorbed along the way).
    Finished(Box<FinishedSession>),
    /// The cleaner itself errored (e.g. iteration budget exhausted).
    Failed(String),
}

/// The terminal product of a session.
pub struct FinishedSession {
    /// The cleaning report (check [`CleaningReport::is_partial`]).
    pub report: CleaningReport,
    /// The cleaned database.
    pub cleaned: Database,
}

/// Accepted submission outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The answer was consumed and the machine stepped forward.
    Applied,
    /// `seq` was already consumed — acknowledged, nothing re-applied.
    Duplicate,
}

/// Rejected submissions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The session is finished or failed; nothing is awaited.
    NotAwaiting,
    /// `seq` is ahead of the question currently awaited.
    OutOfOrder {
        /// The sequence number the machine will accept next.
        expected: u64,
    },
    /// The answer's shape does not fit the pending question's kind.
    WrongShape,
    /// Only `abstain`/`dropped` faults may be submitted; timeouts are a
    /// transport concern the API never records.
    BadFault,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::NotAwaiting => write!(f, "session is not awaiting answers"),
            SubmitError::OutOfOrder { expected } => {
                write!(f, "out-of-order submission; expected seq {expected}")
            }
            SubmitError::WrongShape => {
                write!(f, "answer shape does not match the pending question")
            }
            SubmitError::BadFault => write!(f, "only abstain/dropped faults can be submitted"),
        }
    }
}

/// The resumable session state machine; see the module docs.
pub struct SessionMachine {
    spec: SessionSpec,
    log: Vec<JournalRecord>,
    state: SessionState,
}

impl SessionMachine {
    /// Start a fresh session: steps immediately to the first question (or
    /// straight to `Finished` for a query whose view needs no crowd).
    pub fn new(spec: SessionSpec) -> SessionMachine {
        SessionMachine::rehydrate(spec, Vec::new())
    }

    /// Rebuild a session from its persisted spec + consumed-answer log —
    /// the crash-recovery path. The replayed machine is bit-identical to
    /// the one the dead process held: same state, same pending question,
    /// and ultimately the same report.
    pub fn rehydrate(spec: SessionSpec, log: Vec<JournalRecord>) -> SessionMachine {
        let mut m = SessionMachine {
            spec,
            log,
            state: SessionState::Failed(String::new()), // replaced by step()
        };
        m.step();
        m
    }

    /// Re-run the cleaner over the current log. Idempotent; called
    /// automatically after every mutation.
    fn step(&mut self) {
        install_suspend_hook();
        // Surface the replay in the serve layer's in-flight inspector
        // (no-op outside a request).
        qoco_telemetry::set_request_phase("machine.step");
        let spec = &self.spec;
        let log = self.log.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut db = spec.dirty.clone();
            let oracle = SuspendingOracle::new(log);
            let mut crowd = SingleExpert::new(oracle);
            let report = clean_view(&spec.query, &mut db, &mut crowd, spec.config);
            (report, db)
        }));
        self.state = match outcome {
            Ok((Ok(report), cleaned)) => {
                SessionState::Finished(Box::new(FinishedSession { report, cleaned }))
            }
            Ok((Err(e), _)) => SessionState::Failed(e.to_string()),
            Err(payload) => match payload.downcast::<SuspendSignal>() {
                Ok(signal) => {
                    // The unwind jumped out of the cleaner mid-decision,
                    // past the finish_decision() that would have cleared
                    // the thread-local marker.
                    qoco_telemetry::clear_current_decision();
                    SessionState::AwaitingAnswers(signal.0)
                }
                Err(other) => resume_unwind(other),
            },
        };
    }

    /// The session's immutable inputs.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// The consumed-answer log (what the write-ahead journal persists).
    pub fn log(&self) -> &[JournalRecord] {
        &self.log
    }

    /// Current state.
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// The question the session is parked on, if any.
    pub fn pending(&self) -> Option<&PendingQuestion> {
        match &self.state {
            SessionState::AwaitingAnswers(p) => Some(p),
            _ => None,
        }
    }

    /// The finished session, if the cleaner has completed.
    pub fn finished(&self) -> Option<&FinishedSession> {
        match &self.state {
            SessionState::Finished(f) => Some(f),
            _ => None,
        }
    }

    /// Validate a submission for question `seq` without applying it.
    /// Distinguishes the idempotent-duplicate case (`Ok(Duplicate)`) from
    /// the four rejection reasons.
    pub fn check_submission(
        &self,
        seq: u64,
        outcome: &Result<Answer, OracleError>,
    ) -> Result<SubmitOutcome, SubmitError> {
        if seq >= 1 && seq <= self.log.len() as u64 {
            // already consumed: a retry of an acknowledged POST
            return Ok(SubmitOutcome::Duplicate);
        }
        let pending = match &self.state {
            SessionState::AwaitingAnswers(p) => p,
            _ => return Err(SubmitError::NotAwaiting),
        };
        if seq != pending.seq {
            return Err(SubmitError::OutOfOrder {
                expected: pending.seq,
            });
        }
        match outcome {
            Ok(answer) if !pending.accepts(answer) => Err(SubmitError::WrongShape),
            Err(OracleError::Timeout) => Err(SubmitError::BadFault),
            _ => Ok(SubmitOutcome::Applied),
        }
    }

    /// Consume an answer (or a sticky fault) for question `seq` and step
    /// the machine forward. Duplicates are acknowledged, not re-applied.
    ///
    /// The serve layer persists the record *before* calling this (write-
    /// ahead); use [`SessionMachine::record_for`] to build the exact
    /// record that will be applied.
    pub fn submit(
        &mut self,
        seq: u64,
        outcome: Result<Answer, OracleError>,
    ) -> Result<SubmitOutcome, SubmitError> {
        match self.check_submission(seq, &outcome)? {
            SubmitOutcome::Duplicate => Ok(SubmitOutcome::Duplicate),
            SubmitOutcome::Applied => {
                let record = self.record_for(outcome).expect("checked: awaiting");
                self.log.push(record);
                self.step();
                Ok(SubmitOutcome::Applied)
            }
        }
    }

    /// The journal record that [`SessionMachine::submit`] would append for
    /// `outcome` on the currently pending question (`None` if the session
    /// is not awaiting answers).
    pub fn record_for(&self, outcome: Result<Answer, OracleError>) -> Option<JournalRecord> {
        let pending = self.pending()?;
        Some(JournalRecord {
            seq: pending.seq,
            kind: pending.kind,
            outcome,
            decision: pending.decision,
            // Which HTTP request supplied this answer: the serve layer
            // marks its connection thread before dispatching into us.
            request: qoco_telemetry::current_request_id(),
        })
    }

    /// Expire the session: record a `dropped` fault for the pending
    /// question. The dead-expert latch then fails every later question
    /// fast, so the cleaner terminates with a PARTIAL REPORT through the
    /// existing unresolved machinery. No-op if the session already ended.
    pub fn expire(&mut self) -> Option<JournalRecord> {
        let record = self.record_for(Err(OracleError::Dropped))?;
        self.log.push(record.clone());
        self.step();
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_engine::answer_set;

    /// The Figure 1 fixture: ESP's false `12.07.98` final makes `(ESP)` a
    /// wrong answer of Q1; the ground truth has no missing answers.
    fn fig1_spec() -> SessionSpec {
        crate::figure1::figure1_spec()
    }

    /// Answer the pending question the way a perfect Figure 1 oracle
    /// would, driving the machine until it finishes. Returns the answers
    /// consumed.
    fn drive_to_completion(m: &mut SessionMachine) -> Vec<Answer> {
        use qoco_crowd::Oracle;
        let mut oracle = qoco_crowd::PerfectOracle::new(crate::figure1::figure1_ground());
        let mut consumed = Vec::new();
        for _ in 0..100 {
            let Some(p) = m.pending().cloned() else { break };
            let answer = oracle.answer(&p.question).expect("perfect oracle");
            consumed.push(answer.clone());
            assert_eq!(m.submit(p.seq, Ok(answer)), Ok(SubmitOutcome::Applied));
        }
        consumed
    }

    #[test]
    fn fresh_machine_parks_on_the_first_question() {
        let m = SessionMachine::new(fig1_spec());
        let p = m.pending().expect("Figure 1 needs the crowd");
        assert_eq!(p.seq, 1);
        assert_eq!(m.log().len(), 0);
    }

    #[test]
    fn driven_machine_cleans_figure1() {
        let mut m = SessionMachine::new(fig1_spec());
        let answers = drive_to_completion(&mut m);
        assert!(!answers.is_empty());
        let f = m.finished().expect("session finished");
        assert!(!f.report.is_partial());
        assert_eq!(f.report.wrong_answers, 1, "(ESP) was wrong");
        // the cleaned view equals the ground-truth view: only (GER), (FRA)
        // can win twice... actually only teams with two finals remain
        let spec = fig1_spec();
        let view = answer_set(&spec.query, &f.cleaned);
        assert!(!view
            .iter()
            .any(|t| t.values().first() == Some(&qoco_data::Value::text("ESP"))));
    }

    #[test]
    fn rehydration_is_bit_identical_at_every_prefix() {
        // run a session to completion, journal in hand; then for every
        // prefix of the log, rehydrate a fresh machine and check it parks
        // on the same question, then finishes with the same report
        let mut reference = SessionMachine::new(fig1_spec());
        drive_to_completion(&mut reference);
        let ref_report = format!("{}", reference.finished().unwrap().report);
        let full_log = reference.log().to_vec();
        for cut in 0..=full_log.len() {
            let mut m = SessionMachine::rehydrate(fig1_spec(), full_log[..cut].to_vec());
            if cut < full_log.len() {
                let p = m.pending().expect("mid-session prefix must park");
                assert_eq!(p.seq as usize, cut + 1);
                assert_eq!(p.kind, full_log[cut].kind, "same question at cut {cut}");
                // feed the remaining journal records straight back
                for rec in &full_log[cut..] {
                    assert_eq!(
                        m.submit(rec.seq, rec.outcome.clone()),
                        Ok(SubmitOutcome::Applied)
                    );
                }
            }
            let report = format!("{}", m.finished().expect("finished").report);
            assert_eq!(report, ref_report, "report identical from cut {cut}");
        }
    }

    #[test]
    fn duplicate_and_out_of_order_submissions() {
        let mut m = SessionMachine::new(fig1_spec());
        let p = m.pending().unwrap().clone();
        assert_eq!(
            m.submit(p.seq, Ok(Answer::Bool(true))),
            Ok(SubmitOutcome::Applied)
        );
        // duplicate of seq 1: acknowledged, log untouched, state unchanged
        let len = m.log().len();
        let next = m.pending().map(|p| p.seq);
        assert_eq!(
            m.submit(1, Ok(Answer::Bool(false))),
            Ok(SubmitOutcome::Duplicate)
        );
        assert_eq!(m.log().len(), len);
        assert_eq!(m.pending().map(|p| p.seq), next);
        // far-future seq: rejected with the expected seq
        let expected = m.pending().unwrap().seq;
        assert_eq!(
            m.submit(99, Ok(Answer::Bool(true))),
            Err(SubmitError::OutOfOrder { expected })
        );
    }

    #[test]
    fn wrong_shape_and_timeouts_are_rejected() {
        let mut m = SessionMachine::new(fig1_spec());
        let seq = m.pending().unwrap().seq;
        // Figure 1's first question is a boolean verification
        assert_eq!(
            m.submit(seq, Ok(Answer::Completion(None))),
            Err(SubmitError::WrongShape)
        );
        assert_eq!(
            m.submit(seq, Err(OracleError::Timeout)),
            Err(SubmitError::BadFault)
        );
        assert!(m.pending().is_some(), "rejections do not advance the log");
    }

    #[test]
    fn expiry_yields_a_partial_report() {
        let mut m = SessionMachine::new(fig1_spec());
        let rec = m.expire().expect("was awaiting");
        assert_eq!(rec.outcome, Err(OracleError::Dropped));
        let f = m.finished().expect("dead crowd terminates the session");
        assert!(f.report.is_partial());
        assert!(!f.report.unresolved.is_empty());
        // expiring a finished session is a no-op
        assert!(m.expire().is_none());
    }

    #[test]
    fn abstain_skips_one_question_but_the_session_continues() {
        let mut m = SessionMachine::new(fig1_spec());
        let seq = m.pending().unwrap().seq;
        assert_eq!(
            m.submit(seq, Err(OracleError::Abstain)),
            Ok(SubmitOutcome::Applied)
        );
        // the session moved past the abstained question
        match m.state() {
            SessionState::AwaitingAnswers(p) => assert!(p.seq > seq),
            SessionState::Finished(f) => assert!(f.report.is_partial()),
            SessionState::Failed(e) => panic!("abstain must not fail the session: {e}"),
        }
    }
}
