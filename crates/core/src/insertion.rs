//! Algorithm 2: `CrowdAddMissingAnswer` (paper Section 5).
//!
//! Given a missing answer `t ∈ Q(D_G) − Q(D)`:
//!
//! 1. embed `t` into the query (`Q|t`) and insert the *ground* body atoms
//!    outright — every witness of `t` in `D_G` contains them, so they must
//!    be true (Algorithm 2 lines 1–2);
//! 2. split `Q|t` into subqueries and evaluate each against `D`; every
//!    partial assignment found is shown to the crowd as a satisfiability
//!    check (`CrowdVerify`), and satisfiable ones are completed into a
//!    witness (`COMPL(α, Q|t)`), whose new facts become insertion edits;
//! 3. subqueries whose assignments all fail are split recursively;
//! 4. if no split-guided assignment works, fall back to the naïve approach:
//!    ask the crowd to produce the entire witness.

use std::collections::{BTreeSet, VecDeque};

use qoco_crowd::{CrowdAccess, CrowdError};
use qoco_data::{Database, Edit, EditLog, Fact, Tuple};
use qoco_engine::{delta_satisfiable, evaluate, is_satisfiable, Assignment, MaterializedView};
use qoco_query::{embed_answer, ConjunctiveQuery};
use qoco_telemetry::DecisionDetail;

use crate::error::CleanError;
use crate::split::SplitStrategy;
use crate::tracked::apply_tracked;

/// Options for the insertion algorithm.
#[derive(Debug, Clone, Copy)]
pub struct InsertionOptions {
    /// Cap on the partial assignments examined per subquery (guards
    /// pathological joins; the paper's experiments never get near it).
    pub max_assignments_per_subquery: usize,
}

impl Default for InsertionOptions {
    fn default() -> Self {
        InsertionOptions {
            max_assignments_per_subquery: 256,
        }
    }
}

/// The outcome of one answer-insertion run.
#[derive(Debug, Clone)]
pub struct InsertionOutcome {
    /// Insertion edits applied to the database, in order.
    pub edits: EditLog,
    /// Satisfiability questions asked.
    pub satisfiability_questions: usize,
    /// Variables the crowd filled in across completions.
    pub filled_variables: usize,
    /// The naïve upper bound: the number of distinct variables of `Q|t`
    /// (what the crowd would fill with no split at all, Section 7.2).
    pub upper_bound: usize,
    /// Whether the answer now appears in `Q(D)` (always true with a perfect
    /// oracle; can be false if an imperfect crowd fails to complete).
    pub achieved: bool,
    /// Set when the crowd became unavailable mid-run. Facts inserted
    /// *before* the failure were individually confirmed and stay applied;
    /// the answer may still be missing and should be reported unresolved.
    pub failure: Option<CrowdError>,
}

/// Run Algorithm 2 to add the missing answer `t` to `Q(D)` using the given
/// split strategy.
pub fn crowd_add_missing_answer<C: CrowdAccess + ?Sized>(
    q: &ConjunctiveQuery,
    db: &mut Database,
    t: &Tuple,
    crowd: &mut C,
    split: &mut dyn SplitStrategy,
    opts: InsertionOptions,
) -> Result<InsertionOutcome, CleanError> {
    crowd_add_missing_answer_tracked(q, db, t, crowd, split, opts, &mut [])
}

/// [`crowd_add_missing_answer`] that also keeps materialized `views`
/// current: every insertion edit notifies the views incrementally. The
/// post-insertion "is `t` now an answer?" recheck uses seeded delta
/// satisfiability probes over the facts just inserted rather than a full
/// `Q|t` evaluation — sound because the answer was missing beforehand, so
/// any new witness must use at least one newly inserted fact.
pub fn crowd_add_missing_answer_tracked<C: CrowdAccess + ?Sized>(
    q: &ConjunctiveQuery,
    db: &mut Database,
    t: &Tuple,
    crowd: &mut C,
    split: &mut dyn SplitStrategy,
    opts: InsertionOptions,
    views: &mut [MaterializedView],
) -> Result<InsertionOutcome, CleanError> {
    let span = qoco_telemetry::span("insertion.add_answer")
        .field("answer", t.to_string())
        .field("split", split.name());
    let q_t = embed_answer(q, t.values())?;
    let upper_bound = q_t.vars().len();
    let mut edits = EditLog::new();
    let stats_before = crowd.stats();

    // Lines 1–2: ground atoms of body(Q|t) are facts of every witness of t
    // in the ground truth, hence true — insert them without asking.
    for atom in q_t.atoms() {
        if atom.is_ground() {
            let fact = Assignment::new().ground_atom(atom).expect("ground atom");
            if !db.contains(&fact) {
                let e = Edit::insert(fact);
                apply_tracked(db, views, &e)?;
                edits.push(e);
            }
        }
    }

    let mut achieved = !qt_missing(&q_t, db);
    let mut asked: BTreeSet<Assignment> = BTreeSet::new();
    // The queue pairs each subquery with its split-tree path ("Q|t.L.R"
    // = right child of the left child of the root), so every question's
    // provenance names where in the split tree it arose. Paths are only
    // materialized while telemetry is on; otherwise they stay empty
    // (allocation-free) strings.
    let provenance_on = qoco_telemetry::enabled();
    let child_path = |parent: &str, side: &str| {
        if provenance_on {
            format!("{parent}.{side}")
        } else {
            String::new()
        }
    };
    let mut queue: VecDeque<(ConjunctiveQuery, String)> = VecDeque::new();
    if !achieved {
        if let Some((a, b)) = split.split(&q_t, db) {
            queue.push_back((a, child_path("Q|t", "L")));
            queue.push_back((b, child_path("Q|t", "R")));
        }
    }

    let mut failure: Option<CrowdError> = None;

    // Main loop (lines 4–17).
    'outer: while !achieved && failure.is_none() {
        let Some((curr, path)) = queue.pop_front() else {
            break;
        };
        let result = evaluate(&curr, db);
        let mut assignments = result.assignments;
        assignments.truncate(opts.max_assignments_per_subquery);
        for alpha in assignments {
            if !asked.insert(alpha.clone()) {
                continue; // already examined this partial assignment
            }
            // CrowdVerify(α(body(Q|t))): is α satisfiable w.r.t. Q|t, D_G?
            let decision = qoco_telemetry::begin_decision();
            let verdict = crowd.verify_satisfiable(&q_t, &alpha);
            qoco_telemetry::finish_decision(decision, "insertion.verify_satisfiable", || {
                DecisionDetail {
                    question: format!("SAT({alpha:?}, {})?", q_t.name()),
                    outcome: match &verdict {
                        Ok(v) => v.to_string(),
                        Err(e) => format!("error: {e}"),
                    },
                    evidence: vec![
                        ("split_path", path.clone()),
                        ("subquery", curr.display().to_string()),
                        ("assignment", format!("{alpha:?}")),
                    ],
                }
            });
            match verdict {
                Ok(true) => {}
                Ok(false) => continue,
                Err(e) => {
                    failure = Some(e);
                    break 'outer;
                }
            }
            let total = if alpha.is_total_for(&q_t) {
                Some(alpha.clone())
            } else {
                // COMPL(α, Q|t)
                let decision = qoco_telemetry::begin_decision();
                let completion = crowd.complete(&q_t, &alpha);
                qoco_telemetry::finish_decision(decision, "insertion.complete", || {
                    DecisionDetail {
                        question: format!("COMPL({alpha:?}, {})", q_t.name()),
                        outcome: match &completion {
                            Ok(Some(total)) => format!("completed: {total:?}"),
                            Ok(None) => "unsatisfiable".to_string(),
                            Err(e) => format!("error: {e}"),
                        },
                        evidence: vec![
                            ("split_path", path.clone()),
                            ("subquery", curr.display().to_string()),
                            ("assignment", format!("{alpha:?}")),
                        ],
                    }
                });
                match completion {
                    Ok(total) => total,
                    Err(e) => {
                        failure = Some(e);
                        break 'outer;
                    }
                }
            };
            if let Some(total) = total {
                let fresh = apply_witness_insertions(&q_t, db, views, &total, &mut edits)?;
                // The answer was missing before these insertions, so a new
                // witness must use one of the fresh facts: seeded probes
                // replace the full `Q|t` evaluation. No fresh facts ⇒ the
                // database is unchanged and the answer is still missing.
                achieved = fresh.iter().any(|f| delta_satisfiable(&q_t, db, f));
                if achieved {
                    break 'outer;
                }
            }
        }
        // Line 16–17: recurse into smaller subqueries.
        if curr.atoms().len() > 1 {
            if let Some((a, b)) = split.split(&curr, db) {
                queue.push_back((a, child_path(&path, "L")));
                queue.push_back((b, child_path(&path, "R")));
            }
        }
    }

    // Line 18: fall back to a full witness request.
    if !achieved && failure.is_none() {
        let decision = qoco_telemetry::begin_decision();
        let completion = crowd.complete(&q_t, &Assignment::new());
        qoco_telemetry::finish_decision(decision, "insertion.complete", || DecisionDetail {
            question: format!("COMPL(∅, {})", q_t.name()),
            outcome: match &completion {
                Ok(Some(total)) => format!("completed: {total:?}"),
                Ok(None) => "unsatisfiable".to_string(),
                Err(e) => format!("error: {e}"),
            },
            evidence: vec![
                ("split_path", "naive-fallback".to_string()),
                ("subquery", q_t.display().to_string()),
            ],
        });
        match completion {
            Ok(Some(total)) => {
                let fresh = apply_witness_insertions(&q_t, db, views, &total, &mut edits)?;
                achieved = fresh.iter().any(|f| delta_satisfiable(&q_t, db, f));
            }
            Ok(None) => {}
            Err(e) => failure = Some(e),
        }
    }

    let stats = crowd.stats().since(&stats_before);
    span.field("achieved", achieved)
        .field("insertions", edits.insertions())
        .finish();
    Ok(InsertionOutcome {
        edits,
        satisfiability_questions: stats.satisfiable_questions,
        filled_variables: stats.filled_variables,
        upper_bound,
        achieved,
        failure,
    })
}

/// Is `Q|t(D)` still empty (the answer still missing)?
fn qt_missing(q_t: &ConjunctiveQuery, db: &Database) -> bool {
    !is_satisfiable(q_t, db, &Assignment::new())
}

/// Insert the facts of `total(body(Q|t))` that are absent from `db`,
/// notifying `views` per edit. Returns the newly inserted facts (the seeds
/// for the delta satisfiability recheck).
fn apply_witness_insertions(
    q_t: &ConjunctiveQuery,
    db: &mut Database,
    views: &mut [MaterializedView],
    total: &Assignment,
    edits: &mut EditLog,
) -> Result<Vec<Fact>, CleanError> {
    let mut fresh = Vec::new();
    for atom in q_t.atoms() {
        let Some(fact) = total.ground_atom(atom) else {
            // A lying crowd can return a non-total "completion"; skip it.
            return Ok(fresh);
        };
        if !db.contains(&fact) {
            let e = Edit::insert(fact.clone());
            apply_tracked(db, views, &e)?;
            edits.push(e);
            fresh.push(fact);
        }
    }
    Ok(fresh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::{MinCutSplit, NaiveSplit, ProvenanceSplit, RandomSplit};
    use qoco_crowd::{PerfectOracle, SingleExpert};
    use qoco_data::{tup, Schema};
    use qoco_engine::answer_set;
    use qoco_query::parse_query;
    use std::sync::Arc;

    /// The Example 5.4 scenario: Teams(ITA, EU) missing ⇒ (Pirlo) missing
    /// from Q2(D).
    fn setup() -> (Arc<Schema>, Database, Database, ConjunctiveQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .relation("Players", &["name", "team", "birth_year", "birth_place"])
            .relation("Goals", &["name", "date"])
            .build()
            .unwrap();
        let mut d = Database::empty(schema.clone());
        d.insert_named("Games", tup!["09.06.06", "ITA", "FRA", "Final", "5:3"])
            .unwrap();
        for (c, k) in [("GER", "EU"), ("ESP", "EU"), ("BRA", "SA")] {
            d.insert_named("Teams", tup![c, k]).unwrap();
        }
        d.insert_named("Players", tup!["Pirlo", "ITA", 1979, "ITA"])
            .unwrap();
        d.insert_named("Goals", tup!["Pirlo", "09.06.06"]).unwrap();
        // ground truth: D plus the missing Teams fact
        let mut g = d.clone();
        g.insert_named("Teams", tup!["ITA", "EU"]).unwrap();
        let q = parse_query(
            &schema,
            r#"Q2(x) :- Players(x, y, z, w), Goals(x, d), Games(d, y, v, "Final", u), Teams(y, "EU")."#,
        )
        .unwrap();
        (schema, d, g, q)
    }

    #[test]
    fn provenance_split_adds_pirlo_with_one_insertion() {
        let (_, mut d, g, q) = setup();
        assert!(!answer_set(&q, &d).contains(&tup!["Pirlo"]));
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let out = crowd_add_missing_answer(
            &q,
            &mut d,
            &tup!["Pirlo"],
            &mut crowd,
            &mut ProvenanceSplit,
            InsertionOptions::default(),
        )
        .unwrap();
        assert!(out.achieved);
        assert!(answer_set(&q, &d).contains(&tup!["Pirlo"]));
        // only Teams(ITA, EU) needed inserting (Example 5.4's conclusion)
        assert_eq!(out.edits.insertions(), 1);
        let inserted = &out.edits.edits()[0].fact;
        assert_eq!(inserted.tuple, tup!["ITA", "EU"]);
    }

    #[test]
    fn provenance_beats_naive_on_filled_variables() {
        let (_, d, g, q) = setup();
        let run = |mut split: Box<dyn SplitStrategy>, d: &Database| {
            let mut di = d.clone();
            let mut crowd = SingleExpert::new(PerfectOracle::new(g.clone()));
            crowd_add_missing_answer(
                &q,
                &mut di,
                &tup!["Pirlo"],
                &mut crowd,
                &mut *split,
                InsertionOptions::default(),
            )
            .unwrap()
        };
        let prov = run(Box::new(ProvenanceSplit), &d);
        let naive = run(Box::new(NaiveSplit), &d);
        assert!(prov.achieved && naive.achieved);
        // Naïve asks the crowd to fill all 6 variables of Q2|t; with the
        // provenance split, the crowd fills at most the one subquery
        // variable (y) — and the final completion costs nothing extra
        // because the winning partial assignment was already total.
        assert_eq!(naive.filled_variables, q.vars().len() - 1); // x is bound by t
        assert!(
            prov.filled_variables < naive.filled_variables,
            "prov {} vs naive {}",
            prov.filled_variables,
            naive.filled_variables
        );
    }

    #[test]
    fn all_split_strategies_achieve_the_insertion() {
        let (_, d, g, q) = setup();
        let strategies: Vec<Box<dyn SplitStrategy>> = vec![
            Box::new(ProvenanceSplit),
            Box::new(MinCutSplit),
            Box::new(RandomSplit::new(5)),
            Box::new(NaiveSplit),
        ];
        for mut s in strategies {
            let mut di = d.clone();
            let mut crowd = SingleExpert::new(PerfectOracle::new(g.clone()));
            let out = crowd_add_missing_answer(
                &q,
                &mut di,
                &tup!["Pirlo"],
                &mut crowd,
                &mut *s,
                InsertionOptions::default(),
            )
            .unwrap();
            assert!(out.achieved, "strategy {} failed", s.name());
            assert!(answer_set(&q, &di).contains(&tup!["Pirlo"]));
        }
    }

    #[test]
    fn ground_atoms_are_inserted_without_questions() {
        // Query whose embedded body contains a fully-ground atom.
        let schema = Schema::builder()
            .relation("A", &["x"])
            .relation("B", &["x", "y"])
            .build()
            .unwrap();
        let mut d = Database::empty(schema.clone());
        d.insert_named("B", tup!["t", "z"]).unwrap();
        let mut g = Database::empty(schema.clone());
        g.insert_named("A", tup!["t"]).unwrap();
        g.insert_named("B", tup!["t", "z"]).unwrap();
        let q = parse_query(&schema, "(x) :- A(x), B(x, y)").unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let out = crowd_add_missing_answer(
            &q,
            &mut d,
            &tup!["t"],
            &mut crowd,
            &mut ProvenanceSplit,
            InsertionOptions::default(),
        )
        .unwrap();
        assert!(out.achieved);
        // A("t") is ground in Q|t and inserted for free:
        assert_eq!(out.satisfiability_questions + out.filled_variables, 0);
        assert_eq!(crowd.stats().complete_tasks, 0);
    }

    #[test]
    fn upper_bound_counts_qt_variables() {
        let (_, mut d, g, q) = setup();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let out = crowd_add_missing_answer(
            &q,
            &mut d,
            &tup!["Pirlo"],
            &mut crowd,
            &mut ProvenanceSplit,
            InsertionOptions::default(),
        )
        .unwrap();
        // Q2 has 7 variables; x is bound by the answer → 6 remain in Q|t.
        assert_eq!(out.upper_bound, 6);
    }

    #[test]
    fn unachievable_answer_with_perfect_oracle_stays_missing() {
        let (_, mut d, g, q) = setup();
        // (Messi) is not an answer of Q2(D_G): the oracle will refuse every
        // completion, and the outcome reports achieved = false.
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let out = crowd_add_missing_answer(
            &q,
            &mut d,
            &tup!["Messi"],
            &mut crowd,
            &mut ProvenanceSplit,
            InsertionOptions::default(),
        )
        .unwrap();
        assert!(!out.achieved);
        assert!(out.edits.is_empty());
    }

    #[test]
    fn already_present_answer_is_free() {
        let (_, mut d, g, q) = setup();
        d.insert_named("Teams", tup!["ITA", "EU"]).unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let out = crowd_add_missing_answer(
            &q,
            &mut d,
            &tup!["Pirlo"],
            &mut crowd,
            &mut ProvenanceSplit,
            InsertionOptions::default(),
        )
        .unwrap();
        assert!(out.achieved);
        assert!(out.edits.is_empty());
        assert_eq!(out.satisfiability_questions, 0);
        assert_eq!(out.filled_variables, 0);
    }

    #[test]
    fn violated_embedding_is_an_error() {
        let schema = Schema::builder()
            .relation("G", &["w", "r"])
            .build()
            .unwrap();
        let d = Database::empty(schema.clone());
        let g = Database::empty(schema.clone());
        let q = parse_query(&schema, "(x, y) :- G(x, y), x != y").unwrap();
        let mut di = d.clone();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let err = crowd_add_missing_answer(
            &q,
            &mut di,
            &tup!["a", "a"],
            &mut crowd,
            &mut NaiveSplit,
            InsertionOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CleanError::Query(_)));
    }
}
