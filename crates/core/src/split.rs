//! The `Split()` implementations of Section 5.2.
//!
//! Splitting breaks a query into two subqueries whose partial assignments
//! over `D` guide the crowd toward a witness for a missing answer. The
//! paper examines four approaches:
//!
//! * **Provenance** — consult the why-not analysis (our stand-in for the
//!   WhyNot? system \[60\]) and split at the join operator responsible for
//!   excluding the missing answer;
//! * **Min-Cut** — cut the weighted query graph (shared variables +
//!   inequalities) with a global min-cut, preferring splits that keep both
//!   sides connected and lose few inequalities;
//! * **Random** — a random bipartition of the atoms;
//! * **Naïve** — no split at all: ask the crowd for the whole witness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qoco_data::Database;
use qoco_engine::frontier_split;
use qoco_graph::{global_min_cut, WeightedGraph};
use qoco_query::{split_by_atom_partition, ConjunctiveQuery, QueryGraph};

/// A strategy for splitting a query into two subqueries.
pub trait SplitStrategy {
    /// Split `q` (evaluated against `db` where the strategy is
    /// data-directed). `None` means "do not split" — the insertion
    /// algorithm then falls back to asking for the whole witness.
    fn split(
        &mut self,
        q: &ConjunctiveQuery,
        db: &Database,
    ) -> Option<(ConjunctiveQuery, ConjunctiveQuery)>;

    /// Label used in figures.
    fn name(&self) -> &'static str;
}

/// Identifier for constructing strategies from experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategyKind {
    /// No split ([`NaiveSplit`]).
    Naive,
    /// Random bipartition with the given seed ([`RandomSplit`]).
    Random(u64),
    /// Query-graph min-cut ([`MinCutSplit`]).
    MinCut,
    /// Why-not-guided split ([`ProvenanceSplit`]).
    Provenance,
}

impl SplitStrategyKind {
    /// Instantiate the strategy, wrapped for telemetry (split timings and
    /// the `insertion.splits_generated` counter).
    pub fn build(self) -> Box<dyn SplitStrategy> {
        let inner: Box<dyn SplitStrategy> = match self {
            SplitStrategyKind::Naive => Box::new(NaiveSplit),
            SplitStrategyKind::Random(seed) => Box::new(RandomSplit::new(seed)),
            SplitStrategyKind::MinCut => Box::new(MinCutSplit),
            SplitStrategyKind::Provenance => Box::new(ProvenanceSplit),
        };
        Box::new(InstrumentedSplit { inner })
    }

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            SplitStrategyKind::Naive => "Naive",
            SplitStrategyKind::Random(_) => "Random",
            SplitStrategyKind::MinCut => "Min-Cut",
            SplitStrategyKind::Provenance => "Provenance",
        }
    }
}

/// The naïve approach: never split; the crowd completes the whole witness.
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveSplit;

impl SplitStrategy for NaiveSplit {
    fn split(
        &mut self,
        _q: &ConjunctiveQuery,
        _db: &Database,
    ) -> Option<(ConjunctiveQuery, ConjunctiveQuery)> {
        None
    }

    fn name(&self) -> &'static str {
        "Naive"
    }
}

/// Random bipartition of the body atoms (both sides non-empty).
#[derive(Debug)]
pub struct RandomSplit {
    rng: StdRng,
}

impl RandomSplit {
    /// Seeded random splitter.
    pub fn new(seed: u64) -> Self {
        RandomSplit {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SplitStrategy for RandomSplit {
    fn split(
        &mut self,
        q: &ConjunctiveQuery,
        _db: &Database,
    ) -> Option<(ConjunctiveQuery, ConjunctiveQuery)> {
        let n = q.atoms().len();
        if n < 2 {
            return None;
        }
        // draw masks until non-trivial (n ≥ 2 ⇒ succeeds quickly)
        let mask: Vec<bool> = loop {
            let m: Vec<bool> = (0..n).map(|_| self.rng.random::<bool>()).collect();
            if m.iter().any(|&b| b) && m.iter().any(|&b| !b) {
                break m;
            }
        };
        split_by_atom_partition(q, &mask).ok()
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

/// Query-directed split: global min-cut of the weighted query graph
/// (Section 5.2, Figure 2 left).
#[derive(Debug, Default, Clone, Copy)]
pub struct MinCutSplit;

impl SplitStrategy for MinCutSplit {
    fn split(
        &mut self,
        q: &ConjunctiveQuery,
        _db: &Database,
    ) -> Option<(ConjunctiveQuery, ConjunctiveQuery)> {
        let n = q.atoms().len();
        if n < 2 {
            return None;
        }
        let qg = QueryGraph::build(q);
        let mut wg = WeightedGraph::new(n);
        for e in qg.edges() {
            wg.add_edge(e.a, e.b, e.weight);
        }
        let cut = global_min_cut(&wg)?;
        split_by_atom_partition(q, &cut.side).ok()
    }

    fn name(&self) -> &'static str {
        "Min-Cut"
    }
}

/// Data-directed split: ask the why-not analysis which join excluded the
/// missing answer and cut there (Section 5.2, Figure 2 right).
///
/// When the why-not analysis has nothing to blame (the query is satisfiable
/// or has a single atom) we fall back to a min-cut split so that recursive
/// splitting still makes progress.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProvenanceSplit;

impl SplitStrategy for ProvenanceSplit {
    fn split(
        &mut self,
        q: &ConjunctiveQuery,
        db: &Database,
    ) -> Option<(ConjunctiveQuery, ConjunctiveQuery)> {
        if q.atoms().len() < 2 {
            return None;
        }
        match frontier_split(q, db) {
            Some(mask) => split_by_atom_partition(q, &mask).ok(),
            None => MinCutSplit.split(q, db),
        }
    }

    fn name(&self) -> &'static str {
        "Provenance"
    }
}

/// Decorator that reports each split to the telemetry layer: a
/// `split.compute_ns` histogram observation per call, one
/// `insertion.splits_generated` count per successful split, and an
/// `insertion.split` decision record naming the strategy and both halves.
/// Inert (two atomic loads) while telemetry is disabled.
pub struct InstrumentedSplit {
    inner: Box<dyn SplitStrategy>,
}

impl InstrumentedSplit {
    /// Wrap an existing strategy.
    pub fn new(inner: Box<dyn SplitStrategy>) -> Self {
        InstrumentedSplit { inner }
    }
}

impl SplitStrategy for InstrumentedSplit {
    fn split(
        &mut self,
        q: &ConjunctiveQuery,
        db: &Database,
    ) -> Option<(ConjunctiveQuery, ConjunctiveQuery)> {
        if !qoco_telemetry::enabled() {
            return self.inner.split(q, db);
        }
        let start = qoco_telemetry::now_ns();
        let out = self.inner.split(q, db);
        qoco_telemetry::histogram_record(
            "split.compute_ns",
            qoco_telemetry::now_ns().saturating_sub(start),
        );
        if out.is_some() {
            qoco_telemetry::counter_add("insertion.splits_generated", 1);
        }
        qoco_telemetry::record_decision("insertion.split", || qoco_telemetry::DecisionDetail {
            question: format!("Split({})?", q.display()),
            outcome: match &out {
                Some((a, b)) => format!("{} | {}", a.display(), b.display()),
                None => "no split (whole-witness completion)".to_string(),
            },
            evidence: vec![("strategy", self.inner.name().to_string())],
        });
        out
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{tup, Schema};
    use qoco_query::{embed_answer, parse_query};
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Database, ConjunctiveQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .relation("Players", &["name", "team", "birth_year", "birth_place"])
            .relation("Goals", &["name", "date"])
            .build()
            .unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_named("Games", tup!["09.06.06", "ITA", "FRA", "Final", "5:3"])
            .unwrap();
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        db.insert_named("Players", tup!["Pirlo", "ITA", 1979, "ITA"])
            .unwrap();
        db.insert_named("Goals", tup!["Pirlo", "09.06.06"]).unwrap();
        let q = parse_query(
            &schema,
            r#"Q2(x) :- Players(x, y, z, w), Goals(x, d), Games(d, y, v, "Final", u), Teams(y, "EU")."#,
        )
        .unwrap();
        (schema, db, q)
    }

    #[test]
    fn naive_never_splits() {
        let (_, db, q) = setup();
        assert!(NaiveSplit.split(&q, &db).is_none());
        assert_eq!(NaiveSplit.name(), "Naive");
    }

    #[test]
    fn random_split_covers_all_atoms_once() {
        let (_, db, q) = setup();
        let mut s = RandomSplit::new(11);
        let (a, b) = s.split(&q, &db).unwrap();
        assert_eq!(a.atoms().len() + b.atoms().len(), q.atoms().len());
        assert!(!a.atoms().is_empty() && !b.atoms().is_empty());
    }

    #[test]
    fn random_split_is_seeded() {
        let (_, db, q) = setup();
        let r1 = RandomSplit::new(3).split(&q, &db).unwrap();
        let r2 = RandomSplit::new(3).split(&q, &db).unwrap();
        assert_eq!(r1.0.atoms(), r2.0.atoms());
    }

    #[test]
    fn single_atom_queries_are_never_split() {
        let (schema, db, _) = setup();
        let q = parse_query(&schema, r#"(x) :- Teams(x, "EU")"#).unwrap();
        assert!(RandomSplit::new(0).split(&q, &db).is_none());
        assert!(MinCutSplit.split(&q, &db).is_none());
        assert!(ProvenanceSplit.split(&q, &db).is_none());
    }

    #[test]
    fn mincut_split_cuts_cheaply() {
        let (_, db, q) = setup();
        let (a, b) = MinCutSplit.split(&q, &db).unwrap();
        assert_eq!(a.atoms().len() + b.atoms().len(), 4);
        // Teams(y, EU) hangs off the rest by the single variable y, so a
        // min cut isolates it (weight 1 vs ≥ 2 elsewhere).
        let single_side = if a.atoms().len() == 1 { &a } else { &b };
        assert_eq!(single_side.atoms().len(), 1);
    }

    #[test]
    fn provenance_split_blames_the_missing_side() {
        let (_, db, q) = setup();
        let q_t = embed_answer(&q, &[qoco_data::Value::text("Pirlo")]).unwrap();
        let (sat, exc) = ProvenanceSplit.split(&q_t, &db).unwrap();
        // Teams(ITA, EU) is the missing fact: the excluded side is exactly
        // the Teams atom.
        assert_eq!(exc.atoms().len(), 1);
        let teams = q.schema().rel_id("Teams").unwrap();
        assert_eq!(exc.atoms()[0].rel, teams);
        assert_eq!(sat.atoms().len(), 3);
    }

    #[test]
    fn provenance_falls_back_to_mincut_when_satisfiable() {
        let (_, mut db, q) = setup();
        // make the whole query satisfiable
        db.insert_named("Teams", tup!["ITA", "EU"]).unwrap();
        let split = ProvenanceSplit.split(&q, &db);
        assert!(split.is_some(), "fallback must still split");
    }

    #[test]
    fn kind_builds_matching_strategy() {
        assert_eq!(SplitStrategyKind::Naive.build().name(), "Naive");
        assert_eq!(SplitStrategyKind::Random(1).build().name(), "Random");
        assert_eq!(SplitStrategyKind::MinCut.build().name(), "Min-Cut");
        assert_eq!(SplitStrategyKind::Provenance.build().name(), "Provenance");
        assert_eq!(SplitStrategyKind::MinCut.label(), "Min-Cut");
    }
}
