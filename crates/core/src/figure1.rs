//! The paper's Figure 1 running example as a canonical session fixture.
//!
//! The dirty database holds World Cup finals with one false fact —
//! `Games("12.07.98", "ESP", "NED", "Final", "4:2")` (France, not Spain,
//! won that final) — which makes `(ESP)` a wrong answer of the two-time
//! EU-winners query Q1. The ground truth is the dirty database without
//! that fact; Q1 over it has no missing answers, so a perfectly-answered
//! cleaning session converges after one deletion.
//!
//! Shared by the core machine tests, the serve API's
//! `{"example":"figure1"}` constructor, the `qoco-serve oracle` helper,
//! and the bench crate's `validate-sessions` replay gate — all of which
//! rely on cleaning being a deterministic function of (this spec, the
//! answer sequence).

use qoco_data::{Database, Fact, Schema, Tuple, Value};
use qoco_query::parse_query;

use crate::{CleaningConfig, SessionSpec};

fn row(cells: &[&str]) -> Tuple {
    Tuple::new(cells.iter().map(Value::text).collect())
}

/// The Figure 1 cleaning-session spec: dirty database + query Q1.
pub fn figure1_spec() -> SessionSpec {
    let schema = Schema::builder()
        .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
        .relation("Teams", &["country", "continent"])
        .build()
        .expect("static schema");
    let mut dirty = Database::empty(schema.clone());
    for r in [
        ["13.07.14", "GER", "ARG", "Final", "1:0"],
        ["11.07.10", "ESP", "NED", "Final", "1:0"],
        ["12.07.98", "ESP", "NED", "Final", "4:2"],
        ["12.07.98", "FRA", "BRA", "Final", "3:0"],
    ] {
        dirty.insert_named("Games", row(&r)).expect("static rows");
    }
    for r in [["GER", "EU"], ["ESP", "EU"]] {
        dirty.insert_named("Teams", row(&r)).expect("static rows");
    }
    let query = parse_query(
        &schema,
        "Q1(x) :- Games(d1, x, y, \"Final\", u1), Games(d2, x, z, \"Final\", u2), \
         Teams(x, \"EU\"), d1 != d2",
    )
    .expect("static query");
    SessionSpec {
        query,
        dirty,
        config: CleaningConfig::default(),
        deadline_ms: None,
    }
}

/// Figure 1's ground truth: the dirty database minus the false final.
/// What a perfect crowd member consults when answering the session's
/// questions; the server never sees it.
pub fn figure1_ground() -> Database {
    let spec = figure1_spec();
    let mut g = spec.dirty;
    let games = g.schema().rel_id("Games").expect("static schema");
    g.remove(&Fact::new(
        games,
        row(&["12.07.98", "ESP", "NED", "Final", "4:2"]),
    ))
    .expect("fact present");
    g
}
