//! Constraint-aware edit application (paper Section 9 future work).
//!
//! When the cleaner derives an edit that would violate a declared key or
//! foreign-key constraint, the violation itself is information: two facts
//! conflicting on a key cannot both be true, and a referencing fact needs
//! its referenced tuple. This module resolves each violation through crowd
//! questions:
//!
//! * **key conflict on insert** — ask `TRUE(existing)?`: a NO deletes the
//!   stale fact and admits the new one; a YES re-checks the new fact and
//!   drops it when the crowd rejects it (two YES answers are recorded as an
//!   unresolved anomaly and the existing fact wins);
//! * **dangling reference on insert** — ask the crowd to complete the
//!   referenced tuple (`COMPL` over a single-atom query with the key
//!   columns fixed) and insert it first, recursively applying constraints;
//! * **stranding delete** — each stranded referencing fact is verified;
//!   false ones are cascade-deleted, true ones are kept and reported (the
//!   database temporarily violates the constraint, which the paper's model
//!   permits for a dirty database).

use qoco_crowd::CrowdAccess;
use qoco_data::{ConstraintSet, Database, Edit, EditKind, EditLog, Violation};
use qoco_engine::Assignment;
use qoco_query::{Atom, ConjunctiveQuery, Term, Var};

use crate::error::CleanError;

/// The result of constraint-aware edit application.
#[derive(Debug, Clone)]
pub struct ConstrainedOutcome {
    /// Every edit applied, including repairs, in order.
    pub edits: EditLog,
    /// Violations the crowd could not resolve (kept in the database).
    pub unresolved: Vec<Violation>,
}

/// Apply `edit` to `db`, resolving any key/foreign-key violations through
/// crowd questions. Recursive repairs are depth-limited to guard against
/// cyclic foreign keys.
pub fn apply_edit_with_constraints<C: CrowdAccess + ?Sized>(
    db: &mut Database,
    edit: &Edit,
    constraints: &ConstraintSet,
    crowd: &mut C,
) -> Result<ConstrainedOutcome, CleanError> {
    let mut outcome = ConstrainedOutcome {
        edits: EditLog::new(),
        unresolved: Vec::new(),
    };
    apply_rec(db, edit, constraints, crowd, &mut outcome, 8)?;
    Ok(outcome)
}

fn apply_rec<C: CrowdAccess + ?Sized>(
    db: &mut Database,
    edit: &Edit,
    constraints: &ConstraintSet,
    crowd: &mut C,
    outcome: &mut ConstrainedOutcome,
    depth: usize,
) -> Result<(), CleanError> {
    if depth == 0 {
        // cyclic dependencies: apply the edit and report remaining
        // violations unresolved
        outcome
            .unresolved
            .extend(constraints.edit_violations(db, edit));
        if db.apply(edit)? {
            outcome.edits.push(edit.clone());
        }
        return Ok(());
    }
    let violations = constraints.edit_violations(db, edit);
    let mut admit = true;
    for v in violations {
        match v {
            Violation::KeyConflict { existing, .. } => {
                let decision = qoco_telemetry::begin_decision();
                let verdict = crowd.verify_fact(&existing);
                qoco_telemetry::finish_decision(decision, "constrained.key_conflict", || {
                    qoco_telemetry::DecisionDetail {
                        question: format!("TRUE({existing:?})?"),
                        outcome: match &verdict {
                            Ok(v) => v.to_string(),
                            Err(e) => format!("error: {e}"),
                        },
                        evidence: vec![
                            ("conflicting_insert", format!("{:?}", edit.fact)),
                            (
                                "rationale",
                                "two facts conflicting on a key cannot both be true".to_string(),
                            ),
                        ],
                    }
                });
                match verdict {
                    Ok(true) => {
                        // existing is true; is the new fact also claimed
                        // true? (A crowd failure here counts as "not
                        // confirmed": the conflict stays on record.)
                        let both = edit.kind == EditKind::Insert && {
                            let decision = qoco_telemetry::begin_decision();
                            let recheck = crowd.verify_fact(&edit.fact);
                            qoco_telemetry::finish_decision(
                                decision,
                                "constrained.key_conflict",
                                || qoco_telemetry::DecisionDetail {
                                    question: format!("TRUE({:?})?", edit.fact),
                                    outcome: match &recheck {
                                        Ok(v) => v.to_string(),
                                        Err(e) => format!("error: {e}"),
                                    },
                                    evidence: vec![
                                        ("conflicting_existing", format!("{existing:?}")),
                                        (
                                            "rationale",
                                            "existing fact confirmed true; recheck the \
                                             insert before declaring an anomaly"
                                                .to_string(),
                                        ),
                                    ],
                                },
                            );
                            recheck.unwrap_or(true)
                        };
                        if both {
                            // both true (or unverifiable): impossible under
                            // the key — keep the existing fact, report, and
                            // skip the insert
                            outcome.unresolved.push(Violation::KeyConflict {
                                rel: existing.rel,
                                fact: edit.fact.clone(),
                                existing,
                            });
                        }
                        admit = false;
                    }
                    Ok(false) => {
                        let repair = Edit::delete(existing);
                        apply_rec(db, &repair, constraints, crowd, outcome, depth - 1)?;
                    }
                    Err(_) => {
                        // crowd unavailable: keep the existing fact, leave
                        // the conflict unresolved, refuse the new one
                        outcome.unresolved.push(Violation::KeyConflict {
                            rel: existing.rel,
                            fact: edit.fact.clone(),
                            existing,
                        });
                        admit = false;
                    }
                }
            }
            Violation::DanglingReference {
                to_rel,
                missing_key,
                fact,
            } => {
                match edit.kind {
                    EditKind::Insert => {
                        // complete the referenced tuple with the crowd
                        let fk = constraints
                            .foreign_keys()
                            .iter()
                            .find(|f| f.to_rel == to_rel && f.from_rel == fact.rel)
                            .expect("violation stems from a declared FK");
                        let q = reference_query(db, fk.to_rel, &fk.to_cols, &missing_key);
                        // Treat a crowd failure and a non-total completion
                        // like "no true referenced tuple found": leave the
                        // violation unresolved and refuse the insert.
                        let decision = qoco_telemetry::begin_decision();
                        let completion = crowd.complete(&q, &Assignment::new());
                        qoco_telemetry::finish_decision(
                            decision,
                            "constrained.dangling_reference",
                            || qoco_telemetry::DecisionDetail {
                                question: format!("COMPL(∅, {})?", q.display()),
                                outcome: match &completion {
                                    Ok(Some(total)) => format!("completed: {total:?}"),
                                    Ok(None) => "no true referenced tuple".to_string(),
                                    Err(e) => format!("error: {e}"),
                                },
                                evidence: vec![
                                    ("referencing_insert", format!("{:?}", edit.fact)),
                                    (
                                        "rationale",
                                        "a referencing fact needs its referenced tuple; \
                                         fetch it before admitting the insert"
                                            .to_string(),
                                    ),
                                ],
                            },
                        );
                        let referenced = match completion {
                            Ok(Some(total)) => total.ground_atom(&q.atoms()[0]),
                            Ok(None) | Err(_) => None,
                        };
                        match referenced {
                            Some(referenced) => {
                                let repair = Edit::insert(referenced);
                                apply_rec(db, &repair, constraints, crowd, outcome, depth - 1)?;
                            }
                            None => {
                                outcome.unresolved.push(Violation::DanglingReference {
                                    fact,
                                    to_rel,
                                    missing_key,
                                });
                                admit = false;
                            }
                        }
                    }
                    EditKind::Delete => {
                        // stranded referencing fact: false → cascade delete;
                        // unverifiable (crowd gone) → keep it and report
                        let decision = qoco_telemetry::begin_decision();
                        let verdict = crowd.verify_fact(&fact);
                        qoco_telemetry::finish_decision(
                            decision,
                            "constrained.stranding_delete",
                            || qoco_telemetry::DecisionDetail {
                                question: format!("TRUE({fact:?})?"),
                                outcome: match &verdict {
                                    Ok(v) => v.to_string(),
                                    Err(e) => format!("error: {e}"),
                                },
                                evidence: vec![
                                    ("deleted_referenced", format!("{:?}", edit.fact)),
                                    (
                                        "rationale",
                                        "delete strands this referencing fact: false ones \
                                         cascade, true ones are kept and reported"
                                            .to_string(),
                                    ),
                                ],
                            },
                        );
                        if verdict.unwrap_or(true) {
                            outcome.unresolved.push(Violation::DanglingReference {
                                fact,
                                to_rel,
                                missing_key,
                            });
                        } else {
                            let repair = Edit::delete(fact);
                            apply_rec(db, &repair, constraints, crowd, outcome, depth - 1)?;
                        }
                    }
                }
            }
        }
    }
    if admit && db.apply(edit)? {
        outcome.edits.push(edit.clone());
    }
    Ok(())
}

/// A single-atom query selecting the referenced tuple: key columns fixed to
/// `key`, all other columns fresh variables.
fn reference_query(
    db: &Database,
    to_rel: qoco_data::RelId,
    to_cols: &[usize],
    key: &[qoco_data::Value],
) -> ConjunctiveQuery {
    let arity = db.schema().arity(to_rel);
    let mut terms = Vec::with_capacity(arity);
    let mut head = Vec::new();
    for col in 0..arity {
        match to_cols.iter().position(|&c| c == col) {
            Some(i) => terms.push(Term::Const(key[i].clone())),
            None => {
                let v = Var::new(format!("c{col}"));
                head.push(Term::Var(v.clone()));
                terms.push(Term::Var(v));
            }
        }
    }
    ConjunctiveQuery::new(
        db.schema().clone(),
        "ref",
        head,
        vec![Atom::new(to_rel, terms)],
        vec![],
    )
    .expect("reference queries are well-formed")
}

/// Apply a whole edit log under constraints.
pub fn apply_all_with_constraints<C: CrowdAccess + ?Sized>(
    db: &mut Database,
    edits: &EditLog,
    constraints: &ConstraintSet,
    crowd: &mut C,
) -> Result<ConstrainedOutcome, CleanError> {
    let mut outcome = ConstrainedOutcome {
        edits: EditLog::new(),
        unresolved: Vec::new(),
    };
    for e in edits.edits() {
        apply_rec(db, e, constraints, crowd, &mut outcome, 8)?;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_crowd::{PerfectOracle, SingleExpert};
    use qoco_data::Schema;
    use qoco_data::{tup, Fact};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("Teams", &["country", "continent"])
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .build()
            .unwrap()
    }

    fn constraints(s: &Arc<Schema>) -> ConstraintSet {
        let teams = s.rel_id("Teams").unwrap();
        let games = s.rel_id("Games").unwrap();
        ConstraintSet::new()
            .key(teams, vec![0])
            .foreign_key(games, vec![1], teams, vec![0])
    }

    #[test]
    fn key_conflict_repair_deletes_the_false_row() {
        let s = schema();
        let cs = constraints(&s);
        let teams = s.rel_id("Teams").unwrap();
        let mut d = Database::empty(s.clone());
        d.insert_named("Teams", tup!["BRA", "EU"]).unwrap(); // false
        let mut g = Database::empty(s.clone());
        g.insert_named("Teams", tup!["BRA", "SA"]).unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let edit = Edit::insert(Fact::new(teams, tup!["BRA", "SA"]));
        let out = apply_edit_with_constraints(&mut d, &edit, &cs, &mut crowd).unwrap();
        assert!(out.unresolved.is_empty());
        assert!(d.contains(&Fact::new(teams, tup!["BRA", "SA"])));
        assert!(!d.contains(&Fact::new(teams, tup!["BRA", "EU"])));
        // repair delete + the insert
        assert_eq!(out.edits.len(), 2);
    }

    #[test]
    fn key_conflict_with_true_existing_rejects_false_insert() {
        let s = schema();
        let cs = constraints(&s);
        let teams = s.rel_id("Teams").unwrap();
        let mut d = Database::empty(s.clone());
        d.insert_named("Teams", tup!["BRA", "SA"]).unwrap(); // true
        let mut g = Database::empty(s.clone());
        g.insert_named("Teams", tup!["BRA", "SA"]).unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let edit = Edit::insert(Fact::new(teams, tup!["BRA", "EU"])); // false
        let out = apply_edit_with_constraints(&mut d, &edit, &cs, &mut crowd).unwrap();
        assert!(out.edits.is_empty());
        assert!(out.unresolved.is_empty());
        assert!(!d.contains(&Fact::new(teams, tup!["BRA", "EU"])));
    }

    #[test]
    fn dangling_insert_pulls_in_the_referenced_tuple() {
        let s = schema();
        let cs = constraints(&s);
        let teams = s.rel_id("Teams").unwrap();
        let games = s.rel_id("Games").unwrap();
        let d0 = Database::empty(s.clone());
        let mut g = Database::empty(s.clone());
        g.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        g.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        let mut d = d0.clone();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let edit = Edit::insert(Fact::new(
            games,
            tup!["13.07.14", "GER", "ARG", "Final", "1:0"],
        ));
        let out = apply_edit_with_constraints(&mut d, &edit, &cs, &mut crowd).unwrap();
        assert!(out.unresolved.is_empty());
        assert!(
            d.contains(&Fact::new(teams, tup!["GER", "EU"])),
            "referenced tuple fetched"
        );
        assert!(d.contains(&edit.fact));
        assert_eq!(out.edits.len(), 2);
        assert!(crowd.stats().complete_tasks >= 1);
    }

    #[test]
    fn dangling_insert_without_true_reference_is_rejected() {
        let s = schema();
        let cs = constraints(&s);
        let games = s.rel_id("Games").unwrap();
        let mut d = Database::empty(s.clone());
        let g = Database::empty(s.clone()); // ground truth has no teams at all
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let edit = Edit::insert(Fact::new(games, tup!["d", "XX", "YY", "Final", "1:0"]));
        let out = apply_edit_with_constraints(&mut d, &edit, &cs, &mut crowd).unwrap();
        assert!(out.edits.is_empty());
        assert_eq!(out.unresolved.len(), 1);
        assert!(!d.contains(&edit.fact));
    }

    #[test]
    fn stranding_delete_cascades_over_false_referents() {
        let s = schema();
        let cs = constraints(&s);
        let teams = s.rel_id("Teams").unwrap();
        let games = s.rel_id("Games").unwrap();
        let mut d = Database::empty(s.clone());
        d.insert_named("Teams", tup!["XX", "EU"]).unwrap(); // false
        d.insert_named("Games", tup!["d", "XX", "YY", "Final", "1:0"])
            .unwrap(); // false
        let g = Database::empty(s.clone());
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let edit = Edit::delete(Fact::new(teams, tup!["XX", "EU"]));
        let out = apply_edit_with_constraints(&mut d, &edit, &cs, &mut crowd).unwrap();
        assert!(out.unresolved.is_empty());
        assert!(d.is_empty(), "both false facts removed");
        assert_eq!(out.edits.len(), 2);
        assert!(!d.contains(&Fact::new(games, tup!["d", "XX", "YY", "Final", "1:0"])));
    }

    #[test]
    fn stranding_delete_keeps_true_referents_and_reports() {
        let s = schema();
        let cs = constraints(&s);
        let teams = s.rel_id("Teams").unwrap();
        let games = s.rel_id("Games").unwrap();
        let mut d = Database::empty(s.clone());
        d.insert_named("Teams", tup!["GER", "SA"]).unwrap(); // false continent
        d.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap(); // true
        let mut g = Database::empty(s.clone());
        g.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        g.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let edit = Edit::delete(Fact::new(teams, tup!["GER", "SA"]));
        let out = apply_edit_with_constraints(&mut d, &edit, &cs, &mut crowd).unwrap();
        // the game is true and must survive; the constraint stays violated
        assert!(d.contains(&Fact::new(
            games,
            tup!["13.07.14", "GER", "ARG", "Final", "1:0"]
        )));
        assert_eq!(out.unresolved.len(), 1);
    }

    #[test]
    fn apply_all_threads_the_log() {
        let s = schema();
        let cs = constraints(&s);
        let games = s.rel_id("Games").unwrap();
        let mut d = Database::empty(s.clone());
        let mut g = Database::empty(s.clone());
        g.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        g.insert_named("Teams", tup!["ESP", "EU"]).unwrap();
        g.insert_named("Games", tup!["a", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        g.insert_named("Games", tup!["b", "ESP", "NED", "Final", "1:0"])
            .unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let mut log = EditLog::new();
        log.push(Edit::insert(Fact::new(
            games,
            tup!["a", "GER", "ARG", "Final", "1:0"],
        )));
        log.push(Edit::insert(Fact::new(
            games,
            tup!["b", "ESP", "NED", "Final", "1:0"],
        )));
        let out = apply_all_with_constraints(&mut d, &log, &cs, &mut crowd).unwrap();
        // 2 game inserts + 2 referenced team inserts
        assert_eq!(out.edits.len(), 4);
        assert!(out.unresolved.is_empty());
        assert!(cs.violations(&d).is_empty());
    }
}
