//! Hitting-set machinery (paper Section 4).
//!
//! The witnesses of a wrong answer form a set system `(U, S)`: `U` is the
//! facts of `D` appearing in witnesses and `S` the witnesses themselves.
//! Because the answer is wrong, every witness contains at least one false
//! fact, so the false facts form a hitting set. Algorithm 1 exploits two
//! observations:
//!
//! * **Theorem 4.5** — a *unique minimal hitting set* exists iff the
//!   elements of the singleton sets hit every set; when it does, those
//!   elements must be false and can be deleted without any crowd question;
//! * **greedy frequency** — verifying the most frequent element first
//!   either destroys many witnesses at once (if false) or shrinks many
//!   witnesses at once (if true).
//!
//! The module is generic over the element type so the same machinery is
//! reusable (and directly testable) outside the fact domain, and also
//! provides an exact branch-and-bound minimum hitting set used by the
//! ablation benchmarks to quantify how close the greedy question policy
//! gets to the optimum.

use std::collections::BTreeSet;

/// A mutable hitting-set instance: a collection of non-empty sets to hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HittingSetInstance<T: Ord + Clone> {
    sets: Vec<BTreeSet<T>>,
}

impl<T: Ord + Clone> HittingSetInstance<T> {
    /// Build an instance from sets; empty sets are dropped (they cannot be
    /// hit and, in the witness interpretation, cannot occur for a wrong
    /// answer with a truthful oracle).
    pub fn new(sets: impl IntoIterator<Item = BTreeSet<T>>) -> Self {
        let mut sets: Vec<BTreeSet<T>> = sets.into_iter().filter(|s| !s.is_empty()).collect();
        sets.sort();
        sets.dedup();
        HittingSetInstance { sets }
    }

    /// The remaining sets.
    pub fn sets(&self) -> &[BTreeSet<T>] {
        &self.sets
    }

    /// True if every set has been destroyed (hit).
    pub fn is_done(&self) -> bool {
        self.sets.is_empty()
    }

    /// All distinct elements over the remaining sets.
    pub fn universe(&self) -> BTreeSet<T> {
        self.sets.iter().flatten().cloned().collect()
    }

    /// Elements of the singleton sets.
    pub fn singleton_elements(&self) -> BTreeSet<T> {
        self.sets
            .iter()
            .filter(|s| s.len() == 1)
            .map(|s| s.iter().next().expect("singleton").clone())
            .collect()
    }

    /// Theorem 4.5: a unique minimal hitting set exists iff the singleton
    /// elements form a hitting set; returns it when it does.
    pub fn unique_minimal_hitting_set(&self) -> Option<BTreeSet<T>> {
        let m = self.singleton_elements();
        let hits_all = self.sets.iter().all(|s| s.iter().any(|e| m.contains(e)));
        (hits_all && !self.sets.is_empty()).then_some(m)
    }

    /// The element occurring in the most sets; ties broken by `Ord` for
    /// determinism. `None` when no sets remain.
    pub fn most_frequent(&self) -> Option<T> {
        let mut counts: std::collections::BTreeMap<&T, usize> = Default::default();
        for s in &self.sets {
            for e in s {
                *counts.entry(e).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .max_by(|(ea, ca), (eb, cb)| ca.cmp(cb).then(eb.cmp(ea)))
            .map(|(e, _)| e.clone())
    }

    /// Frequency of one element across the remaining sets.
    pub fn frequency(&self, e: &T) -> usize {
        self.sets.iter().filter(|s| s.contains(e)).count()
    }

    /// The element was confirmed *true* (not deletable): remove it from
    /// every set. Sets that become empty are dropped and reported (an
    /// anomaly with a perfect oracle — a wrong answer's witness must hold a
    /// false fact).
    pub fn confirm_true(&mut self, e: &T) -> usize {
        for s in &mut self.sets {
            s.remove(e);
        }
        let before = self.sets.len();
        self.sets.retain(|s| !s.is_empty());
        let emptied = before - self.sets.len();
        self.sets.sort();
        self.sets.dedup();
        emptied
    }

    /// The element was confirmed *false* (deleted): drop every set that
    /// contains it. Returns how many sets were destroyed.
    pub fn confirm_false(&mut self, e: &T) -> usize {
        let before = self.sets.len();
        self.sets.retain(|s| !s.contains(e));
        before - self.sets.len()
    }

    /// Greedy hitting set (max frequency first) — used as a baseline in
    /// ablations, not by the interactive algorithm (which cannot know which
    /// elements are false without asking).
    pub fn greedy_hitting_set(&self) -> BTreeSet<T> {
        let mut work = self.clone();
        let mut out = BTreeSet::new();
        while let Some(e) = work.most_frequent() {
            work.confirm_false(&e);
            out.insert(e);
        }
        out
    }

    /// Exact minimum hitting set by branch and bound. Exponential in the
    /// worst case — intended for the instance sizes the deletion algorithm
    /// actually sees (a handful of witnesses) and for ablation benches.
    pub fn minimum_hitting_set(&self) -> BTreeSet<T> {
        qoco_telemetry::timed("hitting_set.exact_ns", || {
            let mut best: Option<BTreeSet<T>> = None;
            let mut chosen = BTreeSet::new();
            Self::branch(&self.sets, &mut chosen, &mut best);
            best.unwrap_or_default()
        })
    }

    fn branch(sets: &[BTreeSet<T>], chosen: &mut BTreeSet<T>, best: &mut Option<BTreeSet<T>>) {
        if let Some(b) = best {
            if chosen.len() >= b.len() {
                return; // bound
            }
        }
        // first un-hit set
        let unhit = sets.iter().find(|s| !s.iter().any(|e| chosen.contains(e)));
        match unhit {
            None => {
                let better = match best {
                    Some(b) => chosen.len() < b.len(),
                    None => true,
                };
                if better {
                    *best = Some(chosen.clone());
                }
            }
            Some(s) => {
                for e in s.iter().cloned().collect::<Vec<_>>() {
                    chosen.insert(e.clone());
                    Self::branch(sets, chosen, best);
                    chosen.remove(&e);
                }
            }
        }
    }

    /// Does `h` hit every set?
    pub fn is_hitting_set(&self, h: &BTreeSet<T>) -> bool {
        self.sets.iter().all(|s| s.iter().any(|e| h.contains(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(sets: &[&[u32]]) -> HittingSetInstance<u32> {
        HittingSetInstance::new(sets.iter().map(|s| s.iter().copied().collect()))
    }

    #[test]
    fn example_4_4_unique_minimal() {
        // witnesses {t1} and {t1, t2}: {t1} is the unique minimal hitting set
        let h = inst(&[&[1], &[1, 2]]);
        assert_eq!(h.unique_minimal_hitting_set(), Some([1].into()));
    }

    #[test]
    fn example_4_4_no_unique_minimal() {
        // witnesses {t1,t2} and {t1,t3}: minimal hitting sets {t1} and
        // {t2,t3} — no unique one
        let h = inst(&[&[1, 2], &[1, 3]]);
        assert_eq!(h.unique_minimal_hitting_set(), None);
    }

    #[test]
    fn theorem_4_5_singletons_must_cover() {
        // singletons {1} and {2}; set {1,3} is hit by 1; set {4,5} is not
        // hit by singletons → no unique minimal hitting set
        let h = inst(&[&[1], &[2], &[1, 3], &[4, 5]]);
        assert_eq!(h.singleton_elements(), [1, 2].into());
        assert_eq!(h.unique_minimal_hitting_set(), None);
        // remove the problem set → unique minimal = {1, 2}
        let h2 = inst(&[&[1], &[2], &[1, 3], &[2, 5]]);
        assert_eq!(h2.unique_minimal_hitting_set(), Some([1, 2].into()));
    }

    #[test]
    fn most_frequent_prefers_high_coverage() {
        let h = inst(&[&[1, 2], &[1, 3], &[1, 4], &[5, 6]]);
        assert_eq!(h.most_frequent(), Some(1));
        assert_eq!(h.frequency(&1), 3);
    }

    #[test]
    fn most_frequent_tie_breaks_deterministically() {
        let h = inst(&[&[2, 1]]);
        // both occur once; the smaller element wins
        assert_eq!(h.most_frequent(), Some(1));
    }

    #[test]
    fn confirm_true_strips_element_everywhere() {
        let mut h = inst(&[&[1, 2], &[1, 3]]);
        let emptied = h.confirm_true(&1);
        assert_eq!(emptied, 0);
        assert_eq!(h.sets(), &[[2].into(), [3].into()]);
    }

    #[test]
    fn confirm_true_reports_emptied_sets() {
        let mut h = inst(&[&[1], &[1, 2]]);
        let emptied = h.confirm_true(&1);
        assert_eq!(emptied, 1);
        assert_eq!(h.sets().len(), 1);
    }

    #[test]
    fn confirm_false_destroys_covering_sets() {
        let mut h = inst(&[&[1, 2], &[1, 3], &[4]]);
        assert_eq!(h.confirm_false(&1), 2);
        assert_eq!(h.sets(), &[[4].into()]);
        assert!(!h.is_done());
        assert_eq!(h.confirm_false(&4), 1);
        assert!(h.is_done());
    }

    #[test]
    fn example_4_6_walkthrough() {
        // After t3 confirmed true, the six witnesses become the six pairs
        // over {t1, t2, t4, t5} minus... (paper Example 4.6):
        let mut h = inst(&[
            &[1, 2, 3],
            &[2, 4, 3],
            &[4, 1, 3],
            &[1, 5, 3],
            &[2, 5, 3],
            &[4, 5, 3],
        ]);
        assert_eq!(h.most_frequent(), Some(3));
        h.confirm_true(&3);
        assert_eq!(h.sets().len(), 6);
        // t5 confirmed false → 3 witnesses destroyed
        assert_eq!(h.confirm_false(&5), 3);
        // t1 confirmed true → sets {2}, {2,4}, {4}
        h.confirm_true(&1);
        // unique minimal hitting set now exists: {2, 4}
        assert_eq!(h.unique_minimal_hitting_set(), Some([2, 4].into()));
    }

    #[test]
    fn minimum_hitting_set_is_optimal() {
        let h = inst(&[&[1, 2], &[1, 3], &[2, 3]]);
        let m = h.minimum_hitting_set();
        assert_eq!(m.len(), 2); // any pair hits all three
        assert!(h.is_hitting_set(&m));
    }

    #[test]
    fn minimum_beats_or_matches_greedy() {
        // classic greedy-trap structure
        let h = inst(&[
            &[1, 4],
            &[1, 5],
            &[2, 4],
            &[2, 6],
            &[3, 5],
            &[3, 6],
            &[4, 5, 6],
        ]);
        let greedy = h.greedy_hitting_set();
        let exact = h.minimum_hitting_set();
        assert!(h.is_hitting_set(&greedy));
        assert!(h.is_hitting_set(&exact));
        assert!(exact.len() <= greedy.len());
    }

    #[test]
    fn empty_instance_is_done() {
        let h = inst(&[]);
        assert!(h.is_done());
        assert_eq!(h.most_frequent(), None);
        assert_eq!(h.unique_minimal_hitting_set(), None);
        assert!(h.minimum_hitting_set().is_empty());
    }

    #[test]
    fn duplicate_and_empty_sets_are_normalized() {
        let h = HittingSetInstance::new(vec![
            BTreeSet::from([1u32, 2]),
            BTreeSet::from([1, 2]),
            BTreeSet::new(),
        ]);
        assert_eq!(h.sets().len(), 1);
    }

    #[test]
    fn universe_collects_all_elements() {
        let h = inst(&[&[1, 2], &[3]]);
        assert_eq!(h.universe(), [1, 2, 3].into());
    }
}
