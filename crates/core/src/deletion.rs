//! Algorithm 1: `CrowdRemoveWrongAnswer` (paper Section 4), plus the
//! baselines of Section 7.2.
//!
//! Given a wrong answer `t ∈ Q(D) − Q(D_G)`, compute its witness sets and
//! interactively find a set of false facts hitting every witness:
//!
//! 1. tuples in singleton witnesses are deleted *without asking* — by
//!    Theorem 4.5 they belong to every hitting set (QOCO only);
//! 2. otherwise the selection heuristic picks a tuple (most frequent by
//!    default) and the crowd is asked `TRUE(R(ā))?`;
//! 3. a YES strips the tuple from every witness; a NO applies a deletion
//!    edit (notifying any tracked materialized views) and destroys the
//!    witnesses containing it;
//! 4. repeat until no witnesses remain.

use qoco_crowd::{CrowdAccess, CrowdError};
use qoco_data::{Database, Edit, EditLog, Fact, Tuple};
use qoco_engine::{witnesses_for_answer, MaterializedView};
use qoco_query::ConjunctiveQuery;
use qoco_telemetry::DecisionDetail;

use crate::error::CleanError;
use crate::heuristics::{MostFrequentSelector, RandomSelector, TupleSelector};
use crate::hitting_set::HittingSetInstance;
use crate::tracked::apply_tracked;

/// Which deletion algorithm to run (Section 7.2's competitors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeletionStrategy {
    /// Full Algorithm 1: greedy most-frequent + the unique-minimal-
    /// hitting-set shortcut.
    Qoco,
    /// QOCO⁻: greedy most-frequent but *no* unique-hitting-set detection —
    /// keeps asking about every remaining tuple.
    QocoMinus,
    /// Random: verify uniformly random witness tuples (seeded).
    Random(u64),
}

impl DeletionStrategy {
    /// Human-readable label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            DeletionStrategy::Qoco => "QOCO",
            DeletionStrategy::QocoMinus => "QOCO-",
            DeletionStrategy::Random(_) => "Random",
        }
    }
}

/// The outcome of one answer-removal run.
#[derive(Debug, Clone)]
pub struct DeletionOutcome {
    /// Deletion edits applied to the database, in order.
    pub edits: EditLog,
    /// Number of `TRUE(R(ā))?` questions asked for this answer.
    pub questions: usize,
    /// Distinct tuples across the initial witness set — the naïve upper
    /// bound on questions (Section 7.2: "the total number of questions that
    /// one would ask with the naïve algorithm corresponds to the number of
    /// distinct tuples in the witness set").
    pub upper_bound: usize,
    /// Number of witnesses that emptied out without containing any
    /// crowd-confirmed false tuple — zero with a truthful oracle, positive
    /// only when an imperfect crowd mislabels facts.
    pub anomalies: usize,
    /// Set when the crowd became unavailable mid-run. The edits derived
    /// *before* the failure are confirmed-false deletions and were still
    /// applied (each moves `D` towards `D_G`); the answer itself may remain
    /// in `Q(D)` and should be reported unresolved.
    pub failure: Option<CrowdError>,
}

/// Run Algorithm 1 (or a baseline) to remove `t` from `Q(D)`.
///
/// Deletion edits are applied to `db` as they are derived. With a perfect
/// oracle the post-condition `t ∉ Q(D′)` always holds; with imperfect
/// crowds a witness can survive mislabeling (counted in
/// [`DeletionOutcome::anomalies`]).
pub fn crowd_remove_wrong_answer<C: CrowdAccess + ?Sized>(
    q: &ConjunctiveQuery,
    db: &mut Database,
    t: &Tuple,
    crowd: &mut C,
    strategy: DeletionStrategy,
) -> Result<DeletionOutcome, CleanError> {
    crowd_remove_wrong_answer_tracked(q, db, t, crowd, strategy, &mut [])
}

/// [`crowd_remove_wrong_answer`] that also keeps materialized `views`
/// current: each deletion edit is applied to `db` as soon as it is derived
/// (the witness sets are enumerated once up front, so early application is
/// safe) and every view is notified, letting callers reuse cached answer
/// sets between removals instead of re-evaluating the query.
pub fn crowd_remove_wrong_answer_tracked<C: CrowdAccess + ?Sized>(
    q: &ConjunctiveQuery,
    db: &mut Database,
    t: &Tuple,
    crowd: &mut C,
    strategy: DeletionStrategy,
    views: &mut [MaterializedView],
) -> Result<DeletionOutcome, CleanError> {
    let mut selector: Box<dyn TupleSelector> = match strategy {
        DeletionStrategy::Qoco | DeletionStrategy::QocoMinus => Box::new(MostFrequentSelector),
        DeletionStrategy::Random(seed) => Box::new(RandomSelector::new(seed)),
    };
    let use_singleton_shortcut = matches!(strategy, DeletionStrategy::Qoco);
    crowd_remove_wrong_answer_with_tracked(
        q,
        db,
        t,
        crowd,
        &mut *selector,
        use_singleton_shortcut,
        views,
    )
}

/// [`crowd_remove_wrong_answer`] with an explicit selection heuristic —
/// the hook the heuristics ablation uses (the paper notes the greedy
/// most-frequent choice "could be replaced by others", Section 4).
pub fn crowd_remove_wrong_answer_with<C: CrowdAccess + ?Sized>(
    q: &ConjunctiveQuery,
    db: &mut Database,
    t: &Tuple,
    crowd: &mut C,
    selector: &mut dyn TupleSelector,
    use_singleton_shortcut: bool,
) -> Result<DeletionOutcome, CleanError> {
    crowd_remove_wrong_answer_with_tracked(
        q,
        db,
        t,
        crowd,
        selector,
        use_singleton_shortcut,
        &mut [],
    )
}

/// [`crowd_remove_wrong_answer_with`], additionally maintaining `views`
/// per derived edit (see [`crowd_remove_wrong_answer_tracked`]).
pub fn crowd_remove_wrong_answer_with_tracked<C: CrowdAccess + ?Sized>(
    q: &ConjunctiveQuery,
    db: &mut Database,
    t: &Tuple,
    crowd: &mut C,
    selector: &mut dyn TupleSelector,
    use_singleton_shortcut: bool,
    views: &mut [MaterializedView],
) -> Result<DeletionOutcome, CleanError> {
    let span = qoco_telemetry::span("deletion.remove_answer").field("answer", t.to_string());
    let witnesses = witnesses_for_answer(q, db, t);
    qoco_telemetry::counter_add("deletion.witnesses_enumerated", witnesses.len() as u64);
    let mut instance = HittingSetInstance::new(witnesses);
    let upper_bound = instance.universe().len();

    if !instance.is_done() && qoco_telemetry::enabled() {
        // Provenance: record the plan — the witness system, the naïve
        // upper bound, and the exact hitting-set lower bound the budget
        // report compares against. Guarded on enabled() so the exact
        // hitting-set solve never runs on the disabled fast path; the
        // bound also accumulates into the session.lower_bound gauge, which
        // qoco-watch samples for the live optimality-ratio panel (ratio
        // rules divide session.questions_asked by it).
        let lower_bound = instance.minimum_hitting_set().len();
        qoco_telemetry::gauge_add("session.lower_bound", lower_bound as f64);
        qoco_telemetry::record_decision("deletion.plan", || DecisionDetail {
            question: format!("remove wrong answer {t} from Q(D)"),
            outcome: format!("{} witness set(s) to hit", instance.sets().len()),
            evidence: vec![
                ("witnesses", render_witnesses(&instance)),
                ("upper_bound", upper_bound.to_string()),
                ("lower_bound", lower_bound.to_string()),
                ("selector", selector.name().to_string()),
                (
                    "shortcut",
                    if use_singleton_shortcut { "on" } else { "off" }.to_string(),
                ),
            ],
        });
    }

    let mut edits = EditLog::new();
    let mut questions = 0usize;
    let mut anomalies = 0usize;
    let mut failure: Option<CrowdError> = None;
    // never ask twice about the same fact (known-true facts in particular)
    let mut known_true: std::collections::BTreeSet<Fact> = Default::default();

    while !instance.is_done() {
        qoco_telemetry::gauge_set("session.witnesses_open", instance.sets().len() as f64);
        if use_singleton_shortcut {
            // Lines 2–4: tuples in singleton sets are deletable without
            // questions (Theorem 4.5).
            loop {
                let singles = instance.singleton_elements();
                if singles.is_empty() {
                    break;
                }
                qoco_telemetry::record_decision("deletion.certificate", || {
                    let certificate = instance.unique_minimal_hitting_set();
                    DecisionDetail {
                        question: format!(
                            "delete {} singleton witness tuple(s) without asking",
                            singles.len()
                        ),
                        outcome: match &certificate {
                            Some(m) => format!(
                                "theorem-4.5 certificate fired: unique minimal hitting set {}",
                                render_set(m)
                            ),
                            None => "singletons (members of every hitting set) deleted; \
                                 witnesses remain"
                                .to_string(),
                        },
                        evidence: vec![
                            (
                                "theorem_4_5",
                                if certificate.is_some() {
                                    "fired"
                                } else {
                                    "partial"
                                }
                                .to_string(),
                            ),
                            ("singletons", render_set(&singles)),
                            ("witnesses", render_witnesses(&instance)),
                        ],
                    }
                });
                for f in singles {
                    instance.confirm_false(&f);
                    let e = Edit::delete(f);
                    apply_tracked(db, views, &e)?;
                    edits.push(e);
                }
            }
            if instance.is_done() {
                break;
            }
        }
        let Some(fact) = pick_unasked(selector, &instance, &known_true) else {
            // Every remaining tuple was already confirmed true — possible
            // only with lying oracles. Drop the un-hittable sets.
            anomalies += instance.sets().len();
            break;
        };
        // Provenance: capture why *this* tuple is asked about — the live
        // witness state and the frequency ranking that makes it greedy-best
        // — before the oracle mutates anything. `decision != 0` only when
        // telemetry is enabled, so the disabled path allocates nothing
        // (an empty Vec::new is allocation-free).
        let decision = qoco_telemetry::begin_decision();
        let mut evidence: Vec<(&'static str, String)> = Vec::new();
        if decision != 0 {
            evidence.push(("selector", selector.name().to_string()));
            evidence.push(("frequency", instance.frequency(&fact).to_string()));
            evidence.push(("ranking", render_ranking(&instance)));
            evidence.push(("witnesses", render_witnesses(&instance)));
        }
        questions += 1;
        let verdict = crowd.verify_fact(&fact);
        qoco_telemetry::finish_decision(decision, "deletion.verify_fact", || DecisionDetail {
            question: format!("TRUE({fact:?})?"),
            outcome: match &verdict {
                Ok(v) => v.to_string(),
                Err(e) => format!("error: {e}"),
            },
            evidence,
        });
        match verdict {
            Ok(true) => {
                known_true.insert(fact.clone());
                anomalies += instance.confirm_true(&fact);
            }
            Ok(false) => {
                instance.confirm_false(&fact);
                let e = Edit::delete(fact);
                apply_tracked(db, views, &e)?;
                edits.push(e);
            }
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    qoco_telemetry::gauge_set("session.witnesses_open", instance.sets().len() as f64);

    span.field("questions", questions)
        .field("deletions", edits.deletions())
        .finish();
    Ok(DeletionOutcome {
        edits,
        questions,
        upper_bound,
        anomalies,
        failure,
    })
}

/// Pick the selector's choice, skipping facts already confirmed true.
fn pick_unasked(
    selector: &mut dyn TupleSelector,
    instance: &HittingSetInstance<Fact>,
    known_true: &std::collections::BTreeSet<Fact>,
) -> Option<Fact> {
    // The instance never re-contains confirmed-true facts under QOCO
    // semantics (they are stripped), but the Random baseline may re-draw
    // one; retry within the filtered universe.
    let f = selector.select(instance)?;
    if !known_true.contains(&f) {
        return Some(f);
    }
    instance
        .universe()
        .into_iter()
        .find(|candidate| !known_true.contains(candidate))
}

/// `{A, B}` — one witness set as evidence text.
fn render_set(s: &std::collections::BTreeSet<Fact>) -> String {
    let inner = s
        .iter()
        .map(|f| format!("{f:?}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{{inner}}}")
}

/// The live witness system, `{..} | {..}`, in the instance's canonical
/// (sorted, deduplicated) order.
fn render_witnesses(instance: &HittingSetInstance<Fact>) -> String {
    instance
        .sets()
        .iter()
        .map(render_set)
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Candidate tuples ranked by witness frequency — descending count, ties
/// by fact order, mirroring [`HittingSetInstance::most_frequent`]'s
/// tie-break so the head of the ranking is exactly the greedy pick.
fn render_ranking(instance: &HittingSetInstance<Fact>) -> String {
    let mut ranked: Vec<(usize, Fact)> = instance
        .universe()
        .into_iter()
        .map(|f| (instance.frequency(&f), f))
        .collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    ranked
        .into_iter()
        .map(|(n, f)| format!("{f:?}={n}"))
        .collect::<Vec<_>>()
        .join(" > ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_crowd::{PerfectOracle, SingleExpert};
    use qoco_data::{tup, Schema};
    use qoco_engine::answer_set;
    use qoco_query::parse_query;
    use std::sync::Arc;

    /// Example 4.6: the Spain deletion scenario. `D` says ESP won four
    /// finals (2010 true; 1998, 1994, 1978 false); the ground truth has
    /// only 2010 (and the true winners of the other years).
    fn setup() -> (Arc<Schema>, Database, Database, ConjunctiveQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap();
        let mut d = Database::empty(schema.clone());
        for (dt, w, r, s, u) in [
            ("11.07.10", "ESP", "NED", "Final", "1:0"),
            ("12.07.98", "ESP", "NED", "Final", "4:2"),
            ("17.07.94", "ESP", "NED", "Final", "3:1"),
            ("25.06.78", "ESP", "NED", "Final", "1:0"),
        ] {
            d.insert_named("Games", tup![dt, w, r, s, u]).unwrap();
        }
        d.insert_named("Teams", tup!["ESP", "EU"]).unwrap();

        let mut g = Database::empty(schema.clone());
        g.insert_named("Games", tup!["11.07.10", "ESP", "NED", "Final", "1:0"])
            .unwrap();
        g.insert_named("Games", tup!["12.07.98", "FRA", "BRA", "Final", "3:0"])
            .unwrap();
        g.insert_named("Games", tup!["17.07.94", "BRA", "ITA", "Final", "3:2"])
            .unwrap();
        g.insert_named("Games", tup!["25.06.78", "ARG", "NED", "Final", "3:1"])
            .unwrap();
        g.insert_named("Teams", tup!["ESP", "EU"]).unwrap();

        let q = parse_query(
            &schema,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap();
        (schema, d, g, q)
    }

    #[test]
    fn qoco_removes_the_wrong_answer() {
        let (_, mut d, g, q) = setup();
        assert_eq!(answer_set(&q, &d), vec![tup!["ESP"]]);
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let out =
            crowd_remove_wrong_answer(&q, &mut d, &tup!["ESP"], &mut crowd, DeletionStrategy::Qoco)
                .unwrap();
        assert!(answer_set(&q, &d).is_empty(), "ESP must be gone");
        assert_eq!(out.anomalies, 0);
        // exactly the three false finals are deleted (never Teams(ESP,EU)
        // or the true 2010 final)
        assert_eq!(out.edits.deletions(), 3);
        for e in out.edits.edits() {
            let date = e.fact.tuple.values()[0].clone();
            assert_ne!(date, qoco_data::Value::text("11.07.10"));
        }
    }

    #[test]
    fn qoco_asks_fewer_questions_than_upper_bound() {
        let (_, mut d, g, q) = setup();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let out =
            crowd_remove_wrong_answer(&q, &mut d, &tup!["ESP"], &mut crowd, DeletionStrategy::Qoco)
                .unwrap();
        // universe = 4 Games facts + Teams fact = 5
        assert_eq!(out.upper_bound, 5);
        assert!(
            out.questions < out.upper_bound,
            "{} questions",
            out.questions
        );
        assert_eq!(out.questions, crowd.stats().verify_fact_questions);
    }

    #[test]
    fn qoco_minus_never_uses_the_shortcut() {
        let (_, d, g, q) = setup();
        let mut d1 = d.clone();
        let mut crowd1 = SingleExpert::new(PerfectOracle::new(g.clone()));
        let qoco = crowd_remove_wrong_answer(
            &q,
            &mut d1,
            &tup!["ESP"],
            &mut crowd1,
            DeletionStrategy::Qoco,
        )
        .unwrap();
        let mut d2 = d.clone();
        let mut crowd2 = SingleExpert::new(PerfectOracle::new(g));
        let minus = crowd_remove_wrong_answer(
            &q,
            &mut d2,
            &tup!["ESP"],
            &mut crowd2,
            DeletionStrategy::QocoMinus,
        )
        .unwrap();
        assert!(qoco.questions <= minus.questions);
        // both clean the view
        assert!(answer_set(&q, &d1).is_empty());
        assert!(answer_set(&q, &d2).is_empty());
    }

    #[test]
    fn random_baseline_cleans_but_asks_more_on_average() {
        let (_, d, g, q) = setup();
        let mut total_random = 0usize;
        for seed in 0..10 {
            let mut di = d.clone();
            let mut crowd = SingleExpert::new(PerfectOracle::new(g.clone()));
            let out = crowd_remove_wrong_answer(
                &q,
                &mut di,
                &tup!["ESP"],
                &mut crowd,
                DeletionStrategy::Random(seed),
            )
            .unwrap();
            assert!(answer_set(&q, &di).is_empty());
            total_random += out.questions;
        }
        let mut dq = d.clone();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g.clone()));
        let qoco = crowd_remove_wrong_answer(
            &q,
            &mut dq,
            &tup!["ESP"],
            &mut crowd,
            DeletionStrategy::Qoco,
        )
        .unwrap();
        assert!(
            (total_random as f64 / 10.0) >= qoco.questions as f64,
            "random {} avg vs qoco {}",
            total_random as f64 / 10.0,
            qoco.questions
        );
    }

    #[test]
    fn singleton_witnesses_need_no_questions() {
        // Q over a single atom: each witness is a singleton → unique
        // minimal hitting set exists immediately (Example 4.4).
        let schema = Schema::builder()
            .relation("T", &["c", "k"])
            .build()
            .unwrap();
        let mut d = Database::empty(schema.clone());
        d.insert_named("T", tup!["BRA", "EU"]).unwrap();
        let g = Database::empty(schema.clone());
        let q = parse_query(&schema, r#"(x) :- T(x, "EU")"#).unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let out =
            crowd_remove_wrong_answer(&q, &mut d, &tup!["BRA"], &mut crowd, DeletionStrategy::Qoco)
                .unwrap();
        assert_eq!(out.questions, 0);
        assert_eq!(out.edits.deletions(), 1);
        assert!(answer_set(&q, &d).is_empty());
    }

    #[test]
    fn non_answer_is_a_no_op() {
        let (_, mut d, g, q) = setup();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let out =
            crowd_remove_wrong_answer(&q, &mut d, &tup!["ITA"], &mut crowd, DeletionStrategy::Qoco)
                .unwrap();
        assert_eq!(out.questions, 0);
        assert!(out.edits.is_empty());
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(DeletionStrategy::Qoco.label(), "QOCO");
        assert_eq!(DeletionStrategy::QocoMinus.label(), "QOCO-");
        assert_eq!(DeletionStrategy::Random(0).label(), "Random");
    }
}
