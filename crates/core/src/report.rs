//! Cleaning-session reports.

use std::fmt;

use qoco_crowd::CrowdStats;
use qoco_data::{EditLog, Tuple};

/// Which phase of the cleaning loop a question belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnresolvedPhase {
    /// Verifying whether a current answer is correct (`TRUE(Q, t)?`).
    Verify,
    /// Removing a confirmed wrong answer (Algorithm 1).
    Delete,
    /// Finding or adding a missing answer (Algorithm 2 / `COMPL(Q(D))`).
    Insert,
}

impl fmt::Display for UnresolvedPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnresolvedPhase::Verify => "verify",
            UnresolvedPhase::Delete => "delete",
            UnresolvedPhase::Insert => "insert",
        })
    }
}

/// A piece of cleaning work the session had to abandon because the crowd
/// became unavailable (after retries and escalation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnresolvedItem {
    /// Where in the loop the crowd failed.
    pub phase: UnresolvedPhase,
    /// The answer tuple being worked on, when one was in hand.
    pub answer: Option<Tuple>,
    /// Why the work was abandoned (the crowd error, rendered).
    pub reason: String,
}

impl fmt::Display for UnresolvedItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.answer {
            Some(t) => write!(f, "[{}] {t}: {}", self.phase, self.reason),
            None => write!(f, "[{}] {}", self.phase, self.reason),
        }
    }
}

/// Everything a cleaning session did, for auditing and for the figures.
#[derive(Debug, Clone)]
pub struct CleaningReport {
    /// All edits applied, in order.
    pub edits: EditLog,
    /// Iterations of the outer loop (Algorithm 3).
    pub iterations: usize,
    /// Wrong answers discovered and removed.
    pub wrong_answers: usize,
    /// Missing answers discovered and added.
    pub missing_answers: usize,
    /// Crowd-interaction ledger for the deletion phases.
    pub deletion_stats: CrowdStats,
    /// Crowd-interaction ledger for the insertion phases.
    pub insertion_stats: CrowdStats,
    /// Combined ledger (equals the session's total).
    pub total_stats: CrowdStats,
    /// Sum of the per-answer naïve upper bounds for deletion (distinct
    /// witness tuples).
    pub deletion_upper_bound: usize,
    /// Sum of the per-answer naïve upper bounds for insertion (variables
    /// of `Q|t`).
    pub insertion_upper_bound: usize,
    /// Oracle inconsistencies observed (always 0 with a perfect oracle).
    pub anomalies: usize,
    /// Work abandoned because the crowd became unavailable. Empty for a
    /// complete report; see [`CleaningReport::is_partial`].
    pub unresolved: Vec<UnresolvedItem>,
}

impl CleaningReport {
    /// An empty report.
    pub fn new() -> Self {
        CleaningReport {
            edits: EditLog::new(),
            iterations: 0,
            wrong_answers: 0,
            missing_answers: 0,
            deletion_stats: CrowdStats::new(),
            insertion_stats: CrowdStats::new(),
            total_stats: CrowdStats::new(),
            deletion_upper_bound: 0,
            insertion_upper_bound: 0,
            anomalies: 0,
            unresolved: Vec::new(),
        }
    }

    /// Whether this is a *partial* report: some answers could not be
    /// verified or repaired because the crowd became unavailable. The
    /// edits that were applied are still individually correct (each was
    /// confirmed before application); partiality means coverage, not
    /// validity, was lost.
    pub fn is_partial(&self) -> bool {
        !self.unresolved.is_empty()
    }

    /// The paper's three Figure 3f categories:
    /// (verify-answers, verify-tuples, fill-missing).
    pub fn question_breakdown(&self) -> (usize, usize, usize) {
        let verify_answers = self.total_stats.verify_answer_questions;
        let verify_tuples =
            self.total_stats.verify_fact_questions + self.total_stats.satisfiable_questions;
        let fill_missing =
            self.total_stats.filled_variables + self.total_stats.missing_answers_provided;
        (verify_answers, verify_tuples, fill_missing)
    }
}

impl Default for CleaningReport {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for CleaningReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cleaning finished in {} iteration(s): {} wrong answer(s) removed, {} missing answer(s) added",
            self.iterations, self.wrong_answers, self.missing_answers
        )?;
        writeln!(
            f,
            "edits: {} deletions, {} insertions",
            self.edits.deletions(),
            self.edits.insertions()
        )?;
        writeln!(f, "deletion questions:  {}", self.deletion_stats)?;
        writeln!(f, "insertion questions: {}", self.insertion_stats)?;
        if self.anomalies > 0 {
            writeln!(f, "anomalies (oracle inconsistencies): {}", self.anomalies)?;
        }
        if self.is_partial() {
            writeln!(
                f,
                "PARTIAL REPORT — {} item(s) unresolved (crowd unavailable):",
                self.unresolved.len()
            )?;
            for item in &self.unresolved {
                writeln!(f, "  {item}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_summarizes() {
        let mut r = CleaningReport::new();
        r.iterations = 2;
        r.wrong_answers = 3;
        r.missing_answers = 1;
        let out = r.to_string();
        assert!(out.contains("2 iteration"));
        assert!(out.contains("3 wrong"));
        assert!(out.contains("1 missing"));
        assert!(!out.contains("anomalies"));
        r.anomalies = 1;
        assert!(r.to_string().contains("anomalies"));
    }

    #[test]
    fn partial_reports_render_their_unresolved_section() {
        let mut r = CleaningReport::new();
        assert!(!r.is_partial());
        assert!(!r.to_string().contains("PARTIAL"));
        r.unresolved.push(UnresolvedItem {
            phase: UnresolvedPhase::Verify,
            answer: Some(qoco_data::tup!["GER"]),
            reason: "the worker dropped out of the panel".into(),
        });
        r.unresolved.push(UnresolvedItem {
            phase: UnresolvedPhase::Insert,
            answer: None,
            reason: "the worker timed out".into(),
        });
        assert!(r.is_partial());
        let out = r.to_string();
        assert!(out.contains("PARTIAL REPORT — 2 item(s)"), "{out}");
        assert!(out.contains("[verify] (GER)"), "{out}");
        assert!(out.contains("[insert] the worker timed out"), "{out}");
    }

    #[test]
    fn breakdown_pulls_from_total_stats() {
        let mut r = CleaningReport::new();
        r.total_stats.verify_answer_questions = 4;
        r.total_stats.verify_fact_questions = 5;
        r.total_stats.satisfiable_questions = 2;
        r.total_stats.filled_variables = 7;
        r.total_stats.missing_answers_provided = 2;
        let (a, t, m) = r.question_breakdown();
        assert_eq!(a, 4);
        assert_eq!(t, 7);
        assert_eq!(m, 9);
    }
}
