//! Cleaning-session reports.

use std::fmt;

use qoco_crowd::CrowdStats;
use qoco_data::EditLog;

/// Everything a cleaning session did, for auditing and for the figures.
#[derive(Debug, Clone)]
pub struct CleaningReport {
    /// All edits applied, in order.
    pub edits: EditLog,
    /// Iterations of the outer loop (Algorithm 3).
    pub iterations: usize,
    /// Wrong answers discovered and removed.
    pub wrong_answers: usize,
    /// Missing answers discovered and added.
    pub missing_answers: usize,
    /// Crowd-interaction ledger for the deletion phases.
    pub deletion_stats: CrowdStats,
    /// Crowd-interaction ledger for the insertion phases.
    pub insertion_stats: CrowdStats,
    /// Combined ledger (equals the session's total).
    pub total_stats: CrowdStats,
    /// Sum of the per-answer naïve upper bounds for deletion (distinct
    /// witness tuples).
    pub deletion_upper_bound: usize,
    /// Sum of the per-answer naïve upper bounds for insertion (variables
    /// of `Q|t`).
    pub insertion_upper_bound: usize,
    /// Oracle inconsistencies observed (always 0 with a perfect oracle).
    pub anomalies: usize,
}

impl CleaningReport {
    /// An empty report.
    pub fn new() -> Self {
        CleaningReport {
            edits: EditLog::new(),
            iterations: 0,
            wrong_answers: 0,
            missing_answers: 0,
            deletion_stats: CrowdStats::new(),
            insertion_stats: CrowdStats::new(),
            total_stats: CrowdStats::new(),
            deletion_upper_bound: 0,
            insertion_upper_bound: 0,
            anomalies: 0,
        }
    }

    /// The paper's three Figure 3f categories:
    /// (verify-answers, verify-tuples, fill-missing).
    pub fn question_breakdown(&self) -> (usize, usize, usize) {
        let verify_answers = self.total_stats.verify_answer_questions;
        let verify_tuples =
            self.total_stats.verify_fact_questions + self.total_stats.satisfiable_questions;
        let fill_missing =
            self.total_stats.filled_variables + self.total_stats.missing_answers_provided;
        (verify_answers, verify_tuples, fill_missing)
    }
}

impl Default for CleaningReport {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for CleaningReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cleaning finished in {} iteration(s): {} wrong answer(s) removed, {} missing answer(s) added",
            self.iterations, self.wrong_answers, self.missing_answers
        )?;
        writeln!(
            f,
            "edits: {} deletions, {} insertions",
            self.edits.deletions(),
            self.edits.insertions()
        )?;
        writeln!(f, "deletion questions:  {}", self.deletion_stats)?;
        writeln!(f, "insertion questions: {}", self.insertion_stats)?;
        if self.anomalies > 0 {
            writeln!(f, "anomalies (oracle inconsistencies): {}", self.anomalies)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_summarizes() {
        let mut r = CleaningReport::new();
        r.iterations = 2;
        r.wrong_answers = 3;
        r.missing_answers = 1;
        let out = r.to_string();
        assert!(out.contains("2 iteration"));
        assert!(out.contains("3 wrong"));
        assert!(out.contains("1 missing"));
        assert!(!out.contains("anomalies"));
        r.anomalies = 1;
        assert!(r.to_string().contains("anomalies"));
    }

    #[test]
    fn breakdown_pulls_from_total_stats() {
        let mut r = CleaningReport::new();
        r.total_stats.verify_answer_questions = 4;
        r.total_stats.verify_fact_questions = 5;
        r.total_stats.satisfiable_questions = 2;
        r.total_stats.filled_variables = 7;
        r.total_stats.missing_answers_provided = 2;
        let (a, t, m) = r.question_breakdown();
        assert_eq!(a, 4);
        assert_eq!(t, 7);
        assert_eq!(m, 9);
    }
}
