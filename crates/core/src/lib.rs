//! # qoco-core — the QOCO cleaning algorithms
//!
//! The paper's contribution (Sections 4–6), implemented over the substrates
//! of the sibling crates:
//!
//! * [`hitting_set`] — the witness-cover structure behind answer removal:
//!   greedy selection, the unique-minimal-hitting-set test of Theorem 4.5,
//!   and an exact branch-and-bound solver used for ablations;
//! * [`heuristics`] — pluggable tuple-selection heuristics for deletion
//!   (most-frequent — the paper's default — plus the responsibility-,
//!   trust- and random-based alternatives Section 4 mentions);
//! * [`deletion`] — Algorithm 1 `CrowdRemoveWrongAnswer` and the baselines
//!   QOCO⁻ and Random of Section 7.2;
//! * [`split`] — the Split() implementations of Section 5.2: Provenance
//!   (WhyNot?-style), Min-Cut (Stoer–Wagner on the query graph), Random,
//!   and Naïve (no split);
//! * [`insertion`] — Algorithm 2 `CrowdAddMissingAnswer`;
//! * [`cleaner`] — Algorithm 3, the iterative mixed cleaner;
//! * [`multi`] — the multiple-imperfect-experts, parallel variant
//!   (Section 6.2);
//! * [`naive`] — the systematic-enumeration strategy of Proposition 3.4,
//!   kept as an illustrative (exponential) baseline;
//! * [`report`] — session reports: edits, per-phase question ledgers,
//!   convergence data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cleaner;
pub mod composite;
pub mod constrained;
pub mod deletion;
pub mod error;
pub mod figure1;
pub mod heuristics;
pub mod hitting_set;
pub mod insertion;
pub mod machine;
pub mod multi;
pub mod naive;
pub mod report;
pub mod split;
pub mod store;
mod tracked;
pub mod ucq_clean;

pub use cleaner::{clean_view, clean_view_with_estimator, CleaningConfig, CleaningReport};
pub use composite::{crowd_remove_wrong_answer_composite, find_false_facts};
pub use constrained::{
    apply_all_with_constraints, apply_edit_with_constraints, ConstrainedOutcome,
};
pub use deletion::{
    crowd_remove_wrong_answer, crowd_remove_wrong_answer_tracked, crowd_remove_wrong_answer_with,
    crowd_remove_wrong_answer_with_tracked, DeletionOutcome, DeletionStrategy,
};
pub use error::CleanError;
pub use figure1::{figure1_ground, figure1_spec};
pub use heuristics::{
    MostFrequentSelector, RandomSelector, ResponsibilitySelector, TrustSelector, TupleSelector,
};
pub use hitting_set::HittingSetInstance;
pub use insertion::{
    crowd_add_missing_answer, crowd_add_missing_answer_tracked, InsertionOptions, InsertionOutcome,
};
pub use machine::{
    FinishedSession, SessionMachine, SessionSpec, SessionState, SubmitError, SubmitOutcome,
};
pub use multi::{clean_view_parallel, ParallelMajorityCrowd};
pub use naive::{naive_enumeration, TargetAction};
pub use report::{UnresolvedItem, UnresolvedPhase};
pub use split::{
    InstrumentedSplit, MinCutSplit, NaiveSplit, ProvenanceSplit, RandomSplit, SplitStrategy,
    SplitStrategyKind,
};
pub use store::{deletion_from_str, deletion_to_str, split_from_str, split_to_str, SessionStore};
pub use ucq_clean::{clean_union_view, union_answer_set};
