//! Multiple imperfect experts, in parallel (paper Section 6.2).
//!
//! Two ingredients:
//!
//! * **imperfection** — every closed question goes to a fixed-size panel
//!   with majority voting and early stop; open answers are re-verified with
//!   closed questions (this part is shared with
//!   [`qoco_crowd::MajorityCrowd`]);
//! * **parallelism** — "we verify the correctness of all tuples in `Q(D)`
//!   at the same time": [`ParallelMajorityCrowd`] fans a batch of
//!   verification questions out over worker threads (crossbeam scoped
//!   threads, one lock per expert), and [`clean_view_parallel`] is the
//!   Algorithm 3 variant that uses the batch API for the deletion-phase
//!   verification sweep while edits stay sequential (edits mutate `D`, and
//!   Proposition 3.3's monotonicity argument is per-edit).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use qoco_crowd::{
    Answer, CrowdAccess, CrowdError, CrowdStats, Oracle, OracleError, Question, RetryPolicy,
};
use qoco_data::{Database, Fact, Tuple};
use qoco_engine::{answer_set, Assignment};
use qoco_query::ConjunctiveQuery;

use crate::cleaner::{CleaningConfig, CleaningReport};
use crate::deletion::crowd_remove_wrong_answer;
use crate::error::CleanError;
use crate::insertion::crowd_add_missing_answer;
use crate::report::{UnresolvedItem, UnresolvedPhase};

/// A panel of experts usable from multiple threads: each expert sits behind
/// its own lock, so distinct questions proceed concurrently on distinct
/// experts.
pub struct ParallelMajorityCrowd<O: Oracle + Send> {
    experts: Vec<Mutex<O>>,
    /// Per-expert permanent-failure latches: an expert that returns
    /// [`OracleError::Dropped`] is excluded from every later question and
    /// the quorum shrinks to the experts still alive.
    dead: Vec<AtomicBool>,
    stats: Mutex<CrowdStats>,
    rotation: AtomicUsize,
    policy: RetryPolicy,
}

impl<O: Oracle + Send> ParallelMajorityCrowd<O> {
    /// Build from a panel (odd-sized panels make every majority decisive),
    /// with the default [`RetryPolicy`].
    ///
    /// # Panics
    /// Panics on an empty panel.
    pub fn new(experts: Vec<O>) -> Self {
        Self::with_policy(experts, RetryPolicy::default())
    }

    /// [`ParallelMajorityCrowd::new`] with an explicit retry policy.
    ///
    /// # Panics
    /// Panics on an empty panel.
    pub fn with_policy(experts: Vec<O>, policy: RetryPolicy) -> Self {
        assert!(!experts.is_empty(), "the crowd needs at least one expert");
        ParallelMajorityCrowd {
            dead: experts.iter().map(|_| AtomicBool::new(false)).collect(),
            experts: experts.into_iter().map(Mutex::new).collect(),
            stats: Mutex::new(CrowdStats::new()),
            rotation: AtomicUsize::new(0),
            policy,
        }
    }

    /// Panel size.
    pub fn size(&self) -> usize {
        self.experts.len()
    }

    /// Experts still alive (not permanently dropped).
    pub fn alive(&self) -> usize {
        self.dead
            .iter()
            .filter(|d| !d.load(Ordering::SeqCst))
            .count()
    }

    /// The interaction ledger so far.
    pub fn current_stats(&self) -> CrowdStats {
        *self.stats.lock()
    }

    fn alive_indices(&self) -> Vec<usize> {
        (0..self.experts.len())
            .filter(|&i| !self.dead[i].load(Ordering::SeqCst))
            .collect()
    }

    fn quorum_err(&self, q: &Question) -> CrowdError {
        CrowdError {
            question: format!("{q:?}"),
            attempts: 0,
            last: OracleError::Dropped,
        }
    }

    /// Ask one expert one question under the retry policy — the
    /// thread-safe sibling of the sequential session's `ask_with_retry`
    /// (same fault/retry/backoff accounting, stats behind the shared lock).
    fn ask_one(&self, idx: usize, q: &Question) -> Result<Answer, OracleError> {
        if self.dead[idx].load(Ordering::SeqCst) {
            return Err(OracleError::Dropped);
        }
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let reply = self.experts[idx].lock().answer(q);
            match reply {
                Ok(a) => return Ok(a),
                Err(e) => {
                    self.stats.lock().faults += 1;
                    qoco_telemetry::counter_add("crowd.faults", 1);
                    qoco_telemetry::event("crowd.fault", || format!("{} on {q:?}", e.as_str()));
                    match e {
                        OracleError::Timeout if attempts <= self.policy.max_retries => {
                            let backoff = self
                                .policy
                                .backoff_base_ms
                                .saturating_mul(1usize << (attempts - 1).min(16));
                            let mut s = self.stats.lock();
                            s.simulated_backoff_ms = s.simulated_backoff_ms.saturating_add(backoff);
                            s.retries += 1;
                            drop(s);
                            qoco_telemetry::counter_add("crowd.retries", 1);
                            qoco_telemetry::record_decision("crowd.retry", || {
                                qoco_telemetry::DecisionDetail {
                                    question: format!("{q:?}"),
                                    outcome: format!(
                                        "retry {attempts}/{} after {backoff}ms backoff",
                                        self.policy.max_retries
                                    ),
                                    evidence: vec![
                                        ("fault", e.as_str().to_string()),
                                        ("expert", idx.to_string()),
                                        (
                                            "policy",
                                            format!(
                                                "max_retries={} backoff_base_ms={}",
                                                self.policy.max_retries,
                                                self.policy.backoff_base_ms
                                            ),
                                        ),
                                    ],
                                }
                            });
                        }
                        OracleError::Dropped => {
                            self.dead[idx].store(true, Ordering::SeqCst);
                            return Err(e);
                        }
                        _ => return Err(e),
                    }
                }
            }
        }
    }

    /// Majority-vote one closed question over the alive panel (early stop
    /// at a strict majority; failing experts escalate to the rest).
    fn majority_bool(&self, q: &Question) -> Result<bool, CrowdError> {
        let alive = self.alive_indices();
        if alive.is_empty() || alive.len() < self.policy.min_quorum {
            return Err(self.quorum_err(q));
        }
        let need = alive.len() / 2 + 1;
        let mut yes = 0usize;
        let mut no = 0usize;
        let mut answered = 0usize;
        let mut last = OracleError::Dropped;
        for (pos, &idx) in alive.iter().enumerate() {
            match self.ask_one(idx, q) {
                Ok(a) => {
                    let b = a.expect_bool();
                    answered += 1;
                    {
                        let mut s = self.stats.lock();
                        s.closed_answers += 1;
                        match q {
                            Question::VerifyAnswer { .. } => s.verify_answer_crowd_answers += 1,
                            Question::VerifyFact(_) => s.verify_fact_crowd_answers += 1,
                            Question::VerifySatisfiable { .. } => s.satisfiable_crowd_answers += 1,
                            _ => {}
                        }
                    }
                    if b {
                        yes += 1;
                    } else {
                        no += 1;
                    }
                    if yes >= need || no >= need {
                        break;
                    }
                }
                Err(e) => {
                    last = e;
                    if pos + 1 < alive.len() {
                        self.stats.lock().escalations += 1;
                        qoco_telemetry::counter_add("crowd.escalations", 1);
                        qoco_telemetry::record_decision("crowd.escalation", || {
                            qoco_telemetry::DecisionDetail {
                                question: format!("{q:?}"),
                                outcome: format!(
                                    "expert {idx} failed ({}); escalating to the next panelist",
                                    last.as_str()
                                ),
                                evidence: vec![
                                    ("expert", idx.to_string()),
                                    ("answered_so_far", answered.to_string()),
                                    ("panel", alive.len().to_string()),
                                ],
                            }
                        });
                    }
                }
            }
        }
        if answered == 0 {
            return Err(CrowdError {
                question: format!("{q:?}"),
                attempts: 0,
                last,
            });
        }
        // Same verdict rule as the sequential MajorityCrowd: majority of
        // the answers actually delivered, ties → NO.
        Ok(yes > no)
    }

    /// Verify a whole batch of `TRUE(Q, t)?` questions concurrently — the
    /// "parallel foreach" of Section 6.2. Order of results matches the
    /// input order. Worker count is `min(batch, experts)`, so each worker
    /// tends to have an uncontended expert available.
    pub fn verify_answers_parallel(
        &self,
        q: &ConjunctiveQuery,
        answers: &[Tuple],
    ) -> Vec<Result<bool, CrowdError>> {
        if answers.is_empty() {
            return Vec::new();
        }
        {
            let mut s = self.stats.lock();
            s.verify_answer_questions += answers.len();
        }
        let verdicts: Vec<Mutex<Option<Result<bool, CrowdError>>>> =
            answers.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.experts.len().min(answers.len()).max(1);
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= answers.len() {
                        break;
                    }
                    let question = Question::VerifyAnswer {
                        query: q.clone(),
                        answer: answers[i].clone(),
                    };
                    let verdict = self.majority_bool(&question);
                    *verdicts[i].lock() = Some(verdict);
                });
            }
        })
        .expect("verification workers do not panic");
        verdicts
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("every answer index is claimed by exactly one worker")
            })
            .collect()
    }
}

impl<O: Oracle + Send> CrowdAccess for ParallelMajorityCrowd<O> {
    fn verify_fact(&mut self, f: &Fact) -> Result<bool, CrowdError> {
        self.stats.lock().verify_fact_questions += 1;
        self.majority_bool(&Question::VerifyFact(f.clone()))
    }

    fn verify_answer(&mut self, q: &ConjunctiveQuery, t: &Tuple) -> Result<bool, CrowdError> {
        self.stats.lock().verify_answer_questions += 1;
        self.majority_bool(&Question::VerifyAnswer {
            query: q.clone(),
            answer: t.clone(),
        })
    }

    fn verify_satisfiable(
        &mut self,
        q: &ConjunctiveQuery,
        partial: &Assignment,
    ) -> Result<bool, CrowdError> {
        self.stats.lock().satisfiable_questions += 1;
        self.majority_bool(&Question::VerifySatisfiable {
            query: q.clone(),
            partial: partial.clone(),
        })
    }

    fn complete(
        &mut self,
        q: &ConjunctiveQuery,
        partial: &Assignment,
    ) -> Result<Option<Assignment>, CrowdError> {
        let question = Question::Complete {
            query: q.clone(),
            partial: partial.clone(),
        };
        let alive = self.alive_indices();
        if alive.is_empty() || alive.len() < self.policy.min_quorum {
            return Err(self.quorum_err(&question));
        }
        let n = alive.len();
        let start = self.rotation.fetch_add(1, Ordering::Relaxed);
        let mut any_reply = false;
        let mut last = OracleError::Dropped;
        for i in 0..n {
            let idx = alive[(start + i) % n];
            self.stats.lock().complete_tasks += 1;
            let reply = match self.ask_one(idx, &question) {
                Ok(a) => {
                    any_reply = true;
                    a.expect_completion()
                }
                Err(e) => {
                    last = e;
                    self.stats.lock().escalations += 1;
                    qoco_telemetry::counter_add("crowd.escalations", 1);
                    continue;
                }
            };
            let Some(total) = reply else { continue };
            let filled = total.len().saturating_sub(partial.len());
            {
                let mut s = self.stats.lock();
                s.filled_variables += filled;
                s.open_answer_variables += filled;
            }
            // re-verify the provided witness facts with closed questions
            let mut ok = true;
            for atom in q.atoms() {
                let Some(fact) = total.ground_atom(atom) else {
                    ok = false;
                    break;
                };
                self.stats.lock().verify_fact_questions += 1;
                if !self.majority_bool(&Question::VerifyFact(fact))? {
                    ok = false;
                    break;
                }
            }
            if ok
                && q.inequalities()
                    .iter()
                    .all(|e| total.check_inequality(e) == Some(true))
            {
                return Ok(Some(total));
            }
        }
        if !any_reply {
            return Err(CrowdError {
                question: format!("{question:?}"),
                attempts: n,
                last,
            });
        }
        Ok(None)
    }

    fn next_missing_answer(
        &mut self,
        q: &ConjunctiveQuery,
        known: &[Tuple],
    ) -> Result<Option<Tuple>, CrowdError> {
        let question = Question::CompleteResult {
            query: q.clone(),
            known: known.to_vec(),
        };
        let alive = self.alive_indices();
        if alive.is_empty() || alive.len() < self.policy.min_quorum {
            return Err(self.quorum_err(&question));
        }
        let n = alive.len();
        let start = self.rotation.fetch_add(1, Ordering::Relaxed);
        let mut any_reply = false;
        let mut last = OracleError::Dropped;
        for i in 0..n {
            let idx = alive[(start + i) % n];
            self.stats.lock().complete_result_tasks += 1;
            let reply = match self.ask_one(idx, &question) {
                Ok(a) => {
                    any_reply = true;
                    a.expect_missing()
                }
                Err(e) => {
                    last = e;
                    self.stats.lock().escalations += 1;
                    qoco_telemetry::counter_add("crowd.escalations", 1);
                    continue;
                }
            };
            let Some(t) = reply else { continue };
            {
                let mut s = self.stats.lock();
                s.open_answer_variables += q.head().len();
                s.verify_answer_questions += 1;
            }
            if self.majority_bool(&Question::VerifyAnswer {
                query: q.clone(),
                answer: t.clone(),
            })? {
                self.stats.lock().missing_answers_provided += 1;
                return Ok(Some(t));
            }
        }
        if !any_reply {
            return Err(CrowdError {
                question: format!("{question:?}"),
                attempts: n,
                last,
            });
        }
        Ok(None)
    }

    fn stats(&self) -> CrowdStats {
        *self.stats.lock()
    }
}

impl<O: Oracle + Send> ParallelMajorityCrowd<O> {
    /// Post `COMPL(Q(D))` to every alive expert concurrently ("post
    /// together multiple completion questions", Section 6.2), deduplicate
    /// the replies and majority-verify each candidate. Returns the
    /// verified missing answers plus the crowd failure that cut the batch
    /// short, if any (no alive expert replied, or verification lost its
    /// quorum mid-batch).
    pub fn missing_answers_parallel(
        &self,
        q: &ConjunctiveQuery,
        known: &[Tuple],
    ) -> (Vec<Tuple>, Option<CrowdError>) {
        let question = Question::CompleteResult {
            query: q.clone(),
            known: known.to_vec(),
        };
        let alive = self.alive_indices();
        if alive.is_empty() || alive.len() < self.policy.min_quorum {
            return (Vec::new(), Some(self.quorum_err(&question)));
        }
        let replies: Vec<Mutex<Result<Option<Tuple>, OracleError>>> = alive
            .iter()
            .map(|_| Mutex::new(Err(OracleError::Dropped)))
            .collect();
        crossbeam::thread::scope(|scope| {
            for (slot, &idx) in replies.iter().zip(&alive) {
                let question = &question;
                scope.spawn(move |_| {
                    *slot.lock() = self.ask_one(idx, question).map(|a| a.expect_missing());
                });
            }
        })
        .expect("completion workers do not panic");
        {
            let mut s = self.stats.lock();
            s.complete_result_tasks += alive.len();
        }
        let outcomes: Vec<Result<Option<Tuple>, OracleError>> =
            replies.into_iter().map(|m| m.into_inner()).collect();
        if outcomes.iter().all(|r| r.is_err()) {
            let last = outcomes
                .into_iter()
                .filter_map(|r| r.err())
                .next_back()
                .unwrap_or(OracleError::Dropped);
            return (
                Vec::new(),
                Some(CrowdError {
                    question: format!("{question:?}"),
                    attempts: alive.len(),
                    last,
                }),
            );
        }
        let mut candidates: Vec<Tuple> = outcomes
            .into_iter()
            .filter_map(|r| r.ok().flatten())
            .collect();
        candidates.sort();
        candidates.dedup();
        let mut verified = Vec::new();
        for t in candidates {
            {
                let mut s = self.stats.lock();
                s.open_answer_variables += q.head().len();
                s.verify_answer_questions += 1;
            }
            match self.majority_bool(&Question::VerifyAnswer {
                query: q.clone(),
                answer: t.clone(),
            }) {
                Ok(true) => {
                    self.stats.lock().missing_answers_provided += 1;
                    verified.push(t);
                }
                Ok(false) => {}
                Err(e) => return (verified, Some(e)),
            }
        }
        (verified, None)
    }
}

/// Algorithm 3 with the Section 6.2 parallel verification sweep: all
/// unverified answers of `Q(D)` are verified concurrently, then the wrong
/// ones are removed and the missing ones added sequentially.
pub fn clean_view_parallel<O: Oracle + Send>(
    q: &ConjunctiveQuery,
    db: &mut Database,
    crowd: &mut ParallelMajorityCrowd<O>,
    config: CleaningConfig,
) -> Result<CleaningReport, CleanError> {
    let mut report = CleaningReport::new();
    let mut verified: std::collections::BTreeSet<Tuple> = Default::default();
    let mut skipped: std::collections::BTreeSet<Tuple> = Default::default();
    let mut split = config.split.build();
    let mut first = true;

    loop {
        let unverified: Vec<Tuple> = answer_set(q, db)
            .into_iter()
            .filter(|t| !verified.contains(t) && !skipped.contains(t))
            .collect();
        if !first && unverified.is_empty() {
            break;
        }
        first = false;
        report.iterations += 1;
        if report.iterations > config.max_iterations {
            return Err(CleanError::IterationBudget {
                budget: config.max_iterations,
            });
        }

        // ---- parallel verification sweep + sequential deletions ----
        let del_before = crowd.stats();
        let verdicts = crowd.verify_answers_parallel(q, &unverified);
        for (t, verdict) in unverified.into_iter().zip(verdicts) {
            match verdict {
                Ok(true) => {
                    verified.insert(t);
                }
                Ok(false) => {
                    if answer_set(q, db).contains(&t) {
                        let out = crowd_remove_wrong_answer(q, db, &t, crowd, config.deletion)?;
                        report.deletion_upper_bound += out.upper_bound;
                        report.anomalies += out.anomalies;
                        report.edits.extend(out.edits);
                        if let Some(e) = out.failure {
                            report.unresolved.push(UnresolvedItem {
                                phase: UnresolvedPhase::Delete,
                                answer: Some(t.clone()),
                                reason: e.to_string(),
                            });
                            skipped.insert(t);
                        } else {
                            // counted only when the removal completed — a
                            // crowd failure mid-removal is unresolved, not
                            // a removed answer
                            report.wrong_answers += 1;
                        }
                    }
                }
                Err(e) => {
                    report.unresolved.push(UnresolvedItem {
                        phase: UnresolvedPhase::Verify,
                        answer: Some(t.clone()),
                        reason: e.to_string(),
                    });
                    skipped.insert(t);
                }
            }
        }
        report
            .deletion_stats
            .absorb(&crowd.stats().since(&del_before));

        // ---- insertion phase: batch-post completion questions ----
        let ins_before = crowd.stats();
        'insertion: loop {
            let known = answer_set(q, db);
            let (batch, batch_failure) = crowd.missing_answers_parallel(q, &known);
            if batch.is_empty() && batch_failure.is_none() {
                break;
            }
            for t in batch {
                // an earlier insertion of this round may have added it
                if answer_set(q, db).contains(&t) {
                    verified.insert(t);
                    continue;
                }
                let out =
                    crowd_add_missing_answer(q, db, &t, crowd, &mut *split, config.insertion)?;
                report.insertion_upper_bound += out.upper_bound;
                report.edits.extend(out.edits);
                if let Some(e) = out.failure {
                    report.unresolved.push(UnresolvedItem {
                        phase: UnresolvedPhase::Insert,
                        answer: Some(t.clone()),
                        reason: e.to_string(),
                    });
                    skipped.insert(t);
                    break 'insertion;
                }
                report.missing_answers += 1;
                if out.achieved {
                    verified.insert(t);
                } else {
                    report.anomalies += 1;
                }
            }
            if let Some(e) = batch_failure {
                report.unresolved.push(UnresolvedItem {
                    phase: UnresolvedPhase::Insert,
                    answer: None,
                    reason: e.to_string(),
                });
                break;
            }
        }
        report
            .insertion_stats
            .absorb(&crowd.stats().since(&ins_before));
    }

    report.total_stats = report.deletion_stats;
    report.total_stats.absorb(&report.insertion_stats);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_crowd::{FaultPlan, FaultyOracle, ImperfectOracle, PerfectOracle};
    use qoco_data::{tup, Schema};
    use qoco_query::parse_query;
    use std::sync::Arc;

    fn faulty(g: &Database, spec: &str) -> FaultyOracle<PerfectOracle> {
        let plan = if spec.is_empty() {
            FaultPlan::none()
        } else {
            spec.parse().unwrap()
        };
        FaultyOracle::new(PerfectOracle::new(g.clone()), plan)
    }

    fn setup() -> (Arc<Schema>, Database, Database, ConjunctiveQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap();
        let mut d = Database::empty(schema.clone());
        for (dt, w, r, s, u) in [
            ("11.07.10", "ESP", "NED", "Final", "1:0"),
            ("12.07.98", "ESP", "NED", "Final", "4:2"), // false
            ("13.07.14", "GER", "ARG", "Final", "1:0"),
            ("08.07.90", "GER", "ARG", "Final", "1:0"),
        ] {
            d.insert_named("Games", tup![dt, w, r, s, u]).unwrap();
        }
        d.insert_named("Teams", tup!["ESP", "EU"]).unwrap();
        d.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        // ITA missing entirely
        let mut g = Database::empty(schema.clone());
        for (dt, w, r, s, u) in [
            ("11.07.10", "ESP", "NED", "Final", "1:0"),
            ("13.07.14", "GER", "ARG", "Final", "1:0"),
            ("08.07.90", "GER", "ARG", "Final", "1:0"),
            ("09.07.06", "ITA", "FRA", "Final", "5:3"),
            ("11.07.82", "ITA", "GER", "Final", "3:1"),
        ] {
            g.insert_named("Games", tup![dt, w, r, s, u]).unwrap();
        }
        for c in ["ESP", "GER", "ITA"] {
            g.insert_named("Teams", tup![c, "EU"]).unwrap();
        }
        let q = parse_query(
            &schema,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap();
        (schema, d, g, q)
    }

    fn true_answers(g: &Database, q: &ConjunctiveQuery) -> Vec<Tuple> {
        let gm = g.clone();
        answer_set(q, &gm)
    }

    #[test]
    fn parallel_batch_verification_matches_sequential() {
        let (_, d, g, q) = setup();
        let crowd = ParallelMajorityCrowd::new(
            (0..3)
                .map(|_| PerfectOracle::new(g.clone()))
                .collect::<Vec<_>>(),
        );
        let answers = answer_set(&q, &d);
        let verdicts = crowd.verify_answers_parallel(&q, &answers);
        assert_eq!(verdicts.len(), answers.len());
        let truth = true_answers(&g, &q);
        for (t, v) in answers.iter().zip(&verdicts) {
            assert_eq!(*v.as_ref().unwrap(), truth.contains(t), "verdict for {t}");
        }
        // early stop: 2 answers per question with unanimous experts
        assert_eq!(crowd.current_stats().closed_answers, 2 * answers.len());
    }

    #[test]
    fn parallel_cleaner_converges_with_perfect_panel() {
        let (_, mut d, g, q) = setup();
        let mut crowd = ParallelMajorityCrowd::new(
            (0..3)
                .map(|_| PerfectOracle::new(g.clone()))
                .collect::<Vec<_>>(),
        );
        let report =
            clean_view_parallel(&q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        assert_eq!(answer_set(&q, &d), true_answers(&g, &q));
        assert!(report.wrong_answers >= 1, "ESP must be caught");
        assert!(report.missing_answers >= 1, "ITA must be added");
    }

    #[test]
    fn parallel_cleaner_survives_one_liar() {
        let (_, mut d, g, q) = setup();
        // one always-lying expert outvoted by two perfect ones
        let experts: Vec<Box<dyn Oracle + Send>> = vec![
            Box::new(ImperfectOracle::new(g.clone(), 1.0, 99)),
            Box::new(PerfectOracle::new(g.clone())),
            Box::new(PerfectOracle::new(g.clone())),
        ];
        let mut crowd = ParallelMajorityCrowd::new(experts);
        let report =
            clean_view_parallel(&q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        assert_eq!(answer_set(&q, &d), true_answers(&g, &q));
        assert_eq!(report.anomalies, 0);
    }

    #[test]
    fn parallel_cleaner_with_noisy_experts_converges() {
        let (_, mut d, g, q) = setup();
        let experts: Vec<ImperfectOracle> = (0..5)
            .map(|i| ImperfectOracle::new(g.clone(), 0.1, 1000 + i))
            .collect();
        let mut crowd = ParallelMajorityCrowd::new(experts);
        let report = clean_view_parallel(
            &q,
            &mut d,
            &mut crowd,
            CleaningConfig {
                max_iterations: 50,
                ..Default::default()
            },
        );
        // with 5 experts at 10% error, majority voting virtually always
        // converges to the truth
        let report = report.expect("cleaning should converge");
        assert_eq!(answer_set(&q, &d), true_answers(&g, &q));
        assert!(report.total_stats.closed_answers > 0);
    }

    #[test]
    fn parallel_missing_answer_batch_collects_and_verifies() {
        let (_, d, g, q) = setup();
        let crowd = ParallelMajorityCrowd::new(
            (0..3)
                .map(|_| PerfectOracle::new(g.clone()))
                .collect::<Vec<_>>(),
        );
        let known = answer_set(&q, &d);
        let (batch, failure) = crowd.missing_answers_parallel(&q, &known);
        assert!(failure.is_none());
        // ITA is missing from the view; all experts report it, deduped
        assert_eq!(batch, vec![tup!["ITA"]]);
        let st = crowd.current_stats();
        assert_eq!(st.complete_result_tasks, 3, "one task per expert");
        assert_eq!(st.missing_answers_provided, 1, "deduplicated");
    }

    #[test]
    fn empty_batch_is_free() {
        let (_, _, g, q) = setup();
        let crowd = ParallelMajorityCrowd::new(vec![PerfectOracle::new(g)]);
        assert!(crowd.verify_answers_parallel(&q, &[]).is_empty());
        assert_eq!(crowd.current_stats().closed_answers, 0);
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn empty_panel_panics() {
        let _ = ParallelMajorityCrowd::<PerfectOracle>::new(vec![]);
    }

    #[test]
    fn parallel_crowd_degrades_quorum_when_an_expert_drops() {
        let (_, mut d, g, q) = setup();
        // one expert drops on its very first question, the other two stay
        let experts = vec![faulty(&g, "drop@0"), faulty(&g, ""), faulty(&g, "")];
        let mut crowd = ParallelMajorityCrowd::new(experts);
        let report =
            clean_view_parallel(&q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        assert_eq!(answer_set(&q, &d), true_answers(&g, &q));
        assert!(!report.is_partial(), "two alive experts still answer");
        assert_eq!(crowd.alive(), 2);
        assert!(crowd.current_stats().faults >= 1);
    }

    #[test]
    fn fully_dropped_parallel_panel_yields_a_partial_report() {
        let (_, mut d, g, q) = setup();
        let experts = vec![
            faulty(&g, "drop@0"),
            faulty(&g, "drop@0"),
            faulty(&g, "drop@0"),
        ];
        let mut crowd = ParallelMajorityCrowd::new(experts);
        let report = clean_view_parallel(&q, &mut d, &mut crowd, CleaningConfig::default())
            .expect("a dead crowd must yield a partial report, not an error");
        assert!(report.is_partial());
        assert!(report
            .unresolved
            .iter()
            .any(|u| u.phase == UnresolvedPhase::Verify));
        assert!(report
            .unresolved
            .iter()
            .any(|u| u.phase == UnresolvedPhase::Insert));
        assert_eq!(crowd.alive(), 0);
        assert!(
            report.edits.is_empty(),
            "nothing was confirmed, nothing edited"
        );
    }
}
