//! Multiple imperfect experts, in parallel (paper Section 6.2).
//!
//! Two ingredients:
//!
//! * **imperfection** — every closed question goes to a fixed-size panel
//!   with majority voting and early stop; open answers are re-verified with
//!   closed questions (this part is shared with
//!   [`qoco_crowd::MajorityCrowd`]);
//! * **parallelism** — "we verify the correctness of all tuples in `Q(D)`
//!   at the same time": [`ParallelMajorityCrowd`] fans a batch of
//!   verification questions out over worker threads (crossbeam scoped
//!   threads, one lock per expert), and [`clean_view_parallel`] is the
//!   Algorithm 3 variant that uses the batch API for the deletion-phase
//!   verification sweep while edits stay sequential (edits mutate `D`, and
//!   Proposition 3.3's monotonicity argument is per-edit).

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use qoco_crowd::{CrowdAccess, CrowdStats, Oracle, Question};
use qoco_data::{Database, Fact, Tuple};
use qoco_engine::{answer_set, Assignment};
use qoco_query::ConjunctiveQuery;

use crate::cleaner::{CleaningConfig, CleaningReport};
use crate::deletion::crowd_remove_wrong_answer;
use crate::error::CleanError;
use crate::insertion::crowd_add_missing_answer;

/// A panel of experts usable from multiple threads: each expert sits behind
/// its own lock, so distinct questions proceed concurrently on distinct
/// experts.
pub struct ParallelMajorityCrowd<O: Oracle + Send> {
    experts: Vec<Mutex<O>>,
    stats: Mutex<CrowdStats>,
    rotation: AtomicUsize,
}

impl<O: Oracle + Send> ParallelMajorityCrowd<O> {
    /// Build from a panel (odd-sized panels make every majority decisive).
    ///
    /// # Panics
    /// Panics on an empty panel.
    pub fn new(experts: Vec<O>) -> Self {
        assert!(!experts.is_empty(), "the crowd needs at least one expert");
        ParallelMajorityCrowd {
            experts: experts.into_iter().map(Mutex::new).collect(),
            stats: Mutex::new(CrowdStats::new()),
            rotation: AtomicUsize::new(0),
        }
    }

    /// Panel size.
    pub fn size(&self) -> usize {
        self.experts.len()
    }

    /// The interaction ledger so far.
    pub fn current_stats(&self) -> CrowdStats {
        *self.stats.lock()
    }

    /// Majority-vote one closed question (early stop at a strict majority).
    fn majority_bool(&self, q: &Question) -> bool {
        let need = self.experts.len() / 2 + 1;
        let mut yes = 0usize;
        let mut no = 0usize;
        for expert in &self.experts {
            let b = expert.lock().answer(q).expect_bool();
            {
                let mut s = self.stats.lock();
                s.closed_answers += 1;
                match q {
                    Question::VerifyAnswer { .. } => s.verify_answer_crowd_answers += 1,
                    Question::VerifyFact(_) => s.verify_fact_crowd_answers += 1,
                    Question::VerifySatisfiable { .. } => s.satisfiable_crowd_answers += 1,
                    _ => {}
                }
            }
            if b {
                yes += 1;
            } else {
                no += 1;
            }
            if yes >= need || no >= need {
                break;
            }
        }
        yes >= need
    }

    /// Verify a whole batch of `TRUE(Q, t)?` questions concurrently — the
    /// "parallel foreach" of Section 6.2. Order of results matches the
    /// input order. Worker count is `min(batch, experts)`, so each worker
    /// tends to have an uncontended expert available.
    pub fn verify_answers_parallel(&self, q: &ConjunctiveQuery, answers: &[Tuple]) -> Vec<bool> {
        if answers.is_empty() {
            return Vec::new();
        }
        {
            let mut s = self.stats.lock();
            s.verify_answer_questions += answers.len();
        }
        let verdicts: Vec<Mutex<bool>> = answers.iter().map(|_| Mutex::new(false)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.experts.len().min(answers.len()).max(1);
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= answers.len() {
                        break;
                    }
                    let question = Question::VerifyAnswer {
                        query: q.clone(),
                        answer: answers[i].clone(),
                    };
                    let verdict = self.majority_bool(&question);
                    *verdicts[i].lock() = verdict;
                });
            }
        })
        .expect("verification workers do not panic");
        verdicts.into_iter().map(|m| m.into_inner()).collect()
    }
}

impl<O: Oracle + Send> CrowdAccess for ParallelMajorityCrowd<O> {
    fn verify_fact(&mut self, f: &Fact) -> bool {
        self.stats.lock().verify_fact_questions += 1;
        self.majority_bool(&Question::VerifyFact(f.clone()))
    }

    fn verify_answer(&mut self, q: &ConjunctiveQuery, t: &Tuple) -> bool {
        self.stats.lock().verify_answer_questions += 1;
        self.majority_bool(&Question::VerifyAnswer {
            query: q.clone(),
            answer: t.clone(),
        })
    }

    fn verify_satisfiable(&mut self, q: &ConjunctiveQuery, partial: &Assignment) -> bool {
        self.stats.lock().satisfiable_questions += 1;
        self.majority_bool(&Question::VerifySatisfiable {
            query: q.clone(),
            partial: partial.clone(),
        })
    }

    fn complete(&mut self, q: &ConjunctiveQuery, partial: &Assignment) -> Option<Assignment> {
        let n = self.experts.len();
        let start = self.rotation.fetch_add(1, Ordering::Relaxed);
        for i in 0..n {
            let idx = (start + i) % n;
            self.stats.lock().complete_tasks += 1;
            let reply = self.experts[idx]
                .lock()
                .answer(&Question::Complete {
                    query: q.clone(),
                    partial: partial.clone(),
                })
                .expect_completion();
            let Some(total) = reply else { continue };
            let filled = total.len().saturating_sub(partial.len());
            {
                let mut s = self.stats.lock();
                s.filled_variables += filled;
                s.open_answer_variables += filled;
            }
            // re-verify the provided witness facts with closed questions
            let mut ok = true;
            for atom in q.atoms() {
                let Some(fact) = total.ground_atom(atom) else {
                    ok = false;
                    break;
                };
                self.stats.lock().verify_fact_questions += 1;
                if !self.majority_bool(&Question::VerifyFact(fact)) {
                    ok = false;
                    break;
                }
            }
            if ok
                && q.inequalities()
                    .iter()
                    .all(|e| total.check_inequality(e) == Some(true))
            {
                return Some(total);
            }
        }
        None
    }

    fn next_missing_answer(&mut self, q: &ConjunctiveQuery, known: &[Tuple]) -> Option<Tuple> {
        let n = self.experts.len();
        let start = self.rotation.fetch_add(1, Ordering::Relaxed);
        for i in 0..n {
            let idx = (start + i) % n;
            self.stats.lock().complete_result_tasks += 1;
            let reply = self.experts[idx]
                .lock()
                .answer(&Question::CompleteResult {
                    query: q.clone(),
                    known: known.to_vec(),
                })
                .expect_missing();
            let Some(t) = reply else { continue };
            {
                let mut s = self.stats.lock();
                s.open_answer_variables += q.head().len();
                s.verify_answer_questions += 1;
            }
            if self.majority_bool(&Question::VerifyAnswer {
                query: q.clone(),
                answer: t.clone(),
            }) {
                self.stats.lock().missing_answers_provided += 1;
                return Some(t);
            }
        }
        None
    }

    fn stats(&self) -> CrowdStats {
        *self.stats.lock()
    }
}

impl<O: Oracle + Send> ParallelMajorityCrowd<O> {
    /// Post `COMPL(Q(D))` to every expert concurrently ("post together
    /// multiple completion questions", Section 6.2), deduplicate the
    /// replies and majority-verify each candidate. Returns the verified
    /// missing answers.
    pub fn missing_answers_parallel(&self, q: &ConjunctiveQuery, known: &[Tuple]) -> Vec<Tuple> {
        let replies: Vec<Mutex<Option<Tuple>>> =
            self.experts.iter().map(|_| Mutex::new(None)).collect();
        crossbeam::thread::scope(|scope| {
            for (i, expert) in self.experts.iter().enumerate() {
                let slot = &replies[i];
                scope.spawn(move |_| {
                    let reply = expert
                        .lock()
                        .answer(&Question::CompleteResult {
                            query: q.clone(),
                            known: known.to_vec(),
                        })
                        .expect_missing();
                    *slot.lock() = reply;
                });
            }
        })
        .expect("completion workers do not panic");
        {
            let mut s = self.stats.lock();
            s.complete_result_tasks += self.experts.len();
        }
        let mut candidates: Vec<Tuple> =
            replies.into_iter().filter_map(|m| m.into_inner()).collect();
        candidates.sort();
        candidates.dedup();
        let mut verified = Vec::new();
        for t in candidates {
            {
                let mut s = self.stats.lock();
                s.open_answer_variables += q.head().len();
                s.verify_answer_questions += 1;
            }
            if self.majority_bool(&Question::VerifyAnswer {
                query: q.clone(),
                answer: t.clone(),
            }) {
                self.stats.lock().missing_answers_provided += 1;
                verified.push(t);
            }
        }
        verified
    }
}

/// Algorithm 3 with the Section 6.2 parallel verification sweep: all
/// unverified answers of `Q(D)` are verified concurrently, then the wrong
/// ones are removed and the missing ones added sequentially.
pub fn clean_view_parallel<O: Oracle + Send>(
    q: &ConjunctiveQuery,
    db: &mut Database,
    crowd: &mut ParallelMajorityCrowd<O>,
    config: CleaningConfig,
) -> Result<CleaningReport, CleanError> {
    let mut report = CleaningReport::new();
    let mut verified: std::collections::BTreeSet<Tuple> = Default::default();
    let mut split = config.split.build();
    let mut first = true;

    loop {
        let unverified: Vec<Tuple> = answer_set(q, db)
            .into_iter()
            .filter(|t| !verified.contains(t))
            .collect();
        if !first && unverified.is_empty() {
            break;
        }
        first = false;
        report.iterations += 1;
        if report.iterations > config.max_iterations {
            return Err(CleanError::IterationBudget {
                budget: config.max_iterations,
            });
        }

        // ---- parallel verification sweep + sequential deletions ----
        let del_before = crowd.stats();
        let verdicts = crowd.verify_answers_parallel(q, &unverified);
        for (t, ok) in unverified.into_iter().zip(verdicts) {
            if ok {
                verified.insert(t);
            } else if answer_set(q, db).contains(&t) {
                report.wrong_answers += 1;
                let out = crowd_remove_wrong_answer(q, db, &t, crowd, config.deletion)?;
                report.deletion_upper_bound += out.upper_bound;
                report.anomalies += out.anomalies;
                report.edits.extend(out.edits);
            }
        }
        report
            .deletion_stats
            .absorb(&crowd.stats().since(&del_before));

        // ---- insertion phase: batch-post completion questions ----
        let ins_before = crowd.stats();
        loop {
            let known = answer_set(q, db);
            let batch = crowd.missing_answers_parallel(q, &known);
            if batch.is_empty() {
                break;
            }
            for t in batch {
                // an earlier insertion of this round may have added it
                if answer_set(q, db).contains(&t) {
                    verified.insert(t);
                    continue;
                }
                report.missing_answers += 1;
                let out =
                    crowd_add_missing_answer(q, db, &t, crowd, &mut *split, config.insertion)?;
                report.insertion_upper_bound += out.upper_bound;
                if out.achieved {
                    verified.insert(t);
                } else {
                    report.anomalies += 1;
                }
                report.edits.extend(out.edits);
            }
        }
        report
            .insertion_stats
            .absorb(&crowd.stats().since(&ins_before));
    }

    report.total_stats = report.deletion_stats;
    report.total_stats.absorb(&report.insertion_stats);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_crowd::{ImperfectOracle, PerfectOracle};
    use qoco_data::{tup, Schema};
    use qoco_query::parse_query;
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Database, Database, ConjunctiveQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap();
        let mut d = Database::empty(schema.clone());
        for (dt, w, r, s, u) in [
            ("11.07.10", "ESP", "NED", "Final", "1:0"),
            ("12.07.98", "ESP", "NED", "Final", "4:2"), // false
            ("13.07.14", "GER", "ARG", "Final", "1:0"),
            ("08.07.90", "GER", "ARG", "Final", "1:0"),
        ] {
            d.insert_named("Games", tup![dt, w, r, s, u]).unwrap();
        }
        d.insert_named("Teams", tup!["ESP", "EU"]).unwrap();
        d.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        // ITA missing entirely
        let mut g = Database::empty(schema.clone());
        for (dt, w, r, s, u) in [
            ("11.07.10", "ESP", "NED", "Final", "1:0"),
            ("13.07.14", "GER", "ARG", "Final", "1:0"),
            ("08.07.90", "GER", "ARG", "Final", "1:0"),
            ("09.07.06", "ITA", "FRA", "Final", "5:3"),
            ("11.07.82", "ITA", "GER", "Final", "3:1"),
        ] {
            g.insert_named("Games", tup![dt, w, r, s, u]).unwrap();
        }
        for c in ["ESP", "GER", "ITA"] {
            g.insert_named("Teams", tup![c, "EU"]).unwrap();
        }
        let q = parse_query(
            &schema,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap();
        (schema, d, g, q)
    }

    fn true_answers(g: &Database, q: &ConjunctiveQuery) -> Vec<Tuple> {
        let gm = g.clone();
        answer_set(q, &gm)
    }

    #[test]
    fn parallel_batch_verification_matches_sequential() {
        let (_, d, g, q) = setup();
        let crowd = ParallelMajorityCrowd::new(
            (0..3)
                .map(|_| PerfectOracle::new(g.clone()))
                .collect::<Vec<_>>(),
        );
        let answers = answer_set(&q, &d);
        let verdicts = crowd.verify_answers_parallel(&q, &answers);
        assert_eq!(verdicts.len(), answers.len());
        let truth = true_answers(&g, &q);
        for (t, v) in answers.iter().zip(&verdicts) {
            assert_eq!(*v, truth.contains(t), "verdict for {t}");
        }
        // early stop: 2 answers per question with unanimous experts
        assert_eq!(crowd.current_stats().closed_answers, 2 * answers.len());
    }

    #[test]
    fn parallel_cleaner_converges_with_perfect_panel() {
        let (_, mut d, g, q) = setup();
        let mut crowd = ParallelMajorityCrowd::new(
            (0..3)
                .map(|_| PerfectOracle::new(g.clone()))
                .collect::<Vec<_>>(),
        );
        let report =
            clean_view_parallel(&q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        assert_eq!(answer_set(&q, &d), true_answers(&g, &q));
        assert!(report.wrong_answers >= 1, "ESP must be caught");
        assert!(report.missing_answers >= 1, "ITA must be added");
    }

    #[test]
    fn parallel_cleaner_survives_one_liar() {
        let (_, mut d, g, q) = setup();
        // one always-lying expert outvoted by two perfect ones
        let experts: Vec<Box<dyn Oracle + Send>> = vec![
            Box::new(ImperfectOracle::new(g.clone(), 1.0, 99)),
            Box::new(PerfectOracle::new(g.clone())),
            Box::new(PerfectOracle::new(g.clone())),
        ];
        let mut crowd = ParallelMajorityCrowd::new(experts);
        let report =
            clean_view_parallel(&q, &mut d, &mut crowd, CleaningConfig::default()).unwrap();
        assert_eq!(answer_set(&q, &d), true_answers(&g, &q));
        assert_eq!(report.anomalies, 0);
    }

    #[test]
    fn parallel_cleaner_with_noisy_experts_converges() {
        let (_, mut d, g, q) = setup();
        let experts: Vec<ImperfectOracle> = (0..5)
            .map(|i| ImperfectOracle::new(g.clone(), 0.1, 1000 + i))
            .collect();
        let mut crowd = ParallelMajorityCrowd::new(experts);
        let report = clean_view_parallel(
            &q,
            &mut d,
            &mut crowd,
            CleaningConfig {
                max_iterations: 50,
                ..Default::default()
            },
        );
        // with 5 experts at 10% error, majority voting virtually always
        // converges to the truth
        let report = report.expect("cleaning should converge");
        assert_eq!(answer_set(&q, &d), true_answers(&g, &q));
        assert!(report.total_stats.closed_answers > 0);
    }

    #[test]
    fn parallel_missing_answer_batch_collects_and_verifies() {
        let (_, d, g, q) = setup();
        let crowd = ParallelMajorityCrowd::new(
            (0..3)
                .map(|_| PerfectOracle::new(g.clone()))
                .collect::<Vec<_>>(),
        );
        let known = answer_set(&q, &d);
        let batch = crowd.missing_answers_parallel(&q, &known);
        // ITA is missing from the view; all experts report it, deduped
        assert_eq!(batch, vec![tup!["ITA"]]);
        let st = crowd.current_stats();
        assert_eq!(st.complete_result_tasks, 3, "one task per expert");
        assert_eq!(st.missing_answers_provided, 1, "deduplicated");
    }

    #[test]
    fn empty_batch_is_free() {
        let (_, _, g, q) = setup();
        let crowd = ParallelMajorityCrowd::new(vec![PerfectOracle::new(g)]);
        assert!(crowd.verify_answers_parallel(&q, &[]).is_empty());
        assert_eq!(crowd.current_stats().closed_answers, 0);
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn empty_panel_panics() {
        let _ = ParallelMajorityCrowd::<PerfectOracle>::new(vec![]);
    }
}
