//! Durable backing for parked sessions.
//!
//! A [`SessionStore`] keeps one directory per session under its root:
//!
//! ```text
//! <root>/<id>/spec.txt          schema + query + strategy config
//! <root>/<id>/db/<rel>.tsv      the dirty database (qoco_data::save_dir)
//! <root>/<id>/session.journal   consumed-answer log (PR 4 wire format)
//! <root>/<id>/epoch             rehydration counter (see below)
//! ```
//!
//! The write discipline is write-ahead: [`SessionStore::append_answer`]
//! persists (append + flush + fsync) the answer record *before* the
//! in-memory machine applies it. A crash therefore loses at most answers
//! the submitter was never acknowledged for, and
//! [`SessionStore::load`] + `SessionMachine::rehydrate` reconstruct every
//! in-flight session bit-identically — including a torn final journal
//! line, which `Journal::parse` drops.
//!
//! The epoch file counts rehydrations. Every restart bumps it, and the
//! serve API echoes the current epoch in every response: an answer
//! submitted under an older epoch is *stale* — it raced a crash, and its
//! question may have been re-issued — so it is acknowledged without being
//! applied (the journal already holds whatever the dead process accepted).
//!
//! For fault-injection tests, [`SessionStore::fail_appends`] makes every
//! subsequent journal append fail like a full disk, letting callers assert
//! the degrade path (count `journal.write_errors`, expire to a PARTIAL
//! REPORT) without a real ENOSPC.

use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use qoco_crowd::JournalRecord;
use qoco_data::{load_dir, save_dir, Database, Schema};
use qoco_query::parse_query;

use crate::cleaner::CleaningConfig;
use crate::deletion::DeletionStrategy;
use crate::insertion::InsertionOptions;
use crate::machine::SessionSpec;
use crate::split::SplitStrategyKind;

/// Render a [`DeletionStrategy`] in the CLI's flag format.
pub fn deletion_to_str(d: DeletionStrategy) -> String {
    match d {
        DeletionStrategy::Qoco => "qoco".to_string(),
        DeletionStrategy::QocoMinus => "qoco-".to_string(),
        DeletionStrategy::Random(seed) => format!("random:{seed}"),
    }
}

/// Parse the CLI's deletion-strategy format (`qoco`, `qoco-`,
/// `random[:seed]`).
pub fn deletion_from_str(s: &str) -> Result<DeletionStrategy, String> {
    match s {
        "qoco" => Ok(DeletionStrategy::Qoco),
        "qoco-" => Ok(DeletionStrategy::QocoMinus),
        "random" => Ok(DeletionStrategy::Random(1)),
        other => match other.strip_prefix("random:") {
            Some(seed) => seed
                .parse()
                .map(DeletionStrategy::Random)
                .map_err(|_| format!("bad deletion seed in {s:?}")),
            None => Err(format!("unknown deletion strategy {s:?}")),
        },
    }
}

/// Render a [`SplitStrategyKind`] in the CLI's flag format.
pub fn split_to_str(s: SplitStrategyKind) -> String {
    match s {
        SplitStrategyKind::Naive => "naive".to_string(),
        SplitStrategyKind::MinCut => "mincut".to_string(),
        SplitStrategyKind::Provenance => "provenance".to_string(),
        SplitStrategyKind::Random(seed) => format!("random:{seed}"),
    }
}

/// Parse the CLI's split-strategy format (`naive`, `mincut`,
/// `provenance`, `random[:seed]`).
pub fn split_from_str(s: &str) -> Result<SplitStrategyKind, String> {
    match s {
        "naive" => Ok(SplitStrategyKind::Naive),
        "mincut" => Ok(SplitStrategyKind::MinCut),
        "provenance" => Ok(SplitStrategyKind::Provenance),
        "random" => Ok(SplitStrategyKind::Random(1)),
        other => match other.strip_prefix("random:") {
            Some(seed) => seed
                .parse()
                .map(SplitStrategyKind::Random)
                .map_err(|_| format!("bad split seed in {s:?}")),
            None => Err(format!("unknown split strategy {s:?}")),
        },
    }
}

fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b'\t' | b'\n' | b'\r' => {
                let _ = write!(out, "%{b:02X}");
            }
            _ => out.push(b as char),
        }
    }
    out
}

fn unescape_line(s: &str) -> Result<String, String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .ok_or_else(|| format!("truncated escape in {s:?}"))?;
            out.push(u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape in {s:?}"))?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("non-utf8 payload in {s:?}"))
}

fn bad_data(e: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.into())
}

/// Serialize a spec's scalar half (everything but the database) to the
/// `spec.txt` key–value format.
fn spec_text(spec: &SessionSpec) -> String {
    let mut out = String::from("qoco-session-spec\tv1\n");
    for (_, decl) in spec.dirty.schema().iter() {
        let _ = write!(out, "relation\t{}", escape_line(decl.name()));
        for attr in decl.attrs() {
            let _ = write!(out, "\t{}", escape_line(attr));
        }
        out.push('\n');
    }
    let _ = writeln!(out, "query\t{}", escape_line(&spec.query.display()));
    let _ = writeln!(out, "deletion\t{}", deletion_to_str(spec.config.deletion));
    let _ = writeln!(out, "split\t{}", split_to_str(spec.config.split));
    let _ = writeln!(
        out,
        "max_assignments\t{}",
        spec.config.insertion.max_assignments_per_subquery
    );
    let _ = writeln!(out, "max_iterations\t{}", spec.config.max_iterations);
    if let Some(ms) = spec.deadline_ms {
        let _ = writeln!(out, "deadline_ms\t{ms}");
    }
    out
}

/// Parse `spec.txt` back into a spec with an *empty* database of the
/// recorded schema; the caller fills the database from `db/`.
fn parse_spec_text(text: &str) -> io::Result<SessionSpec> {
    let mut lines = text.lines();
    if lines.next() != Some("qoco-session-spec\tv1") {
        return Err(bad_data("spec.txt: missing v1 header"));
    }
    let mut builder = Schema::builder();
    let mut query_text: Option<String> = None;
    let mut config = CleaningConfig::default();
    let mut deadline_ms = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let key = parts.next().unwrap_or("");
        match key {
            "relation" => {
                let fields: Vec<String> = parts
                    .map(unescape_line)
                    .collect::<Result<_, _>>()
                    .map_err(bad_data)?;
                let (name, attrs) = fields
                    .split_first()
                    .ok_or_else(|| bad_data("spec.txt: relation line without a name"))?;
                let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                builder = builder.relation(name, &attr_refs);
            }
            "query" => {
                let raw = parts
                    .next()
                    .ok_or_else(|| bad_data("spec.txt: empty query line"))?;
                query_text = Some(unescape_line(raw).map_err(bad_data)?);
            }
            "deletion" => {
                config.deletion =
                    deletion_from_str(parts.next().unwrap_or("")).map_err(bad_data)?;
            }
            "split" => {
                config.split = split_from_str(parts.next().unwrap_or("")).map_err(bad_data)?;
            }
            "max_assignments" => {
                config.insertion = InsertionOptions {
                    max_assignments_per_subquery: parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad_data("spec.txt: bad max_assignments"))?,
                };
            }
            "max_iterations" => {
                config.max_iterations = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad_data("spec.txt: bad max_iterations"))?;
            }
            "deadline_ms" => {
                deadline_ms = Some(
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad_data("spec.txt: bad deadline_ms"))?,
                );
            }
            other => return Err(bad_data(format!("spec.txt: unknown key {other:?}"))),
        }
    }
    let schema = builder.build().map_err(|e| bad_data(e.to_string()))?;
    let query_text = query_text.ok_or_else(|| bad_data("spec.txt: no query line"))?;
    let query = parse_query(&schema, &query_text)
        .map_err(|e| bad_data(format!("spec.txt: query does not parse: {e}")))?;
    Ok(SessionSpec {
        query,
        dirty: Database::empty(schema),
        config,
        deadline_ms,
    })
}

/// The on-disk session store; see the module docs.
pub struct SessionStore {
    root: PathBuf,
    fail_appends: AtomicBool,
}

impl SessionStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<SessionStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(SessionStore {
            root,
            fail_appends: AtomicBool::new(false),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Fault injection: when `true`, every subsequent
    /// [`SessionStore::append_answer`] fails like a full disk.
    pub fn fail_appends(&self, fail: bool) {
        self.fail_appends.store(fail, Ordering::SeqCst);
    }

    fn dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// Is `id` safe as a directory name? (The serve layer generates ids,
    /// but the store revalidates: defense against path traversal if an id
    /// ever arrives from the network.)
    pub fn valid_id(id: &str) -> bool {
        !id.is_empty()
            && id.len() <= 64
            && id
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    }

    /// Persist a fresh session: spec + dirty database + empty journal +
    /// epoch 1. Fails if the id already exists.
    pub fn create(&self, id: &str, spec: &SessionSpec) -> io::Result<()> {
        if !SessionStore::valid_id(id) {
            return Err(bad_data(format!("invalid session id {id:?}")));
        }
        let dir = self.dir(id);
        if dir.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("session {id} already exists"),
            ));
        }
        fs::create_dir_all(&dir)?;
        save_dir(&spec.dirty, &dir.join("db")).map_err(|e| bad_data(e.to_string()))?;
        fs::write(dir.join("spec.txt"), spec_text(spec))?;
        fs::write(dir.join("session.journal"), "")?;
        fs::write(dir.join("epoch"), "1\n")?;
        Ok(())
    }

    /// Load a session's spec and consumed-answer log. A torn final journal
    /// line (crash mid-append) is dropped, exactly as `--resume` does.
    pub fn load(&self, id: &str) -> io::Result<(SessionSpec, Vec<JournalRecord>)> {
        let dir = self.dir(id);
        let mut spec = parse_spec_text(&fs::read_to_string(dir.join("spec.txt"))?)?;
        let schema = spec.dirty.schema().clone();
        spec.dirty = load_dir(schema, &dir.join("db")).map_err(|e| bad_data(e.to_string()))?;
        let journal_text = fs::read_to_string(dir.join("session.journal"))?;
        let log = qoco_crowd::Journal::parse(&journal_text).map_err(bad_data)?;
        Ok((spec, log))
    }

    /// Write-ahead append of one answer record: append + flush + fsync
    /// *before* the caller applies the record to the in-memory machine.
    pub fn append_answer(&self, id: &str, record: &JournalRecord) -> io::Result<()> {
        if self.fail_appends.load(Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "no space left on device (injected)",
            ));
        }
        let mut file = fs::OpenOptions::new()
            .append(true)
            .open(self.dir(id).join("session.journal"))?;
        file.write_all(record.to_line().as_bytes())?;
        file.flush()?;
        file.sync_data()
    }

    /// All session ids present in the store, sorted.
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                if SessionStore::valid_id(name) && entry.path().join("spec.txt").exists() {
                    out.push(name.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// The session's current epoch (1 = never rehydrated).
    pub fn epoch(&self, id: &str) -> io::Result<u64> {
        let text = fs::read_to_string(self.dir(id).join("epoch"))?;
        text.trim()
            .parse()
            .map_err(|_| bad_data(format!("bad epoch file for session {id}")))
    }

    /// Bump and return the session's epoch — called once per rehydration,
    /// so answers addressed to the pre-crash incarnation are detectably
    /// stale.
    pub fn bump_epoch(&self, id: &str) -> io::Result<u64> {
        let next = self.epoch(id)? + 1;
        fs::write(self.dir(id).join("epoch"), format!("{next}\n"))?;
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{SessionMachine, SubmitOutcome};
    use qoco_crowd::{Answer, Oracle, OracleError, PerfectOracle};
    use qoco_data::{tup, Fact};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qoco-store-{tag}-{}-{}",
            std::process::id(),
            qoco_telemetry::now_ns()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fig1_spec() -> SessionSpec {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap();
        let mut dirty = Database::empty(schema.clone());
        for row in [
            tup!["13.07.14", "GER", "ARG", "Final", "1:0"],
            tup!["11.07.10", "ESP", "NED", "Final", "1:0"],
            tup!["12.07.98", "ESP", "NED", "Final", "4:2"],
            tup!["12.07.98", "FRA", "BRA", "Final", "3:0"],
        ] {
            dirty.insert_named("Games", row).unwrap();
        }
        for row in [tup!["GER", "EU"], tup!["ESP", "EU"]] {
            dirty.insert_named("Teams", row).unwrap();
        }
        let query = parse_query(
            &schema,
            "Q1(x) :- Games(d1, x, y, \"Final\", u1), Games(d2, x, z, \"Final\", u2), \
             Teams(x, \"EU\"), d1 != d2",
        )
        .unwrap();
        SessionSpec {
            query,
            dirty,
            config: CleaningConfig::default(),
            deadline_ms: Some(120_000),
        }
    }

    fn fig1_ground() -> Database {
        let spec = fig1_spec();
        let mut g = spec.dirty.clone();
        let games = g.schema().rel_id("Games").unwrap();
        g.remove(&Fact::new(
            games,
            tup!["12.07.98", "ESP", "NED", "Final", "4:2"],
        ))
        .unwrap();
        g
    }

    #[test]
    fn strategy_strings_round_trip() {
        for d in [
            DeletionStrategy::Qoco,
            DeletionStrategy::QocoMinus,
            DeletionStrategy::Random(7),
        ] {
            assert_eq!(deletion_from_str(&deletion_to_str(d)).unwrap(), d);
        }
        for s in [
            SplitStrategyKind::Naive,
            SplitStrategyKind::MinCut,
            SplitStrategyKind::Provenance,
            SplitStrategyKind::Random(9),
        ] {
            assert_eq!(split_from_str(&split_to_str(s)).unwrap(), s);
        }
        assert!(deletion_from_str("frobnicate").is_err());
        assert!(split_from_str("random:x").is_err());
    }

    #[test]
    fn spec_round_trips_through_disk() {
        let dir = tmpdir("spec");
        let store = SessionStore::open(&dir).unwrap();
        let spec = fig1_spec();
        store.create("s1", &spec).unwrap();
        let (loaded, log) = store.load("s1").unwrap();
        assert!(log.is_empty());
        assert_eq!(loaded.query.display(), spec.query.display());
        assert_eq!(loaded.config.deletion, spec.config.deletion);
        assert_eq!(loaded.config.split, spec.config.split);
        assert_eq!(loaded.config.max_iterations, spec.config.max_iterations);
        assert_eq!(loaded.deadline_ms, spec.deadline_ms);
        assert_eq!(loaded.dirty.schema().len(), 2);
        assert_eq!(store.epoch("s1").unwrap(), 1);
        assert_eq!(store.list().unwrap(), vec!["s1".to_string()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_ids_are_rejected() {
        let dir = tmpdir("ids");
        let store = SessionStore::open(&dir).unwrap();
        for id in ["", "..", "a/b", "x\\y", "a b", &"z".repeat(65)] {
            assert!(!SessionStore::valid_id(id), "{id:?} must be invalid");
            assert!(store.create(id, &fig1_spec()).is_err());
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_session_rehydrates_bit_identically_from_the_store() {
        let dir = tmpdir("rehydrate");
        let store = SessionStore::open(&dir).unwrap();
        store.create("s1", &fig1_spec()).unwrap();

        // the reference run: never interrupted
        let mut reference = SessionMachine::new(fig1_spec());
        let mut oracle = PerfectOracle::new(fig1_ground());
        while let Some(p) = reference.pending().cloned() {
            let a = oracle.answer(&p.question).unwrap();
            reference.submit(p.seq, Ok(a)).unwrap();
        }
        let ref_report = format!("{}", reference.finished().unwrap().report);
        let total = reference.log().len();

        // the served run: WAL each answer, "crash" after the 2nd, reload
        let mut oracle = PerfectOracle::new(fig1_ground());
        let (spec, log) = store.load("s1").unwrap();
        let mut m = SessionMachine::rehydrate(spec, log);
        for _ in 0..2 {
            let p = m.pending().unwrap().clone();
            let a = oracle.answer(&p.question).unwrap();
            let rec = m.record_for(Ok(a.clone())).unwrap();
            store.append_answer("s1", &rec).unwrap();
            m.submit(p.seq, Ok(a)).unwrap();
        }
        drop(m); // the process dies here

        let epoch = store.bump_epoch("s1").unwrap();
        assert_eq!(epoch, 2);
        let (spec, log) = store.load("s1").unwrap();
        assert_eq!(log.len(), 2, "both WAL'd answers survived");
        let mut m = SessionMachine::rehydrate(spec, log);
        while let Some(p) = m.pending().cloned() {
            let a = oracle.answer(&p.question).unwrap();
            let rec = m.record_for(Ok(a.clone())).unwrap();
            store.append_answer("s1", &rec).unwrap();
            assert_eq!(m.submit(p.seq, Ok(a)), Ok(SubmitOutcome::Applied));
        }
        assert_eq!(m.log().len(), total);
        assert_eq!(
            format!("{}", m.finished().unwrap().report),
            ref_report,
            "rehydrated report byte-identical to the uninterrupted run"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_journal_tail_is_dropped_on_load() {
        let dir = tmpdir("torn");
        let store = SessionStore::open(&dir).unwrap();
        store.create("s1", &fig1_spec()).unwrap();
        let mut m = SessionMachine::new(fig1_spec());
        let rec = m.record_for(Ok(Answer::Bool(true))).unwrap();
        store.append_answer("s1", &rec).unwrap();
        m.submit(rec.seq, rec.outcome.clone()).unwrap();
        // crash mid-append of the second record
        let path = dir.join("s1").join("session.journal");
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"2\tverify_fact\tok:bo").unwrap();
        drop(f);
        let (_, log) = store.load("s1").unwrap();
        assert_eq!(log.len(), 1, "torn tail dropped");
        assert_eq!(log[0], rec);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_append_failure_degrades_to_partial_report() {
        let dir = tmpdir("enospc");
        let store = SessionStore::open(&dir).unwrap();
        store.create("s1", &fig1_spec()).unwrap();
        let (spec, log) = store.load("s1").unwrap();
        let mut m = SessionMachine::rehydrate(spec, log);
        store.fail_appends(true);
        let p = m.pending().unwrap().clone();
        let rec = m.record_for(Ok(Answer::Bool(true))).unwrap();
        let err = store.append_answer("s1", &rec).expect_err("disk is full");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        // the serve layer's degrade path: the un-persistable answer is
        // not applied; the session is expired in memory instead
        let dropped = m.record_for(Err(OracleError::Dropped)).unwrap();
        m.submit(p.seq, dropped.outcome.clone()).unwrap();
        let f = m.finished().expect("dead session terminates");
        assert!(f.report.is_partial());
        fs::remove_dir_all(&dir).ok();
    }
}
