//! The naïve systematic-enumeration strategy of Proposition 3.4.
//!
//! "Since the domain consists of values with an order, one can
//! systematically enumerate all possible facts. For every fact `f`, we ask
//! the question `TRUE(f)?` to the crowd and apply the corresponding edits to
//! the database until the target action is achieved." The proposition
//! guarantees termination; the paper immediately dismisses the strategy as
//! "too expensive to be practical", and this module exists to demonstrate
//! exactly that (see the ablation bench comparing its question counts with
//! Algorithm 1/2's).

use qoco_crowd::CrowdAccess;
use qoco_data::{Database, Edit, EditLog, Fact, Tuple, Value};
use qoco_engine::answer_set;
use qoco_query::ConjunctiveQuery;

use crate::error::CleanError;

/// A target action on the view (Section 3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetAction {
    /// Remove a wrong answer from `Q(D)`.
    RemoveAnswer(Tuple),
    /// Add a missing answer to `Q(D)`.
    AddAnswer(Tuple),
}

impl TargetAction {
    /// Is the target achieved on the current database?
    pub fn achieved(&self, q: &ConjunctiveQuery, db: &Database) -> bool {
        let answers = answer_set(q, db);
        match self {
            TargetAction::RemoveAnswer(t) => !answers.contains(t),
            TargetAction::AddAnswer(t) => answers.contains(t),
        }
    }
}

/// Systematically enumerate candidate facts over `domain` (the ordered
/// vocabulary), asking `TRUE(f)?` for each and applying the resulting edit,
/// until the target action is achieved or `max_questions` is exhausted.
///
/// Enumerates every relation × every tuple over the domain in lexicographic
/// order — exponential in arity, exactly as the paper warns.
pub fn naive_enumeration<C: CrowdAccess + ?Sized>(
    q: &ConjunctiveQuery,
    db: &mut Database,
    crowd: &mut C,
    target: TargetAction,
    domain: &[Value],
    max_questions: usize,
) -> Result<(EditLog, usize), CleanError> {
    let mut edits = EditLog::new();
    let mut questions = 0usize;
    if target.achieved(q, db) {
        return Ok((edits, questions));
    }
    if domain.is_empty() {
        return Err(CleanError::NoWitness(format!("{target:?}")));
    }
    let schema = db.schema().clone();
    for rel in schema.rel_ids() {
        let arity = schema.arity(rel) as u32;
        let total = (domain.len() as u128).pow(arity);
        for counter in 0..total {
            // decode `counter` as a base-|domain| number, most significant
            // digit first, giving lexicographic tuple order
            let mut rem = counter;
            let mut values = vec![domain[0].clone(); arity as usize];
            for pos in (0..arity as usize).rev() {
                values[pos] = domain[(rem % domain.len() as u128) as usize].clone();
                rem /= domain.len() as u128;
            }
            let fact = Fact::new(rel, Tuple::new(values));
            if questions >= max_questions {
                return Err(CleanError::QuestionBudget {
                    budget: max_questions,
                });
            }
            questions += 1;
            let in_db = db.contains(&fact);
            let truth = crowd.verify_fact(&fact)?;
            let edit = if truth && !in_db {
                Some(Edit::insert(fact))
            } else if !truth && in_db {
                Some(Edit::delete(fact))
            } else {
                None
            };
            if let Some(e) = edit {
                db.apply(&e)?;
                edits.push(e);
                if target.achieved(q, db) {
                    return Ok((edits, questions));
                }
            }
        }
    }
    // the whole domain was enumerated; with a truthful crowd and a target
    // achievable over this domain we cannot get here
    Err(CleanError::NoWitness(format!("{target:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_crowd::{PerfectOracle, SingleExpert};
    use qoco_data::{tup, Schema};
    use qoco_query::parse_query;

    fn setup() -> (Database, Database, ConjunctiveQuery, Vec<Value>) {
        let schema = Schema::builder()
            .relation("T", &["c", "k"])
            .build()
            .unwrap();
        let mut d = Database::empty(schema.clone());
        d.insert_named("T", tup!["BRA", "EU"]).unwrap(); // false
        let mut g = Database::empty(schema.clone());
        g.insert_named("T", tup!["ITA", "EU"]).unwrap();
        let q = parse_query(&schema, r#"(x) :- T(x, "EU")"#).unwrap();
        let domain = vec![Value::text("BRA"), Value::text("EU"), Value::text("ITA")];
        (d, g, q, domain)
    }

    #[test]
    fn enumeration_achieves_removal() {
        let (mut d, g, q, domain) = setup();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let (edits, questions) = naive_enumeration(
            &q,
            &mut d,
            &mut crowd,
            TargetAction::RemoveAnswer(tup!["BRA"]),
            &domain,
            1000,
        )
        .unwrap();
        assert!(answer_set(&q, &d).is_empty() || !answer_set(&q, &d).contains(&tup!["BRA"]));
        assert!(edits.deletions() >= 1);
        assert!(questions >= 1);
    }

    #[test]
    fn enumeration_achieves_insertion_but_expensively() {
        let (mut d, g, q, domain) = setup();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let (edits, questions) = naive_enumeration(
            &q,
            &mut d,
            &mut crowd,
            TargetAction::AddAnswer(tup!["ITA"]),
            &domain,
            1000,
        )
        .unwrap();
        assert!(answer_set(&q, &d).contains(&tup!["ITA"]));
        assert!(edits.insertions() >= 1);
        // 3×3 = 9 candidate facts; (ITA, EU) is the 8th in lexicographic
        // order over (BRA, EU, ITA) — far worse than Algorithm 2's 1 task
        assert!(questions >= 8, "asked only {questions}");
    }

    #[test]
    fn budget_is_enforced() {
        let (mut d, g, q, domain) = setup();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let err = naive_enumeration(
            &q,
            &mut d,
            &mut crowd,
            TargetAction::AddAnswer(tup!["ITA"]),
            &domain,
            3,
        )
        .unwrap_err();
        assert_eq!(err, CleanError::QuestionBudget { budget: 3 });
    }

    #[test]
    fn achieved_target_asks_nothing() {
        let (mut d, g, q, domain) = setup();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let (edits, questions) = naive_enumeration(
            &q,
            &mut d,
            &mut crowd,
            TargetAction::AddAnswer(tup!["BRA"]), // already an answer
            &domain,
            10,
        )
        .unwrap();
        assert!(edits.is_empty());
        assert_eq!(questions, 0);
    }

    #[test]
    fn unachievable_target_is_detected_after_full_enumeration() {
        let (mut d, g, q, domain) = setup();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let err = naive_enumeration(
            &q,
            &mut d,
            &mut crowd,
            TargetAction::AddAnswer(tup!["FRA"]), // FRA not in D_G
            &domain,
            1000,
        )
        .unwrap_err();
        assert!(matches!(err, CleanError::NoWitness(_)));
    }

    #[test]
    fn target_action_achieved_checks() {
        let (d, _, q, _) = setup();
        assert!(TargetAction::AddAnswer(tup!["BRA"]).achieved(&q, &d));
        assert!(!TargetAction::RemoveAnswer(tup!["BRA"]).achieved(&q, &d));
        assert!(TargetAction::RemoveAnswer(tup!["XYZ"]).achieved(&q, &d));
    }
}
