//! Applying edits while keeping materialized views current.
//!
//! The `*_tracked` variants of Algorithms 1 and 2 thread a slice of
//! [`MaterializedView`]s through every edit they derive: the edit is
//! applied to the database eagerly and each view is brought up to date
//! incrementally, so the sweeps in [`crate::cleaner`] and
//! [`crate::ucq_clean`] can read cached answer sets instead of
//! re-evaluating the query after every mutation.

use qoco_data::{Database, Edit};
use qoco_engine::MaterializedView;

use crate::error::CleanError;

/// Apply `e` to `db`, then notify every view of the edit.
pub(crate) fn apply_tracked(
    db: &mut Database,
    views: &mut [MaterializedView],
    e: &Edit,
) -> Result<(), CleanError> {
    db.apply(e)?;
    for v in views.iter_mut() {
        v.apply_edit(db, e);
    }
    Ok(())
}
