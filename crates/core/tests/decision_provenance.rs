//! Decision-provenance integration tests: the recorded evidence must match
//! the live algorithm state it claims to describe, and a killed+resumed
//! session must produce the *identical* decision log to an uninterrupted
//! run.
//!
//! Lives in its own integration-test binary because it installs the
//! process-global telemetry session; tests serialize on a local lock so
//! they never overlap.

use std::sync::{Arc, Mutex, OnceLock};

use qoco_core::{clean_view, CleaningConfig};
use qoco_crowd::{Journal, PerfectOracle, SingleExpert};
use qoco_data::{tup, Database, Schema};
use qoco_query::parse_query;
use qoco_telemetry::{DecisionRecord, InMemoryCollector};

fn session_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Dirty DB where (ESP) is a wrong answer with three overlapping witness
/// sets — the frequency ranking is non-trivial: Teams(ESP, EU) backs every
/// witness (frequency 3) while each Games fact backs two.
fn setup() -> (Database, Database, qoco_query::ConjunctiveQuery) {
    let schema = Schema::builder()
        .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
        .relation("Teams", &["country", "continent"])
        .build()
        .unwrap();
    let mut dirty = Database::empty(schema.clone());
    for (d, w, r) in [
        ("11.07.10", "ESP", "NED"),
        ("12.07.98", "ESP", "BRA"),
        ("13.07.02", "ESP", "GER"),
    ] {
        dirty
            .insert_named("Games", tup![d, w, r, "Final", "1:0"])
            .unwrap();
    }
    dirty.insert_named("Teams", tup!["ESP", "EU"]).unwrap();

    // ground truth: ESP won exactly one final, so the two-distinct-finals
    // query has no answers — (ESP) must be cleaned away
    let mut ground = Database::empty(schema.clone());
    ground
        .insert_named("Games", tup!["11.07.10", "ESP", "NED", "Final", "1:0"])
        .unwrap();
    ground.insert_named("Teams", tup!["ESP", "EU"]).unwrap();

    let q = parse_query(
        &schema,
        r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2"#,
    )
    .unwrap();
    (dirty, ground, q)
}

/// Split a `{f1, f2, …}` rendering into fact strings, honouring nested
/// parentheses inside each fact's tuple.
fn parse_fact_set(s: &str) -> Vec<String> {
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_else(|| panic!("not a fact set: {s:?}"));
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let bytes = inner.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => depth -= 1,
            b',' if depth == 0 => {
                out.push(inner[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if !inner[start..].trim().is_empty() {
        out.push(inner[start..].trim().to_string());
    }
    out
}

fn evidence<'a>(d: &'a DecisionRecord, key: &str) -> &'a str {
    d.evidence
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("decision {} has no `{key}` evidence: {d:?}", d.id))
}

fn run_clean(dirty: &Database, ground: &Database, q: &qoco_query::ConjunctiveQuery) -> Database {
    let mut db = dirty.clone();
    let mut crowd = SingleExpert::new(PerfectOracle::new(ground.clone()));
    clean_view(q, &mut db, &mut crowd, CleaningConfig::default()).unwrap();
    db
}

#[test]
fn deletion_ranking_matches_a_recount_of_the_witness_sets() {
    let _guard = session_lock().lock().unwrap_or_else(|p| p.into_inner());
    let (dirty, ground, q) = setup();
    let collector = Arc::new(InMemoryCollector::new());
    let decisions = {
        let _session = qoco_telemetry::session(collector.clone());
        run_clean(&dirty, &ground, &q);
        collector.decisions()
    };

    let verify_facts: Vec<&DecisionRecord> = decisions
        .iter()
        .filter(|d| d.kind == "deletion.verify_fact")
        .collect();
    assert!(
        !verify_facts.is_empty(),
        "the scenario must ask at least one deletion question"
    );
    assert!(
        decisions.iter().any(|d| d.kind == "deletion.plan"),
        "every deletion run opens with a plan record"
    );

    for d in &verify_facts {
        // recount frequencies from the recorded live witness-set state
        let sets: Vec<Vec<String>> = evidence(d, "witnesses")
            .split(" | ")
            .map(parse_fact_set)
            .collect();
        let count = |fact: &str| sets.iter().filter(|s| s.iter().any(|f| f == fact)).count();

        let asked = d
            .question
            .strip_prefix("TRUE(")
            .and_then(|s| s.strip_suffix(")?"))
            .unwrap_or_else(|| panic!("unexpected question shape: {}", d.question));
        assert_eq!(
            evidence(d, "frequency").parse::<usize>().unwrap(),
            count(asked),
            "claimed frequency of the asked fact must match the recount"
        );

        // the ranking must cover the whole universe, claim the recounted
        // frequency for every candidate, be sorted, and lead with the
        // asked (greedy-best) fact
        let ranking: Vec<(String, usize)> = evidence(d, "ranking")
            .split(" > ")
            .map(|entry| {
                let (fact, n) = entry.rsplit_once('=').expect("entry is fact=count");
                (fact.to_string(), n.parse().unwrap())
            })
            .collect();
        let universe: std::collections::BTreeSet<&String> = sets.iter().flatten().collect();
        assert_eq!(ranking.len(), universe.len(), "ranking covers the universe");
        assert_eq!(ranking[0].0, asked, "greedy-best fact leads the ranking");
        for (fact, claimed) in &ranking {
            assert_eq!(*claimed, count(fact), "recount mismatch for {fact}");
        }
        for pair in ranking.windows(2) {
            assert!(
                pair[0].1 >= pair[1].1,
                "ranking must be sorted by frequency: {ranking:?}"
            );
        }
    }
}

#[test]
fn killed_and_resumed_session_replays_an_identical_decision_log() {
    let _guard = session_lock().lock().unwrap_or_else(|p| p.into_inner());
    let (dirty, ground, q) = setup();

    // uninterrupted run, journaling every outcome
    let full_journal = Journal::recording();
    let collector = Arc::new(InMemoryCollector::new());
    let full_db = {
        let _session = qoco_telemetry::session(collector.clone());
        let mut db = dirty.clone();
        let mut crowd = SingleExpert::new(full_journal.wrap(PerfectOracle::new(ground.clone())));
        clean_view(&q, &mut db, &mut crowd, CleaningConfig::default()).unwrap();
        db
    };
    let full_decisions = collector.decisions();
    let records = full_journal.records();
    assert!(records.len() >= 3, "scenario too small to interrupt");
    assert!(
        records.iter().all(|r| r.decision.is_some()),
        "every journaled question must carry its decision id"
    );

    // "crash" after the 2nd answer, then resume: replay the prefix and
    // finish live — the decision stream must be indistinguishable
    let resumed_journal = Journal::replaying(records[..2].to_vec());
    let collector2 = Arc::new(InMemoryCollector::new());
    let resumed_db = {
        let _session = qoco_telemetry::session(collector2.clone());
        let mut db = dirty.clone();
        let mut crowd = SingleExpert::new(resumed_journal.wrap(PerfectOracle::new(ground.clone())));
        clean_view(&q, &mut db, &mut crowd, CleaningConfig::default()).unwrap();
        db
    };
    assert_eq!(resumed_journal.divergences(), 0);
    assert_eq!(
        qoco_data::diff(&resumed_db, &full_db).unwrap().distance(),
        0,
        "resumed database must match the uninterrupted run"
    );

    // identical modulo wall-clock fields (timestamps, span ids, threads)
    type Stripped = (
        u64,
        &'static str,
        String,
        String,
        Vec<(&'static str, String)>,
    );
    let strip = |ds: &[DecisionRecord]| -> Vec<Stripped> {
        ds.iter()
            .map(|d| {
                (
                    d.id,
                    d.kind,
                    d.question.clone(),
                    d.outcome.clone(),
                    d.evidence.clone(),
                )
            })
            .collect()
    };
    assert_eq!(
        strip(&full_decisions),
        strip(&collector2.decisions()),
        "fresh and resumed runs must log identical decisions"
    );

    // the resumed journal re-derives the same decision tags, so `--resume`
    // replays provenance losslessly
    let tags = |rs: &[qoco_crowd::JournalRecord]| -> Vec<Option<u64>> {
        rs.iter().map(|r| r.decision).collect()
    };
    assert_eq!(tags(&records), tags(&resumed_journal.records()));
}
