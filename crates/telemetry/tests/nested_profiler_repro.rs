use qoco_telemetry::{
    current_span_id, nested_session, session, span, span_child_of, InMemoryCollector, Profiler,
};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn nested_session_under_a_running_sampler_does_not_hang() {
    let outer = Arc::new(InMemoryCollector::new());
    let guard = session(outer);
    let profiler = Profiler::start(Duration::from_micros(100));
    for _round in 0..50 {
        let inner = Arc::new(InMemoryCollector::new());
        let _nested = nested_session(inner);
        let root = span("repro.root");
        let parent = current_span_id();
        // cross-thread children, like eval.par_chunk workers
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        span_child_of("repro.chunk", parent).finish();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        root.finish();
    }
    let profile = profiler.stop();
    assert!(profile.samples + profile.dropped > 0);
    drop(guard);
}
