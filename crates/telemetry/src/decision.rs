//! Decision provenance: *why* each oracle question was asked.
//!
//! The cleaning algorithms' whole contribution is question selection — the
//! greedy most-frequent witness tuple of Algorithm 1, the Theorem 4.5
//! unique-minimal-hitting-set early stop, the split/embed recursion of
//! Algorithm 2, the retry/escalation policy of a faulty crowd. A
//! [`DecisionRecord`] captures the algorithmic evidence behind one such
//! choice: the question posed, the structured evidence that selected it,
//! and the outcome once the crowd answered.
//!
//! Decisions follow the same zero-cost contract as spans and events: every
//! entry point returns after a single relaxed atomic load when telemetry is
//! disabled, and the deferred `detail` closure is only invoked when a
//! collector is installed.
//!
//! Ids are session-scoped: [`crate::install`] resets the counter to 1, so a
//! resumed session that replays the same questions in the same order
//! reproduces the same decision ids. The id of the decision currently being
//! acted on is exported through a thread-local ([`begin_decision`] /
//! [`current_decision_id`]) so downstream layers — the crowd transcript,
//! the write-ahead journal — can tag their own records with it without any
//! API coupling to the algorithm layer.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Session-scoped decision id counter; reset to 1 on every
/// [`crate::install`] so fresh and resumed runs of the same session agree.
pub(crate) static NEXT_DECISION_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The decision currently being acted on by this thread (0 = none).
    static CURRENT_DECISION: Cell<u64> = const { Cell::new(0) };
}

/// One recorded decision: a question (or question-free shortcut) together
/// with the evidence that selected it and the outcome it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Session-scoped id (1, 2, 3, … in decision order).
    pub id: u64,
    /// Session-relative timestamp, ns (when the decision was finished).
    pub at_ns: u64,
    /// Innermost live span on the recording thread, if any.
    pub span: Option<u64>,
    /// Thread ordinal of the recording thread.
    pub thread: u64,
    /// Decision kind, dotted (e.g. `deletion.verify_fact`,
    /// `insertion.complete`, `crowd.retry`).
    pub kind: &'static str,
    /// The question posed (or the action taken, for question-free
    /// decisions like a Theorem 4.5 certificate deletion).
    pub question: String,
    /// What came of it: the crowd's answer, the edit applied, or the error.
    pub outcome: String,
    /// Structured cause, as ordered key/value pairs (witness sets,
    /// frequency rankings, split paths, fault + policy steps, …).
    pub evidence: Vec<(&'static str, String)>,
    /// The HTTP request id current on the recording thread, if the
    /// decision was made while serving one (see [`crate::begin_request`]).
    pub request: Option<String>,
}

impl DecisionRecord {
    /// The first evidence value stored under `key`.
    pub fn evidence(&self, key: &str) -> Option<&str> {
        self.evidence
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// The deferred payload of a decision, built inside the `detail` closure of
/// [`finish_decision`] / [`record_decision`] only when telemetry is enabled.
pub struct DecisionDetail {
    /// The question posed (or action taken).
    pub question: String,
    /// The outcome observed.
    pub outcome: String,
    /// Structured evidence, as ordered key/value pairs.
    pub evidence: Vec<(&'static str, String)>,
}

/// Allocate a decision id and mark it current on this thread, so the layers
/// underneath the imminent crowd call (journal, transcript) can tag their
/// records with it. Returns 0 — and touches nothing — when telemetry is
/// disabled. Pair with [`finish_decision`] once the outcome is known.
pub fn begin_decision() -> u64 {
    if !crate::enabled() {
        return 0;
    }
    let id = NEXT_DECISION_ID.fetch_add(1, Ordering::Relaxed);
    CURRENT_DECISION.with(|c| c.set(id));
    id
}

/// The decision currently being acted on by this thread, if any.
pub fn current_decision_id() -> Option<u64> {
    if !crate::enabled() {
        return None;
    }
    let id = CURRENT_DECISION.with(|c| c.get());
    (id != 0).then_some(id)
}

/// Unconditionally clear this thread's current-decision marker. Needed
/// after a non-local exit (a suspended session unwinds out of the cleaner
/// mid-decision, past the `finish_decision` that would have cleared it) so
/// the stale id cannot leak onto whatever runs on this thread next.
pub fn clear_current_decision() {
    CURRENT_DECISION.with(|c| c.set(0));
}

/// Finish the decision opened by [`begin_decision`]: clear the thread's
/// current-decision marker and report the full record. `detail` is only
/// invoked when telemetry is enabled; with `id == 0` (a disabled
/// [`begin_decision`]) the call is inert.
pub fn finish_decision(id: u64, kind: &'static str, detail: impl FnOnce() -> DecisionDetail) {
    if !crate::enabled() {
        return;
    }
    CURRENT_DECISION.with(|c| {
        if c.get() == id {
            c.set(0);
        }
    });
    if id == 0 {
        return;
    }
    dispatch(id, kind, detail());
}

/// Record a self-contained decision (no surrounding crowd call to tag):
/// allocates an id, reports the record, and returns the id — 0 when
/// telemetry is disabled, without invoking `detail`.
pub fn record_decision(kind: &'static str, detail: impl FnOnce() -> DecisionDetail) -> u64 {
    if !crate::enabled() {
        return 0;
    }
    let id = NEXT_DECISION_ID.fetch_add(1, Ordering::Relaxed);
    dispatch(id, kind, detail());
    id
}

fn dispatch(id: u64, kind: &'static str, detail: DecisionDetail) {
    let record = DecisionRecord {
        id,
        at_ns: crate::now_ns(),
        span: crate::current_span_id(),
        thread: crate::thread_ordinal(),
        kind,
        question: detail.question,
        outcome: detail.outcome,
        evidence: detail.evidence,
        request: crate::current_request_id(),
    };
    crate::with_collector(|c| c.record_decision(&record));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryCollector;
    use std::sync::Arc;

    #[test]
    fn disabled_decisions_are_inert() {
        let _serial = crate::SESSION_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        assert!(!crate::enabled());
        assert_eq!(begin_decision(), 0);
        assert_eq!(current_decision_id(), None);
        finish_decision(0, "never", || unreachable!("detail must not run"));
        assert_eq!(
            record_decision("never", || unreachable!("detail must not run")),
            0
        );
    }

    #[test]
    fn decision_ids_restart_per_session_and_tag_the_current_thread() {
        for round in 0..2 {
            let collector = Arc::new(InMemoryCollector::new());
            let session = crate::session(collector.clone());
            let id = begin_decision();
            assert_eq!(id, 1, "round {round}: ids restart at 1 per install");
            assert_eq!(current_decision_id(), Some(id));
            finish_decision(id, "test.decision", || DecisionDetail {
                question: "TRUE(f)?".into(),
                outcome: "false".into(),
                evidence: vec![("selector", "most-frequent".into())],
            });
            assert_eq!(current_decision_id(), None, "finish clears the marker");
            let one_shot = record_decision("test.shortcut", || DecisionDetail {
                question: "delete f".into(),
                outcome: "deleted".into(),
                evidence: vec![],
            });
            assert_eq!(one_shot, 2);
            drop(session);
            let decisions = collector.decisions();
            assert_eq!(decisions.len(), 2);
            assert_eq!(decisions[0].id, 1);
            assert_eq!(decisions[0].kind, "test.decision");
            assert_eq!(decisions[0].evidence("selector"), Some("most-frequent"));
            assert_eq!(decisions[1].id, 2);
        }
    }
}
