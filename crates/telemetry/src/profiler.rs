//! In-process sampling profiler over live span stacks.
//!
//! Signal-based unwinders need frame pointers, symbol tables and unsafe
//! code; QOCO's phases are already delimited by spans, so the profiler
//! samples *those* instead. Every enabled span open/close also updates a
//! process-global [`StackRegistry`]: the innermost live span per thread
//! plus a `span id → (parent, name)` map of every live span. A sampling
//! thread ([`Profiler`]) periodically walks each thread's leaf up the
//! parent chain — crossing threads where spans were opened with
//! [`crate::span_child_of`], so a worker's `eval.par_chunk` folds under
//! the coordinating `eval.assignments` — and aggregates the resulting
//! name paths into folded-stack lines (`clean.session;eval.assignments;
//! eval.par_chunk 412`), the interchange format of flamegraph tooling.
//!
//! The sampler never stops the world: it *try*-locks the registry and
//! charges a miss to `profile.dropped` instead of blocking span creation.
//! Mutator threads take the registry lock unconditionally, but the
//! sampler holds it only long enough to copy a handful of small maps.
//!
//! With telemetry disabled (or the registry empty) everything here is
//! inert: [`Profiler::start`] spawns no thread and allocates nothing —
//! guarded by `telemetry_noop_guard` next to spans and decisions.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on the frames of one sampled stack: a parent chain longer than
/// this is cyclic (a bug) or absurdly deep; truncate rather than spin.
const MAX_DEPTH: usize = 128;

/// The default sampling period: fine enough to see millisecond phases,
/// coarse enough that a tick (copy two small maps, walk a few chains)
/// stays far below 1% of a core.
pub const DEFAULT_SAMPLE_INTERVAL: Duration = Duration::from_micros(200);

/// One live span as the registry sees it.
#[derive(Clone, Copy)]
struct LiveSpan {
    parent: Option<u64>,
    name: &'static str,
}

#[derive(Default)]
struct RegistryInner {
    /// Innermost live span per thread ordinal.
    leaves: BTreeMap<u64, u64>,
    /// Every live span, by id. BTreeMap rather than HashMap so the
    /// registry can live in a `static` (`BTreeMap::new` is const).
    spans: BTreeMap<u64, LiveSpan>,
}

/// Process-global registry of live span stacks, updated on the enabled
/// span path and walked by the sampler. One mutex, held for a few map
/// operations per span open/close — far below the per-span collector cost.
pub(crate) struct StackRegistry {
    inner: Mutex<RegistryInner>,
}

fn unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl StackRegistry {
    pub(crate) const fn new() -> Self {
        StackRegistry {
            inner: Mutex::new(RegistryInner {
                leaves: BTreeMap::new(),
                spans: BTreeMap::new(),
            }),
        }
    }

    /// A span opened on `thread` and became its innermost live span.
    pub(crate) fn span_opened(
        &self,
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        thread: u64,
    ) {
        let mut inner = unpoisoned(&self.inner);
        inner.spans.insert(id, LiveSpan { parent, name });
        inner.leaves.insert(thread, id);
    }

    /// A span closed on `thread`; `new_leaf` is the span now innermost
    /// there (the thread-local stack top after the pop), if any.
    pub(crate) fn span_closed(&self, id: u64, thread: u64, new_leaf: Option<u64>) {
        let mut inner = unpoisoned(&self.inner);
        inner.spans.remove(&id);
        match new_leaf {
            Some(leaf) => {
                inner.leaves.insert(thread, leaf);
            }
            None => {
                inner.leaves.remove(&thread);
            }
        }
    }

    /// Drop every live record (called on session install so a leaked guard
    /// from a previous session cannot haunt the next profile).
    pub(crate) fn clear(&self) {
        let mut inner = unpoisoned(&self.inner);
        inner.leaves.clear();
        inner.spans.clear();
    }

    /// Snapshot every thread's live stack as a root→leaf name path.
    /// Returns `None` when the registry is momentarily locked by a mutator
    /// (the caller charges `profile.dropped` and tries again next tick).
    fn sample(&self) -> Option<Vec<Vec<&'static str>>> {
        let inner = self.inner.try_lock().ok()?;
        let mut stacks = Vec::with_capacity(inner.leaves.len());
        for (&_thread, &leaf) in &inner.leaves {
            let mut frames: Vec<&'static str> = Vec::new();
            let mut cursor = Some(leaf);
            while let Some(id) = cursor {
                let Some(span) = inner.spans.get(&id) else {
                    break; // parent closed before its cross-thread child
                };
                frames.push(span.name);
                cursor = span.parent;
                if frames.len() >= MAX_DEPTH {
                    break;
                }
            }
            if !frames.is_empty() {
                frames.reverse(); // walked leaf→root; fold root→leaf
                stacks.push(frames);
            }
        }
        Some(stacks)
    }
}

/// A finished (or parsed) profile: folded stacks and their sample counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Sampling period of the run that produced this profile, in
    /// nanoseconds (0 for parsed profiles, which don't record it).
    pub interval_ns: u64,
    /// Stack samples captured.
    pub samples: u64,
    /// Ticks that found the registry locked and were skipped.
    pub dropped: u64,
    /// `folded stack → sample count`; keys are `;`-joined span names,
    /// root first. BTreeMap, so every traversal (and every render) is
    /// deterministic.
    counts: BTreeMap<String, u64>,
}

impl Profile {
    /// The folded-stack counts.
    pub fn counts(&self) -> &BTreeMap<String, u64> {
        &self.counts
    }

    /// Whether no stack sample was captured.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Add `n` samples of `stack` (a `;`-joined frame path). Public so
    /// tests and the diff tooling can assemble profiles by hand.
    pub fn record(&mut self, stack: &str, n: u64) {
        *self.counts.entry(stack.to_string()).or_insert(0) += n;
        self.samples += n;
    }

    /// Render as folded-stack text: one `stack count` line per distinct
    /// stack, sorted by stack (byte order). The format flamegraph tooling
    /// exchanges; [`Profile::parse_folded`] round-trips it.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.counts {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse folded-stack text (the output of [`Profile::to_folded`];
    /// blank lines and `#` comments are tolerated).
    pub fn parse_folded(text: &str) -> Result<Profile, String> {
        let mut profile = Profile::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (stack, count) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no sample count (want `stack N`)", i + 1))?;
            let count: u64 = count
                .parse()
                .map_err(|_| format!("line {}: `{count}` is not a sample count", i + 1))?;
            if stack.is_empty() {
                return Err(format!("line {}: empty stack", i + 1));
            }
            profile.record(stack, count);
        }
        Ok(profile)
    }

    /// Samples per frame name, counted once per stack it appears in
    /// (inclusive / "total" time).
    pub fn total_by_frame(&self) -> BTreeMap<&str, u64> {
        let mut out: BTreeMap<&str, u64> = BTreeMap::new();
        for (stack, &count) in &self.counts {
            let mut seen: Vec<&str> = Vec::new();
            for frame in stack.split(';') {
                if !seen.contains(&frame) {
                    seen.push(frame);
                    *out.entry(frame).or_insert(0) += count;
                }
            }
        }
        out
    }

    /// Samples per frame name where the frame was the *leaf* (self time).
    pub fn self_by_frame(&self) -> BTreeMap<&str, u64> {
        let mut out: BTreeMap<&str, u64> = BTreeMap::new();
        for (stack, &count) in &self.counts {
            let leaf = stack.rsplit(';').next().expect("split is non-empty");
            *out.entry(leaf).or_insert(0) += count;
        }
        out
    }

    /// The `n` frames with the most self samples, descending (ties broken
    /// by frame name for determinism).
    pub fn top_self(&self, n: usize) -> Vec<(String, u64)> {
        let mut frames: Vec<(String, u64)> = self
            .self_by_frame()
            .into_iter()
            .map(|(f, c)| (f.to_string(), c))
            .collect();
        frames.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        frames.truncate(n);
        frames
    }

    /// Render a self-contained flamegraph SVG of this profile; see
    /// [`crate::flamegraph_svg`].
    pub fn flamegraph_svg(&self, title: &str) -> String {
        crate::flame::flamegraph_svg(&self.counts, title)
    }
}

/// Per-frame delta between two profiles, in *shares* of total samples so
/// profiles of different lengths compare fairly.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameDelta {
    /// Span name.
    pub frame: String,
    /// Fraction of base samples whose stack contains the frame.
    pub base_share: f64,
    /// Fraction of head samples whose stack contains the frame.
    pub head_share: f64,
    /// `head_share - base_share`: positive means the frame grew.
    pub delta: f64,
}

/// Compare two profiles frame-by-frame: for every frame appearing in
/// either, the share of total samples whose stack contains it, and the
/// head−base difference. Sorted by descending delta (the most-regressed
/// frame first), ties by frame name.
pub fn diff_profiles(base: &Profile, head: &Profile) -> Vec<FrameDelta> {
    let base_total = base.samples.max(1) as f64;
    let head_total = head.samples.max(1) as f64;
    let base_frames = base.total_by_frame();
    let head_frames = head.total_by_frame();
    let mut names: Vec<&str> = base_frames
        .keys()
        .chain(head_frames.keys())
        .copied()
        .collect();
    names.sort_unstable();
    names.dedup();
    let mut out: Vec<FrameDelta> = names
        .into_iter()
        .map(|frame| {
            let b = base_frames.get(frame).copied().unwrap_or(0) as f64 / base_total;
            let h = head_frames.get(frame).copied().unwrap_or(0) as f64 / head_total;
            FrameDelta {
                frame: frame.to_string(),
                base_share: b,
                head_share: h,
                delta: h - b,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.delta
            .partial_cmp(&a.delta)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.frame.cmp(&b.frame))
    });
    out
}

struct ProfilerInner {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<Profile>,
}

/// A running sampling profiler. Obtain with [`Profiler::start`]; collect
/// the [`Profile`] with [`Profiler::stop`]. When telemetry is disabled at
/// start time the handle is inert: no thread, no allocation, an empty
/// profile on stop.
pub struct Profiler {
    inner: Option<ProfilerInner>,
}

impl Profiler {
    /// Start sampling every `interval` (see [`DEFAULT_SAMPLE_INTERVAL`]).
    /// Returns an inert handle when telemetry is disabled.
    pub fn start(interval: Duration) -> Profiler {
        if !crate::enabled() {
            return Profiler { inner: None };
        }
        let interval = interval.max(Duration::from_micros(10));
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("qoco-profiler".to_string())
            .spawn(move || sampler_loop(&flag, interval))
            .expect("spawn profiler thread");
        Profiler {
            inner: Some(ProfilerInner { stop, handle }),
        }
    }

    /// Whether a sampling thread is actually running (false on the
    /// disabled path).
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    /// Stop sampling and return the aggregated profile (empty if the
    /// profiler was never live).
    pub fn stop(mut self) -> Profile {
        match self.inner.take() {
            Some(inner) => {
                inner.stop.store(true, Ordering::Relaxed);
                inner.handle.join().unwrap_or_default()
            }
            None => Profile::default(),
        }
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.stop.store(true, Ordering::Relaxed);
            let _ = inner.handle.join();
        }
    }
}

/// Cumulative samples/drops across the process, mirrored into the
/// `profile.samples` / `profile.dropped` counters (batched per tick so the
/// sampler does not hammer the metrics mutex).
static TOTAL_SAMPLES: AtomicU64 = AtomicU64::new(0);
static TOTAL_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime sample/drop totals `(samples, dropped)` — what the
/// `/health` endpoint reports even when no session counter is live.
pub fn sample_totals() -> (u64, u64) {
    (
        TOTAL_SAMPLES.load(Ordering::Relaxed),
        TOTAL_DROPPED.load(Ordering::Relaxed),
    )
}

fn sampler_loop(stop: &AtomicBool, interval: Duration) -> Profile {
    let mut profile = Profile {
        interval_ns: interval.as_nanos() as u64,
        ..Profile::default()
    };
    let mut key = String::with_capacity(128);
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(interval);
        // The session may end while the profiler is still running; stop
        // aggregating rather than sampling a dead registry.
        if !crate::enabled() {
            continue;
        }
        match crate::stack_registry().sample() {
            Some(stacks) => {
                for frames in stacks {
                    key.clear();
                    for (i, frame) in frames.iter().enumerate() {
                        if i > 0 {
                            key.push(';');
                        }
                        key.push_str(frame);
                    }
                    profile.record(&key, 1);
                    TOTAL_SAMPLES.fetch_add(1, Ordering::Relaxed);
                    crate::counter_add("profile.samples", 1);
                }
            }
            None => {
                profile.dropped += 1;
                TOTAL_DROPPED.fetch_add(1, Ordering::Relaxed);
                crate::counter_add("profile.dropped", 1);
            }
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryCollector;

    fn spin_for(d: Duration) {
        let start = std::time::Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_profiler_spawns_nothing_and_returns_empty() {
        let _serial = crate::SESSION_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        assert!(!crate::enabled());
        let p = Profiler::start(Duration::from_micros(100));
        assert!(!p.is_live());
        let profile = p.stop();
        assert!(profile.is_empty());
        assert_eq!(profile.samples, 0);
    }

    #[test]
    fn sampler_folds_nested_spans_into_stacks() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        let profiler = Profiler::start(Duration::from_micros(50));
        {
            let _outer = crate::span("profile.outer");
            let _inner = crate::span("profile.inner");
            spin_for(Duration::from_millis(40));
        }
        let profile = profiler.stop();
        let snapshot = crate::metrics().snapshot();
        drop(session);
        assert!(profile.samples > 0, "captured no samples in 40ms of work");
        let nested = profile
            .counts()
            .keys()
            .any(|k| k == "profile.outer;profile.inner");
        assert!(nested, "no nested stack in {:?}", profile.counts());
        assert_eq!(
            snapshot.counter("profile.samples"),
            profile.samples,
            "the counter mirrors the profile"
        );
    }

    #[test]
    fn sampler_stitches_cross_thread_stacks() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        let profiler = Profiler::start(Duration::from_micros(50));
        {
            let _root = crate::span("stitch.root");
            let parent = crate::current_span_id();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _w = crate::span_child_of("stitch.worker", parent);
                    spin_for(Duration::from_millis(40));
                });
            });
        }
        let profile = profiler.stop();
        drop(session);
        let stitched = profile
            .counts()
            .keys()
            .any(|k| k == "stitch.root;stitch.worker");
        assert!(
            stitched,
            "worker stack not folded under its cross-thread parent: {:?}",
            profile.counts()
        );
    }

    #[test]
    fn folded_round_trips_and_totals_add_up() {
        let mut p = Profile::default();
        p.record("a;b;c", 4);
        p.record("a;b", 2);
        p.record("a;d", 1);
        p.record("a;b;c", 1); // merges with the first
        assert_eq!(p.samples, 8);
        let folded = p.to_folded();
        assert_eq!(folded, "a;b 2\na;b;c 5\na;d 1\n");
        let parsed = Profile::parse_folded(&folded).unwrap();
        assert_eq!(parsed.counts(), p.counts());
        assert_eq!(parsed.samples, 8);

        let total = p.total_by_frame();
        assert_eq!(total["a"], 8);
        assert_eq!(total["b"], 7);
        assert_eq!(total["c"], 5);
        assert_eq!(total["d"], 1);
        let selfs = p.self_by_frame();
        assert_eq!(selfs["b"], 2);
        assert_eq!(selfs["c"], 5);
        assert_eq!(selfs["d"], 1);
        assert_eq!(selfs.get("a"), None);
        assert_eq!(p.top_self(1), vec![("c".to_string(), 5)]);
    }

    #[test]
    fn parse_folded_rejects_garbage() {
        assert!(Profile::parse_folded("no-count-here\n").is_err());
        assert!(Profile::parse_folded("stack notanumber\n").is_err());
        assert!(Profile::parse_folded(" 5\n").is_err());
        // comments and blanks are fine
        let p = Profile::parse_folded("# header\n\na 1\n").unwrap();
        assert_eq!(p.samples, 1);
    }

    #[test]
    fn recursive_frames_count_once_per_stack_for_totals() {
        let mut p = Profile::default();
        p.record("f;g;f", 3);
        assert_eq!(p.total_by_frame()["f"], 3, "repeated frame counted once");
        assert_eq!(p.self_by_frame()["f"], 3);
    }

    #[test]
    fn diff_ranks_the_grown_frame_first() {
        let mut base = Profile::default();
        base.record("session;eval", 50);
        base.record("session;split", 50);
        let mut head = Profile::default();
        head.record("session;eval", 150);
        head.record("session;split", 50);
        let deltas = diff_profiles(&base, &head);
        assert_eq!(deltas[0].frame, "eval");
        assert!(deltas[0].delta > 0.2, "{deltas:?}");
        // session appears in every stack on both sides: share 1.0 → delta 0
        let session = deltas.iter().find(|d| d.frame == "session").unwrap();
        assert!(session.delta.abs() < 1e-9);
        // split share shrank (same count, bigger total)
        let split = deltas.iter().find(|d| d.frame == "split").unwrap();
        assert!(split.delta < 0.0);
    }

    #[test]
    fn registry_chain_breaks_gracefully_when_parent_is_gone() {
        let registry = StackRegistry::new();
        registry.span_opened(1, None, "root", 0);
        registry.span_opened(2, Some(1), "child", 1);
        // root closes while the cross-thread child still runs
        registry.span_closed(1, 0, None);
        let stacks = registry.sample().unwrap();
        assert_eq!(stacks, vec![vec!["child"]]);
    }
}
