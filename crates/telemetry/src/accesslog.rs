//! Structured JSONL access log for the serve layer.
//!
//! One line per finished request — method, route, status, bytes, latency,
//! request id, session id — written by a dedicated writer thread behind a
//! bounded channel. The design constraints, in order:
//!
//! 1. **Never block a connection thread.** `record` uses `try_send`; when
//!    the channel is full the line is *dropped* and the
//!    `serve.accesslog_dropped` counter incremented. An access log is an
//!    observability aid, not a ledger — the journal is the ledger.
//! 2. **No torn lines.** The writer thread is the only writer and emits
//!    each line with a single `write_all` against an unbuffered `File`, so
//!    a `kill -9` can lose the in-flight line but never interleave two.
//! 3. **Bounded disk.** When the live file would exceed `max_bytes` it is
//!    rotated to `<path>.1` (replacing any previous rotation) and a fresh
//!    file started, so the pair never holds more than one rotation beyond
//!    the cap.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::thread::JoinHandle;

use crate::json::push_json_str;

/// Default bound on the writer channel: deep enough to absorb a burst of
/// finished requests, small enough that a wedged disk cannot buffer
/// unbounded memory.
pub const DEFAULT_ACCESS_LOG_CAPACITY: usize = 1024;

/// Default rotation threshold (bytes) for the live file.
pub const DEFAULT_ACCESS_LOG_MAX_BYTES: u64 = 8 * 1024 * 1024;

/// One finished request, ready to be serialized as an access-log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessLogEntry {
    /// Session-relative completion time, ns.
    pub at_ns: u64,
    /// The request id (inbound or listener-generated).
    pub request_id: String,
    /// HTTP method.
    pub method: String,
    /// Request path (no query string).
    pub route: String,
    /// Response status code (e.g. 200, 404, 429).
    pub status: u16,
    /// Response body size, bytes.
    pub bytes: u64,
    /// Wall-clock time from first byte read to response written, ns.
    pub latency_ns: u64,
    /// Cleaning session the request touched, if any.
    pub session: Option<String>,
}

impl AccessLogEntry {
    /// Render the entry as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"type\":\"access\",\"at_ns\":");
        out.push_str(&self.at_ns.to_string());
        out.push_str(",\"request\":");
        push_json_str(&mut out, &self.request_id);
        out.push_str(",\"method\":");
        push_json_str(&mut out, &self.method);
        out.push_str(",\"route\":");
        push_json_str(&mut out, &self.route);
        out.push_str(",\"status\":");
        out.push_str(&self.status.to_string());
        out.push_str(",\"bytes\":");
        out.push_str(&self.bytes.to_string());
        out.push_str(",\"latency_ns\":");
        out.push_str(&self.latency_ns.to_string());
        if let Some(session) = &self.session {
            out.push_str(",\"session\":");
            push_json_str(&mut out, session);
        }
        out.push('}');
        out
    }
}

enum Msg {
    Line(String),
    Flush(SyncSender<()>),
}

/// Handle to a running access log; see the module docs. Dropping it drains
/// the channel and joins the writer thread.
pub struct AccessLog {
    tx: Option<SyncSender<Msg>>,
    writer: Option<JoinHandle<()>>,
}

impl AccessLog {
    /// Open (truncating) the log at `path` with the default channel
    /// capacity and rotation threshold.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<AccessLog> {
        Self::with_limits(
            path,
            DEFAULT_ACCESS_LOG_MAX_BYTES,
            DEFAULT_ACCESS_LOG_CAPACITY,
        )
    }

    /// Open (truncating) the log at `path`, rotating the live file to
    /// `<path>.1` when it would exceed `max_bytes`, with a writer channel
    /// holding at most `capacity` pending lines.
    pub fn with_limits(
        path: impl AsRef<Path>,
        max_bytes: u64,
        capacity: usize,
    ) -> std::io::Result<AccessLog> {
        let path: PathBuf = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let (tx, rx) = sync_channel::<Msg>(capacity.max(1));
        let writer = std::thread::Builder::new()
            .name("qoco-access-log".to_string())
            .spawn(move || {
                let mut file = file;
                let mut written: u64 = 0;
                for msg in rx {
                    match msg {
                        Msg::Line(line) => {
                            let len = line.len() as u64 + 1;
                            if written > 0 && written + len > max_bytes {
                                // Rotation keeps whole lines: the live file
                                // is only ever swapped between writes.
                                let rotated = rotation_path(&path);
                                let _ = std::fs::rename(&path, &rotated);
                                match File::create(&path) {
                                    Ok(f) => file = f,
                                    Err(_) => continue,
                                }
                                written = 0;
                            }
                            let mut buf = line.into_bytes();
                            buf.push(b'\n');
                            if file.write_all(&buf).is_ok() {
                                written += len;
                            }
                        }
                        Msg::Flush(ack) => {
                            let _ = file.flush();
                            let _ = ack.send(());
                        }
                    }
                }
                let _ = file.flush();
            })?;
        Ok(AccessLog {
            tx: Some(tx),
            writer: Some(writer),
        })
    }

    /// Queue one entry. Lossy: when the writer is saturated the entry is
    /// dropped and `serve.accesslog_dropped` incremented instead of
    /// blocking the connection thread.
    pub fn record(&self, entry: &AccessLogEntry) {
        let Some(tx) = &self.tx else { return };
        match tx.try_send(Msg::Line(entry.to_json())) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                crate::counter_add("serve.accesslog_dropped", 1);
            }
        }
    }

    /// Block until every entry queued before this call is on disk. Test
    /// and shutdown hook; connection threads never call it.
    pub fn flush(&self) {
        let Some(tx) = &self.tx else { return };
        let (ack_tx, ack_rx) = sync_channel(1);
        if tx.send(Msg::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }
}

impl Drop for AccessLog {
    fn drop(&mut self) {
        // Closing the channel lets the writer drain what is queued and
        // exit; joining makes drop a durability point for tests.
        self.tx.take();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// Where the live file is moved on rotation: `<path>.1`.
pub fn rotation_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".1");
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qoco-accesslog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(request_id: &str, seqno: u64) -> AccessLogEntry {
        AccessLogEntry {
            at_ns: seqno,
            request_id: request_id.to_string(),
            method: "GET".to_string(),
            route: "/sessions/s1/report".to_string(),
            status: 200,
            bytes: 512,
            latency_ns: 41_000,
            session: Some("s1".to_string()),
        }
    }

    #[test]
    fn lines_are_well_formed_jsonl() {
        let mut e = entry("qr-1", 7);
        e.session = None;
        assert_eq!(
            e.to_json(),
            "{\"type\":\"access\",\"at_ns\":7,\"request\":\"qr-1\",\"method\":\"GET\",\
             \"route\":\"/sessions/s1/report\",\"status\":200,\"bytes\":512,\
             \"latency_ns\":41000}"
        );
        let with_session = entry("a\"b", 7).to_json();
        assert!(
            with_session.contains("\"request\":\"a\\\"b\""),
            "escaped id"
        );
        assert!(with_session.ends_with(",\"session\":\"s1\"}"));
    }

    #[test]
    fn entries_reach_disk_in_order() {
        let dir = tmpdir("order");
        let path = dir.join("access.jsonl");
        let log = AccessLog::create(&path).unwrap();
        for i in 0..50 {
            log.record(&entry(&format!("qr-{i}"), i));
        }
        log.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 50);
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.contains(&format!("\"request\":\"qr-{i}\"")),
                "line {i} out of order: {line}"
            );
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_whole_lines_on_both_sides() {
        let dir = tmpdir("rotate");
        let path = dir.join("access.jsonl");
        // Threshold of ~4 lines' worth forces several rotations over 40
        // entries; every surviving line must still be complete JSON.
        let line_len = entry("qr-00", 0).to_json().len() as u64 + 1;
        let log = AccessLog::with_limits(&path, line_len * 4, 64).unwrap();
        for i in 0..40 {
            log.record(&entry(&format!("qr-{i:02}"), i));
        }
        log.flush();
        drop(log);
        let rotated = rotation_path(&path);
        assert!(rotated.exists(), "rotation must have happened");
        for p in [&path, &rotated] {
            let text = std::fs::read_to_string(p).unwrap();
            assert!(!text.is_empty());
            for line in text.lines() {
                assert!(
                    line.starts_with("{\"type\":\"access\"") && line.ends_with('}'),
                    "torn line in {}: {line}",
                    p.display()
                );
            }
            assert!(
                std::fs::metadata(p).unwrap().len() <= line_len * 5,
                "rotation failed to bound {}",
                p.display()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn saturation_drops_lossily_without_blocking() {
        let dir = tmpdir("lossy");
        let path = dir.join("access.jsonl");
        // Capacity 1 with a flush-blocked writer: records beyond the
        // channel must drop, not block.
        let log = AccessLog::with_limits(&path, u64::MAX, 1).unwrap();
        let session = crate::session(std::sync::Arc::new(crate::InMemoryCollector::new()));
        for i in 0..200 {
            log.record(&entry(&format!("qr-{i}"), i));
        }
        log.flush();
        drop(log);
        let written = std::fs::read_to_string(&path).unwrap().lines().count() as u64;
        let dropped = crate::metrics()
            .snapshot()
            .counter("serve.accesslog_dropped");
        drop(session);
        assert_eq!(written + dropped, 200, "every record written or counted");
        assert!(written >= 1, "the writer must make progress");
    }

    #[test]
    fn concurrent_writers_never_tear_lines() {
        let dir = tmpdir("concurrent");
        let path = dir.join("access.jsonl");
        let log = AccessLog::with_limits(&path, u64::MAX, 4096).unwrap();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let log = &log;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        log.record(&entry(&format!("w{w}-{i}"), i));
                    }
                });
            }
        });
        log.flush();
        drop(log);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 400);
        for line in lines {
            assert!(
                line.starts_with("{\"type\":\"access\"") && line.ends_with('}'),
                "torn line: {line}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
