//! Spans: named, field-carrying intervals with parent linkage.
//!
//! A [`SpanGuard`] is obtained from [`crate::span`]; it measures the
//! interval from creation to drop on the monotonic clock and reports a
//! [`SpanRecord`] to the installed collector. Parent linkage comes from a
//! per-thread stack: the innermost live span on the current thread is the
//! parent of the next one opened there. Spans opened on worker threads
//! therefore start new roots — cross-thread parenting is out of scope.

use std::fmt;
use std::time::Instant;

/// A finished span as delivered to collectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique id (monotonically increasing from 1).
    pub id: u64,
    /// Id of the enclosing span, if any: the innermost live span on the
    /// opening thread, or an explicit cross-thread parent (see
    /// [`crate::span_child_of`]).
    pub parent: Option<u64>,
    /// Static span name, e.g. `"clean.deletion_phase"`.
    pub name: &'static str,
    /// Ordinal of the OS thread that opened the span (see
    /// [`crate::thread_ordinal`]); the Chrome trace exporter maps each
    /// ordinal to its own track.
    pub thread: u64,
    /// Start offset in nanoseconds since the session epoch.
    pub start_ns: u64,
    /// Measured duration in nanoseconds.
    pub duration_ns: u64,
    /// Ordered `key=value` annotations attached while the span was live.
    pub fields: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// End offset (start + duration) in nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.duration_ns
    }

    /// The value of field `key`, if recorded.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A point-in-time occurrence as delivered to collectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Offset in nanoseconds since the session epoch.
    pub at_ns: u64,
    /// The span live on the emitting thread, if any.
    pub span: Option<u64>,
    /// Ordinal of the OS thread that emitted the event.
    pub thread: u64,
    /// Static event name, e.g. `"crowd.verify_fact"`.
    pub name: &'static str,
    /// Free-form payload rendered by the emitter.
    pub detail: String,
}

pub(crate) struct ActiveSpan {
    pub(crate) id: u64,
    pub(crate) parent: Option<u64>,
    pub(crate) name: &'static str,
    pub(crate) thread: u64,
    pub(crate) start: Instant,
    pub(crate) start_ns: u64,
    pub(crate) fields: Vec<(&'static str, String)>,
}

/// RAII handle for a live span. When no collector is installed the guard is
/// inert: construction, field recording, and drop all reduce to a null
/// check.
pub struct SpanGuard {
    pub(crate) inner: Option<ActiveSpan>,
}

impl SpanGuard {
    /// A guard that records nothing (the disabled fast path).
    pub(crate) fn noop() -> Self {
        SpanGuard { inner: None }
    }

    /// Whether this guard will produce a record.
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a `key=value` field (builder style).
    pub fn field(mut self, key: &'static str, value: impl fmt::Display) -> Self {
        self.record(key, value);
        self
    }

    /// Attach a `key=value` field through a borrow (for mid-span updates).
    pub fn record(&mut self, key: &'static str, value: impl fmt::Display) {
        if let Some(active) = &mut self.inner {
            active.fields.push((key, value.to_string()));
        }
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            crate::finish_span(active);
        }
    }
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(a) => f
                .debug_struct("SpanGuard")
                .field("id", &a.id)
                .field("name", &a.name)
                .finish_non_exhaustive(),
            None => f.write_str("SpanGuard(noop)"),
        }
    }
}
