//! qoco-watch SLO/alert rules: a small parseable rule language evaluated
//! on every sampler tick against the [`crate::SeriesStore`].
//!
//! One rule per line:
//!
//! ```text
//! # crowd health under the PR 4 fault model
//! rule crowd_errors: rate(crowd.faults, 30s) > 5/s for 10s => warn
//! # question-optimality vs the Theorem 4.5 hitting-set lower bound
//! rule optimality: ratio(session.questions_asked, session.lower_bound) > 3 => info
//! rule slow_eval: p95(eval.evaluate_ns) > 50000000 for 5s => page
//! ```
//!
//! Grammar: `rule <name>: <expr> <cmp> <threshold>[/s] [for <dur>] =>
//! <severity>` where `<expr>` is one of `rate(metric, window)`,
//! `value(metric)` (or a bare metric name), `ratio(num, den)`,
//! `p50(metric)`, `p95(metric)`; `<cmp>` is `>`, `>=`, `<` or `<=`;
//! durations take `ms`/`s`/`m` suffixes (bare numbers are seconds); and
//! `<severity>` is `info`, `warn` or `page`. Blank lines and `#` comments
//! are skipped.
//!
//! Each rule carries a three-state lifecycle: **idle** → **pending** (the
//! condition breached, the `for` hold-down running) → **firing** (breached
//! continuously for the hold-down) → **resolved** (back to idle). Every
//! transition is reported by the [`AlertEngine`] so the watch layer can log
//! it as a JSONL event, export it as a Chrome-trace instant, and count it
//! in `alerts.fired`. Evaluation is a pure function of the sampled series,
//! which is what makes `qoco-bench watch-replay` deterministic.

use std::collections::VecDeque;
use std::fmt;

use crate::timeseries::SeriesStore;

/// How loud a firing rule is. Severity does not change the lifecycle —
/// it is a label for dashboards and downstream pagers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Informational: worth a timeline mark, not a page.
    Info,
    /// Needs a look; rendered amber on the dashboard.
    Warn,
    /// Wake someone up; rendered red on the dashboard.
    Page,
}

impl Severity {
    fn parse(s: &str) -> Result<Severity, String> {
        match s {
            "info" => Ok(Severity::Info),
            "warn" => Ok(Severity::Warn),
            "page" => Ok(Severity::Page),
            other => Err(format!(
                "unknown severity `{other}` (expected info, warn or page)"
            )),
        }
    }

    /// The lowercase grammar keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Page => "page",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The comparison between an expression and its threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
}

impl Cmp {
    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            Cmp::Gt => value > threshold,
            Cmp::Ge => value >= threshold,
            Cmp::Lt => value < threshold,
            Cmp::Le => value <= threshold,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }
}

/// What a rule measures each tick.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Counter increase per second over a trailing window (reset-safe:
    /// negative sample-to-sample deltas contribute nothing).
    Rate {
        /// Counter series name.
        metric: String,
        /// Trailing window length.
        window_ns: u64,
    },
    /// The most recent sample of a series.
    Value {
        /// Series name.
        metric: String,
    },
    /// Last value of `num` divided by last value of `den` (undefined — and
    /// therefore never breaching — while `den` is missing or zero).
    Ratio {
        /// Numerator series name.
        num: String,
        /// Denominator series name.
        den: String,
    },
    /// Approximate median of a histogram (reads the sampled `<m>.p50`
    /// series the store derives from the fixed-bucket histograms).
    P50 {
        /// Histogram name (without the `.p50` suffix).
        metric: String,
    },
    /// Approximate 95th percentile of a histogram.
    P95 {
        /// Histogram name (without the `.p95` suffix).
        metric: String,
    },
}

impl Expr {
    /// Evaluate against `store` as of `now_ns`. `None` means "not enough
    /// data" and never breaches.
    pub fn eval(&self, store: &SeriesStore, now_ns: u64) -> Option<f64> {
        match self {
            Expr::Rate { metric, window_ns } => store.rate(metric, *window_ns, now_ns),
            Expr::Value { metric } => store.last(metric).map(|s| s.value),
            Expr::Ratio { num, den } => {
                let d = store.last(den)?.value;
                if d == 0.0 {
                    return None;
                }
                Some(store.last(num)?.value / d)
            }
            Expr::P50 { metric } => store.last(&format!("{metric}.p50")).map(|s| s.value),
            Expr::P95 { metric } => store.last(&format!("{metric}.p95")).map(|s| s.value),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Rate { metric, window_ns } => {
                write!(f, "rate({metric}, {})", fmt_duration(*window_ns))
            }
            Expr::Value { metric } => write!(f, "value({metric})"),
            Expr::Ratio { num, den } => write!(f, "ratio({num}, {den})"),
            Expr::P50 { metric } => write!(f, "p50({metric})"),
            Expr::P95 { metric } => write!(f, "p95({metric})"),
        }
    }
}

/// One parsed alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (unique within a rules file).
    pub name: String,
    /// What to measure.
    pub expr: Expr,
    /// How to compare it to [`Rule::threshold`].
    pub cmp: Cmp,
    /// The breach threshold.
    pub threshold: f64,
    /// Whether the threshold was written with a `/s` suffix (display only;
    /// `rate` already evaluates to per-second units).
    pub per_second: bool,
    /// Hold-down: the condition must breach continuously this long before
    /// the rule fires (0 = fire on first breach).
    pub for_ns: u64,
    /// Label for dashboards and logs.
    pub severity: Severity,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rule {}: {} {} {}{}",
            self.name,
            self.expr,
            self.cmp.as_str(),
            self.threshold,
            if self.per_second { "/s" } else { "" }
        )?;
        if self.for_ns > 0 {
            write!(f, " for {}", fmt_duration(self.for_ns))?;
        }
        write!(f, " => {}", self.severity)
    }
}

/// Render a nanosecond duration the way the grammar writes it.
fn fmt_duration(ns: u64) -> String {
    if ns >= 1_000_000_000 && ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns >= 1_000_000 && ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else {
        format!("{ns}ns")
    }
}

pub(crate) fn parse_duration(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (digits, scale) = if let Some(p) = s.strip_suffix("ms") {
        (p, 1_000_000.0)
    } else if let Some(p) = s.strip_suffix('s') {
        (p, 1_000_000_000.0)
    } else if let Some(p) = s.strip_suffix('m') {
        (p, 60_000_000_000.0)
    } else {
        (s, 1_000_000_000.0)
    };
    let v: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad duration `{s}` (try 500ms, 30s or 2m)"))?;
    if !(v >= 0.0 && v.is_finite()) {
        return Err(format!("bad duration `{s}`"));
    }
    Ok((v * scale) as u64)
}

fn valid_metric(s: &str) -> Result<String, String> {
    if !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_')
    {
        Ok(s.to_string())
    } else {
        Err(format!("bad metric name `{s}`"))
    }
}

/// Parse the expression at the head of `s`; returns it and the unparsed
/// remainder (the comparison onwards).
fn parse_expr(s: &str) -> Result<(Expr, &str), String> {
    let s = s.trim_start();
    for func in ["rate", "ratio", "value", "p50", "p95"] {
        if let Some(rest) = s.strip_prefix(func) {
            let rest = rest.trim_start();
            if let Some(body) = rest.strip_prefix('(') {
                let close = body
                    .find(')')
                    .ok_or_else(|| format!("unclosed `(` after `{func}`"))?;
                let args: Vec<&str> = body[..close].split(',').map(str::trim).collect();
                let want = if matches!(func, "rate" | "ratio") {
                    2
                } else {
                    1
                };
                if args.len() != want {
                    return Err(format!("{func}() takes {want} argument(s)"));
                }
                let expr = match func {
                    "rate" => Expr::Rate {
                        metric: valid_metric(args[0])?,
                        window_ns: parse_duration(args[1])?,
                    },
                    "ratio" => Expr::Ratio {
                        num: valid_metric(args[0])?,
                        den: valid_metric(args[1])?,
                    },
                    "value" => Expr::Value {
                        metric: valid_metric(args[0])?,
                    },
                    "p50" => Expr::P50 {
                        metric: valid_metric(args[0])?,
                    },
                    _ => Expr::P95 {
                        metric: valid_metric(args[0])?,
                    },
                };
                return Ok((expr, &body[close + 1..]));
            }
        }
    }
    // a bare metric name is shorthand for value(metric)
    let end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_'))
        .unwrap_or(s.len());
    if end == 0 {
        return Err(format!("expected an expression at `{s}`"));
    }
    Ok((
        Expr::Value {
            metric: s[..end].to_string(),
        },
        &s[end..],
    ))
}

/// Parse one rule line (no comments/blank handling — see [`parse_rules`]).
pub fn parse_rule(line: &str) -> Result<Rule, String> {
    let rest = line
        .trim()
        .strip_prefix("rule")
        .and_then(|r| r.strip_prefix(char::is_whitespace).or(Some(r)))
        .filter(|r| !r.is_empty())
        .ok_or("expected `rule <name>: …`")?;
    let (name, rest) = rest
        .split_once(':')
        .ok_or("expected `:` after the rule name")?;
    let name = name.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(format!("bad rule name `{name}`"));
    }
    let (cond, sev) = rest
        .split_once("=>")
        .ok_or("expected `=> <severity>` at the end")?;
    let severity = Severity::parse(sev.trim())?;
    let (cond, for_ns) = match cond.rfind(" for ") {
        Some(i) => (&cond[..i], parse_duration(&cond[i + 5..])?),
        None => (cond, 0),
    };
    let (expr, rest) = parse_expr(cond)?;
    let rest = rest.trim_start();
    let (cmp, rest) = if let Some(r) = rest.strip_prefix(">=") {
        (Cmp::Ge, r)
    } else if let Some(r) = rest.strip_prefix("<=") {
        (Cmp::Le, r)
    } else if let Some(r) = rest.strip_prefix('>') {
        (Cmp::Gt, r)
    } else if let Some(r) = rest.strip_prefix('<') {
        (Cmp::Lt, r)
    } else {
        return Err(format!("expected a comparison (>, >=, <, <=) at `{rest}`"));
    };
    let thr = rest.trim();
    let (thr, per_second) = match thr.strip_suffix("/s") {
        Some(t) => (t.trim(), true),
        None => (thr, false),
    };
    let threshold: f64 = thr.parse().map_err(|_| format!("bad threshold `{thr}`"))?;
    Ok(Rule {
        name: name.to_string(),
        expr,
        cmp,
        threshold,
        per_second,
        for_ns,
        severity,
    })
}

/// Parse a rules file: one rule per line, `#` comments and blank lines
/// skipped, duplicate names rejected.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, String> {
    let mut rules: Vec<Rule> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = parse_rule(line).map_err(|e| format!("rules line {}: {e}", i + 1))?;
        if rules.iter().any(|r| r.name == rule.name) {
            return Err(format!(
                "rules line {}: duplicate rule `{}`",
                i + 1,
                rule.name
            ));
        }
        rules.push(rule);
    }
    Ok(rules)
}

/// Internal per-rule lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Idle,
    Pending { since_ns: u64 },
    Firing { since_ns: u64 },
}

impl Phase {
    fn name(&self) -> &'static str {
        match self {
            Phase::Idle => "idle",
            Phase::Pending { .. } => "pending",
            Phase::Firing { .. } => "firing",
        }
    }
}

/// One lifecycle edge, reported by [`AlertEngine::evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Sampler tick the edge happened on.
    pub tick: u64,
    /// Series timestamp of that tick.
    pub at_ns: u64,
    /// Rule name.
    pub rule: String,
    /// Rule severity.
    pub severity: Severity,
    /// Where the rule moved: `"pending"`, `"firing"`, `"resolved"` (firing
    /// → idle) or `"cancelled"` (pending → idle before the hold-down ran
    /// out).
    pub to: &'static str,
    /// The evaluated expression value at the edge (`None` when the edge
    /// was caused by the expression becoming undefined).
    pub value: Option<f64>,
}

impl Transition {
    /// The telemetry event name this edge is logged under.
    pub fn event_name(&self) -> &'static str {
        match self.to {
            "pending" => "alert.pending",
            "firing" => "alert.firing",
            "resolved" => "alert.resolved",
            _ => "alert.cancelled",
        }
    }

    /// Deterministic one-line rendering for logs and the replay report.
    pub fn log_line(&self) -> String {
        match self.value {
            Some(v) => format!("{} -> {} (value {:.3})", self.rule, self.to, v),
            None => format!("{} -> {} (value undefined)", self.rule, self.to),
        }
    }
}

/// Live state of one rule, exported for `/alerts` and the dashboard.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertStateView {
    /// Rule name.
    pub name: String,
    /// The full rule text (round-tripped through [`Rule`]'s `Display`).
    pub rule: String,
    /// Rule severity.
    pub severity: Severity,
    /// `"idle"`, `"pending"` or `"firing"`.
    pub state: &'static str,
    /// When the current pending/firing phase began.
    pub since_ns: Option<u64>,
    /// The expression value at the most recent evaluation.
    pub last_value: Option<f64>,
    /// How many times the rule has fired.
    pub fired: u64,
    /// How many times it has resolved after firing.
    pub resolved: u64,
}

struct AlertState {
    rule: Rule,
    phase: Phase,
    last_value: Option<f64>,
    fired: u64,
    resolved: u64,
}

/// What one [`AlertEngine::evaluate`] pass produced.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    /// Lifecycle edges this tick, in rule order.
    pub transitions: Vec<Transition>,
    /// Rules currently firing (after this tick's edges).
    pub firing: usize,
    /// Rules evaluated (one evaluation per rule per tick).
    pub rules: usize,
}

/// How many recent transitions the engine keeps for `/alerts` and the
/// final summary; older edges are still counted, just not listed.
const TRANSITION_LOG_CAPACITY: usize = 256;

/// Evaluates a fixed rule set against a [`SeriesStore`], tick by tick,
/// tracking each rule's pending/firing lifecycle.
pub struct AlertEngine {
    states: Vec<AlertState>,
    log: VecDeque<Transition>,
    ticks: u64,
}

impl AlertEngine {
    /// An engine over `rules` with every rule idle.
    pub fn new(rules: Vec<Rule>) -> AlertEngine {
        AlertEngine {
            states: rules
                .into_iter()
                .map(|rule| AlertState {
                    rule,
                    phase: Phase::Idle,
                    last_value: None,
                    fired: 0,
                    resolved: 0,
                })
                .collect(),
            log: VecDeque::new(),
            ticks: 0,
        }
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.states.len()
    }

    /// Evaluation ticks seen so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Evaluate every rule against `store` as of (`tick`, `now_ns`),
    /// advancing lifecycles and returning the edges.
    pub fn evaluate(&mut self, tick: u64, now_ns: u64, store: &SeriesStore) -> EvalOutcome {
        self.ticks += 1;
        let mut transitions = Vec::new();
        for st in &mut self.states {
            let value = st.rule.expr.eval(store, now_ns);
            let breach = value.map(|v| st.rule.cmp.holds(v, st.rule.threshold)) == Some(true);
            let mut edge = |to: &'static str, phase: Phase, st: &mut AlertState| {
                st.phase = phase;
                transitions.push(Transition {
                    tick,
                    at_ns: now_ns,
                    rule: st.rule.name.clone(),
                    severity: st.rule.severity,
                    to,
                    value,
                });
            };
            match (st.phase, breach) {
                (Phase::Idle, true) => {
                    if st.rule.for_ns == 0 {
                        st.fired += 1;
                        edge("firing", Phase::Firing { since_ns: now_ns }, st);
                    } else {
                        edge("pending", Phase::Pending { since_ns: now_ns }, st);
                    }
                }
                (Phase::Pending { since_ns }, true)
                    if now_ns.saturating_sub(since_ns) >= st.rule.for_ns =>
                {
                    st.fired += 1;
                    edge("firing", Phase::Firing { since_ns: now_ns }, st);
                }
                (Phase::Pending { .. }, false) => edge("cancelled", Phase::Idle, st),
                (Phase::Firing { .. }, false) => {
                    st.resolved += 1;
                    edge("resolved", Phase::Idle, st);
                }
                _ => {}
            }
            st.last_value = value;
        }
        for t in &transitions {
            if self.log.len() == TRANSITION_LOG_CAPACITY {
                self.log.pop_front();
            }
            self.log.push_back(t.clone());
        }
        EvalOutcome {
            transitions,
            firing: self
                .states
                .iter()
                .filter(|s| matches!(s.phase, Phase::Firing { .. }))
                .count(),
            rules: self.states.len(),
        }
    }

    /// Snapshot every rule's live state (rule order).
    pub fn states(&self) -> Vec<AlertStateView> {
        self.states
            .iter()
            .map(|st| AlertStateView {
                name: st.rule.name.clone(),
                rule: st.rule.to_string(),
                severity: st.rule.severity,
                state: st.phase.name(),
                since_ns: match st.phase {
                    Phase::Idle => None,
                    Phase::Pending { since_ns } | Phase::Firing { since_ns } => Some(since_ns),
                },
                last_value: st.last_value,
                fired: st.fired,
                resolved: st.resolved,
            })
            .collect()
    }

    /// The most recent lifecycle edges (bounded; oldest first).
    pub fn recent_transitions(&self) -> Vec<Transition> {
        self.log.iter().cloned().collect()
    }

    /// One deterministic summary line for the CLI's final report:
    /// `alerts: 1 firing, 2 fired, 1 resolved across 3 rule(s), 42 evaluation(s)`.
    pub fn summary_line(&self) -> String {
        let firing = self
            .states
            .iter()
            .filter(|s| matches!(s.phase, Phase::Firing { .. }))
            .count();
        let fired: u64 = self.states.iter().map(|s| s.fired).sum();
        let resolved: u64 = self.states.iter().map(|s| s.resolved).sum();
        format!(
            "alerts: {firing} firing, {fired} fired, {resolved} resolved across {} rule(s), {} evaluation(s)",
            self.states.len(),
            self.ticks * self.states.len() as u64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::SeriesStore;

    const S: u64 = 1_000_000_000;

    #[test]
    fn parses_the_readme_rule() {
        let r = parse_rule("rule crowd_errors: rate(crowd.faults, 30s) > 5/s for 10s => warn")
            .expect("parses");
        assert_eq!(r.name, "crowd_errors");
        assert_eq!(
            r.expr,
            Expr::Rate {
                metric: "crowd.faults".into(),
                window_ns: 30 * S
            }
        );
        assert_eq!(r.cmp, Cmp::Gt);
        assert_eq!(r.threshold, 5.0);
        assert!(r.per_second);
        assert_eq!(r.for_ns, 10 * S);
        assert_eq!(r.severity, Severity::Warn);
        // Display round-trips through the parser
        assert_eq!(parse_rule(&r.to_string()).expect("round-trip"), r);
    }

    #[test]
    fn parses_every_expression_kind_and_bare_metrics() {
        let text = "\
# burn-rate over the Theorem 4.5 lower bound
rule optimality: ratio(session.questions_asked, session.lower_bound) >= 3 => info

rule slow: p95(eval.evaluate_ns) > 50000000 for 500ms => page
rule median: p50(eval.evaluate_ns) <= 100 => info
rule open: session.witnesses_open > 10 => warn
rule exact: value(view.full_refreshes) < 1 => info
";
        let rules = parse_rules(text).expect("parses");
        assert_eq!(rules.len(), 5);
        assert_eq!(
            rules[0].expr,
            Expr::Ratio {
                num: "session.questions_asked".into(),
                den: "session.lower_bound".into()
            }
        );
        assert_eq!(rules[1].for_ns, 500_000_000);
        assert_eq!(
            rules[3].expr,
            Expr::Value {
                metric: "session.witnesses_open".into()
            }
        );
        for r in &rules {
            assert_eq!(&parse_rule(&r.to_string()).expect("round-trip"), r);
        }
    }

    #[test]
    fn rejects_malformed_rules_with_line_numbers() {
        for (text, needle) in [
            ("rule : rate(a, 1s) > 1 => warn", "bad rule name"),
            ("rule x rate(a, 1s) > 1 => warn", "expected `:`"),
            ("rule x: rate(a) > 1 => warn", "2 argument(s)"),
            ("rule x: rate(a, 1s) 1 => warn", "comparison"),
            ("rule x: rate(a, 1s) > nope => warn", "bad threshold"),
            ("rule x: rate(a, 1s) > 1 => loud", "unknown severity"),
            ("rule x: rate(a, 1s) > 1 for ever => warn", "bad duration"),
            (
                "rule x: rate(a, 1s) > 1 => warn\nrule x: b > 1 => info",
                "duplicate",
            ),
        ] {
            let err = parse_rules(text).expect_err(text);
            assert!(err.contains("line"), "{text}: {err}");
            assert!(err.contains(needle), "{text}: {err} (wanted {needle})");
        }
    }

    fn store_with(metric: &str, points: &[(u64, f64)]) -> SeriesStore {
        let store = SeriesStore::new(64);
        for &(tick, v) in points {
            store.record(metric, tick, tick * S, v);
        }
        store
    }

    #[test]
    fn lifecycle_pending_firing_resolved() {
        // faults counter: flat, then a burst of +2/s for 3 ticks, then flat
        let store = SeriesStore::new(64);
        let values = [0.0, 0.0, 2.0, 4.0, 6.0, 6.0, 6.0, 6.0, 6.0, 6.0];
        let rule = parse_rule("rule burst: rate(faults, 3s) > 1/s for 2s => warn").unwrap();
        let mut engine = AlertEngine::new(vec![rule]);
        let mut timeline = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            let tick = i as u64 + 1;
            store.record("faults", tick, tick * S, v);
            let out = engine.evaluate(tick, tick * S, &store);
            timeline.extend(out.transitions.into_iter().map(|t| (t.tick, t.to)));
        }
        // tick 3 gains 2 over the 3s window (0.67/s, under threshold);
        // tick 4 gains 4 (1.33/s) → pending; still breaching at tick 5
        // (hold-down running); fires at tick 6 (2s elapsed); the burst
        // finishes sliding out of the window at tick 8 (gain 2, 0.67/s)
        // → resolved.
        assert_eq!(
            timeline,
            vec![(4, "pending"), (6, "firing"), (8, "resolved")],
            "full timeline: {timeline:?}"
        );
        let states = engine.states();
        assert_eq!(states[0].fired, 1);
        assert_eq!(states[0].resolved, 1);
        assert_eq!(states[0].state, "idle");
    }

    #[test]
    fn hold_down_cancellation_never_fires() {
        let store = store_with("g", &[(1, 0.0)]);
        let rule = parse_rule("rule spike: g > 5 for 10s => page").unwrap();
        let mut engine = AlertEngine::new(vec![rule]);
        engine.evaluate(1, S, &store);
        store.record("g", 2, 2 * S, 9.0); // breach → pending
        let out = engine.evaluate(2, 2 * S, &store);
        assert_eq!(out.transitions[0].to, "pending");
        store.record("g", 3, 3 * S, 1.0); // back under before the hold-down
        let out = engine.evaluate(3, 3 * S, &store);
        assert_eq!(out.transitions[0].to, "cancelled");
        assert_eq!(out.transitions[0].event_name(), "alert.cancelled");
        assert_eq!(engine.states()[0].fired, 0);
    }

    #[test]
    fn zero_hold_down_fires_immediately_and_ratio_guards_division() {
        let store = SeriesStore::new(64);
        let rule = parse_rule("rule opt: ratio(q, lb) > 2 => info").unwrap();
        let mut engine = AlertEngine::new(vec![rule]);
        // denominator missing → undefined → no edge
        store.record("q", 1, S, 9.0);
        assert!(engine.evaluate(1, S, &store).transitions.is_empty());
        // denominator zero → still undefined
        store.record("lb", 2, 2 * S, 0.0);
        assert!(engine.evaluate(2, 2 * S, &store).transitions.is_empty());
        store.record("lb", 3, 3 * S, 3.0);
        let out = engine.evaluate(3, 3 * S, &store);
        assert_eq!(out.transitions[0].to, "firing");
        assert_eq!(out.firing, 1);
        assert!(engine
            .summary_line()
            .starts_with("alerts: 1 firing, 1 fired"));
    }
}
