//! Named counters, gauges, and histograms.
//!
//! A [`MetricsRegistry`] is a thread-safe map from static metric names to
//! values. The crate keeps one global registry (see [`crate::metrics`])
//! fed by the free functions [`crate::counter_add`], [`crate::gauge_set`],
//! and [`crate::histogram_record`], all of which are no-ops while
//! telemetry is disabled; local registries can be created for tests.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use crate::json::push_json_str;

fn unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Fixed histogram bucket upper bounds (inclusive), shared by every
/// histogram in the registry. Decade-spaced over the nanosecond range the
/// timing histograms actually occupy (100ns .. 10s); observations above
/// the last bound land only in the implicit `+Inf` bucket *and* are
/// tallied in a per-histogram overflow counter, so a long cleaning sweep
/// saturating the ladder is visible rather than silent.
pub const BUCKET_BOUNDS: [u64; 9] = [
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Histo {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Per-decade observation counts: `buckets[i]` holds observations `v`
    /// with `BUCKET_BOUNDS[i-1] < v <= BUCKET_BOUNDS[i]` (non-cumulative;
    /// the exposition layer accumulates).
    buckets: [u64; BUCKET_BOUNDS.len()],
    /// Observations above the last bound (counted in `count`/`sum` and the
    /// implicit `+Inf` bucket, but in no finite bucket).
    overflow: u64,
}

/// A registry of named metrics. Names are expected to be dotted paths like
/// `eval.assignments_tried`; the registry itself imposes no scheme.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    histograms: Mutex<BTreeMap<&'static str, Histo>>,
}

impl MetricsRegistry {
    /// An empty registry (const, so it can back a `static`).
    pub const fn new() -> Self {
        MetricsRegistry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Add `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        *unpoisoned(&self.counters).entry(name).or_insert(0) += delta;
    }

    /// Set the named gauge to `value`.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        unpoisoned(&self.gauges).insert(name, value);
    }

    /// Add `delta` to the named gauge (starting from 0), clamping the
    /// result at zero — for live session-progress gauges that accumulate
    /// across call sites. These gauges count open work items, which can
    /// transiently go negative when decrements race a bulk reset (e.g.
    /// `session.witnesses_open` during a view full-refresh fallback);
    /// clamping keeps the exposition sane instead of wrapping below zero.
    pub fn gauge_add(&self, name: &'static str, delta: f64) {
        let mut gauges = unpoisoned(&self.gauges);
        let e = gauges.entry(name).or_insert(0.0);
        *e = (*e + delta).max(0.0);
    }

    /// Record one observation into the named histogram.
    pub fn histogram_record(&self, name: &'static str, value: u64) {
        let mut h = unpoisoned(&self.histograms);
        let e = h.entry(name).or_insert(Histo {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKET_BOUNDS.len()],
            overflow: 0,
        });
        e.count += 1;
        e.sum += value;
        e.min = e.min.min(value);
        e.max = e.max.max(value);
        match BUCKET_BOUNDS.iter().position(|&b| value <= b) {
            Some(i) => e.buckets[i] += 1,
            None => e.overflow += 1,
        }
    }

    /// Clear every metric (start of a fresh session).
    pub fn reset(&self) {
        unpoisoned(&self.counters).clear();
        unpoisoned(&self.gauges).clear();
        unpoisoned(&self.histograms).clear();
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: unpoisoned(&self.counters)
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: unpoisoned(&self.gauges)
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: unpoisoned(&self.histograms)
                .iter()
                .map(|(k, h)| {
                    (
                        k.to_string(),
                        HistogramSummary {
                            count: h.count,
                            sum: h.sum,
                            min: if h.count == 0 { 0 } else { h.min },
                            max: h.max,
                            buckets: h.buckets,
                            overflow: h.overflow,
                        },
                    )
                })
                .collect(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregate view of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-cumulative per-bucket counts over [`BUCKET_BOUNDS`].
    pub buckets: [u64; BUCKET_BOUNDS.len()],
    /// Observations above the last bound: in `count` and the implicit
    /// `+Inf` bucket, but in no finite one.
    pub overflow: u64,
}

impl HistogramSummary {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative `(upper_bound, count)` pairs over [`BUCKET_BOUNDS`] in
    /// Prometheus `le` semantics: each count covers every observation
    /// `<= upper_bound`. The implicit `+Inf` bucket equals [`Self::count`].
    pub fn cumulative_buckets(&self) -> [(u64, u64); BUCKET_BOUNDS.len()] {
        let mut out = [(0, 0); BUCKET_BOUNDS.len()];
        let mut running = 0;
        for (i, (&bound, &n)) in BUCKET_BOUNDS.iter().zip(&self.buckets).enumerate() {
            running += n;
            out[i] = (bound, running);
        }
        out
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The value of a counter, defaulting to 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// One `{"type":"metric",...}` JSON line per metric.
    pub fn to_jsonl_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, value) in &self.counters {
            let mut l = String::from("{\"type\":\"metric\",\"kind\":\"counter\",\"name\":");
            push_json_str(&mut l, name);
            l.push_str(",\"value\":");
            l.push_str(&value.to_string());
            l.push('}');
            lines.push(l);
        }
        for (name, value) in &self.gauges {
            let mut l = String::from("{\"type\":\"metric\",\"kind\":\"gauge\",\"name\":");
            push_json_str(&mut l, name);
            l.push_str(",\"value\":");
            l.push_str(&format!("{value}"));
            l.push('}');
            lines.push(l);
        }
        for (name, h) in &self.histograms {
            let mut l = String::from("{\"type\":\"metric\",\"kind\":\"histogram\",\"name\":");
            push_json_str(&mut l, name);
            l.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                h.count, h.sum, h.min, h.max
            ));
            lines.push(l);
        }
        lines
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "  {name:<36} {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "  {name:<36} {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "  {name:<36} n={} mean={:.0} min={} max={}",
                h.count,
                h.mean(),
                h.min,
                h.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let r = MetricsRegistry::new();
        r.counter_add("a.b", 2);
        r.counter_add("a.b", 3);
        r.gauge_set("g", 1.5);
        r.gauge_add("g2", 1.0);
        r.gauge_add("g2", 2.5);
        assert_eq!(r.snapshot().counter("a.b"), 5);
        assert_eq!(r.snapshot().gauges["g"], 1.5);
        assert_eq!(r.snapshot().gauges["g2"], 3.5);
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn gauge_add_clamps_underflow_at_zero() {
        // session.witnesses_open can transiently go negative during the
        // view full-refresh fallback; it must clamp, not wrap.
        let r = MetricsRegistry::new();
        r.gauge_add("session.witnesses_open", 3.0);
        r.gauge_add("session.witnesses_open", -5.0);
        assert_eq!(r.snapshot().gauges["session.witnesses_open"], 0.0);
        // recovers normally after the clamp
        r.gauge_add("session.witnesses_open", 2.0);
        assert_eq!(r.snapshot().gauges["session.witnesses_open"], 2.0);
        // a decrement on a fresh gauge starts at the floor, not below it
        r.gauge_add("fresh", -1.0);
        assert_eq!(r.snapshot().gauges["fresh"], 0.0);
    }

    #[test]
    fn histograms_track_count_sum_min_max() {
        let r = MetricsRegistry::new();
        for v in [10, 30, 20] {
            r.histogram_record("h.ns", v);
        }
        let snap = r.snapshot();
        let h = snap.histograms["h.ns"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 60);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 30);
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_counts_partition_the_observations() {
        let r = MetricsRegistry::new();
        // one per decade bucket — 2s lands in the 10s bucket now that the
        // ladder reaches it — plus one past the last bound (+Inf only)
        for v in [50, 500, 5_000, 2_000_000_000, 20_000_000_000] {
            r.histogram_record("h.ns", v);
        }
        let h = r.snapshot().histograms["h.ns"];
        assert_eq!(h.buckets[0], 1, "50 <= 100");
        assert_eq!(h.buckets[1], 1, "500 <= 1000");
        assert_eq!(h.buckets[2], 1, "5000 <= 10000");
        assert_eq!(h.buckets[8], 1, "2s <= 10s — no longer saturated at 1s");
        assert_eq!(h.buckets.iter().sum::<u64>(), 4, "20s exceeds every bound");
        assert_eq!(h.overflow, 1, "the 20s observation is counted, not lost");
        let cumulative = h.cumulative_buckets();
        // cumulative counts are monotone and end at count minus overflow
        for w in cumulative.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(cumulative.last().unwrap().1, 4);
        assert_eq!(h.count, 5);
    }

    #[test]
    fn overflow_is_zero_for_in_range_observations() {
        let r = MetricsRegistry::new();
        r.histogram_record("h.ns", 10_000_000_000); // exactly the last bound
        let h = r.snapshot().histograms["h.ns"];
        assert_eq!(h.overflow, 0);
        assert_eq!(h.buckets[8], 1);
    }

    #[test]
    fn jsonl_lines_cover_all_kinds() {
        let r = MetricsRegistry::new();
        r.counter_add("c", 1);
        r.gauge_set("g", 0.5);
        r.histogram_record("h", 7);
        let lines = r.snapshot().to_jsonl_lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"counter\""));
        assert!(lines[1].contains("\"kind\":\"gauge\""));
        assert!(lines[2].contains("\"kind\":\"histogram\""));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
