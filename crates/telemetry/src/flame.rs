//! Self-contained flamegraph SVG rendering for folded-stack profiles.
//!
//! Zero dependencies, zero scripting: the output is a static SVG (icicle
//! orientation — roots at the top, leaves growing downward) with a
//! `<title>` tooltip per frame, viewable in any browser. Rendering is
//! **deterministic**: frames are laid out in byte order of their names and
//! colored by a hash of the name, so two renders of the same sample set
//! are byte-identical (the property `qoco-bench validate-flamegraph` and
//! the determinism test lean on).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Canvas width in px. Frame widths are fractions of this.
const WIDTH: f64 = 1200.0;
/// Height of one frame row in px.
const FRAME_H: f64 = 16.0;
/// Vertical space above the first row (title banner).
const TOP_PAD: f64 = 40.0;
/// Vertical space below the last row (sample-count footer).
const BOTTOM_PAD: f64 = 24.0;
/// Frames narrower than this many px are dropped from the SVG — they are
/// invisible anyway and unbounded stacks would bloat the file.
const MIN_FRAME_W: f64 = 0.4;
/// Approximate px per character of the embedded monospace label.
const CHAR_W: f64 = 7.2;

#[derive(Default)]
struct Node {
    count: u64,
    children: BTreeMap<String, Node>,
}

fn build_tree(counts: &BTreeMap<String, u64>) -> (Node, usize) {
    let mut root = Node::default();
    let mut max_depth = 0usize;
    for (stack, &count) in counts {
        root.count += count;
        let mut cursor = &mut root;
        let mut depth = 0usize;
        for frame in stack.split(';') {
            cursor = cursor.children.entry(frame.to_string()).or_default();
            cursor.count += count;
            depth += 1;
        }
        max_depth = max_depth.max(depth);
    }
    (root, max_depth)
}

/// FNV-1a over the frame name: the sole source of per-frame color, so the
/// palette is stable across renders and processes.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Warm flamegraph palette (red→orange→yellow), hash-seeded per name.
fn frame_color(name: &str) -> String {
    let h = name_hash(name);
    let r = 205 + (h % 50) as u16;
    let g = ((h >> 8) % 180) as u16;
    let b = ((h >> 16) % 55) as u16;
    format!("rgb({r},{g},{b})")
}

fn escape_xml(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

fn render_node(
    out: &mut String,
    name: &str,
    node: &Node,
    x: f64,
    depth: usize,
    per_sample: f64,
    total: u64,
) {
    let w = node.count as f64 * per_sample;
    if w >= MIN_FRAME_W {
        let y = TOP_PAD + depth as f64 * FRAME_H;
        let pct = 100.0 * node.count as f64 / total as f64;
        let esc = escape_xml(name);
        let _ = write!(
            out,
            r#"<g class="frame"><title>{esc} ({} samples, {pct:.2}%)</title>"#,
            node.count
        );
        let _ = write!(
            out,
            r#"<rect x="{x:.2}" y="{y:.1}" width="{w:.2}" height="{h:.1}" fill="{fill}" rx="1"/>"#,
            h = FRAME_H - 1.0,
            fill = frame_color(name)
        );
        let fit = (w / CHAR_W) as usize;
        if fit >= 3 {
            let label: String = if name.chars().count() <= fit {
                esc
            } else {
                let cut: String = name.chars().take(fit.saturating_sub(2)).collect();
                format!("{}..", escape_xml(&cut))
            };
            let _ = write!(
                out,
                r#"<text x="{tx:.2}" y="{ty:.1}">{label}</text>"#,
                tx = x + 2.0,
                ty = y + FRAME_H - 4.5,
            );
        }
        out.push_str("</g>\n");
    }
    let mut child_x = x;
    for (child_name, child) in &node.children {
        render_node(
            out,
            child_name,
            child,
            child_x,
            depth + 1,
            per_sample,
            total,
        );
        child_x += child.count as f64 * per_sample;
    }
}

/// Render folded-stack counts (`";"-joined stack → samples`) as a
/// self-contained flamegraph SVG. Deterministic: byte-identical output for
/// identical input. An empty profile renders a placeholder banner rather
/// than failing.
pub fn flamegraph_svg(counts: &BTreeMap<String, u64>, title: &str) -> String {
    let (root, max_depth) = build_tree(counts);
    let height = TOP_PAD + (max_depth.max(1) as f64) * FRAME_H + BOTTOM_PAD;
    let mut out = String::new();
    let _ = write!(
        out,
        r##"<?xml version="1.0" standalone="no"?>
<svg version="1.1" xmlns="http://www.w3.org/2000/svg" width="{WIDTH:.0}" height="{height:.0}" viewBox="0 0 {WIDTH:.0} {height:.0}">
<style>
text {{ font-family: monospace; font-size: 11px; fill: #202020; pointer-events: none; }}
.banner {{ font-size: 15px; font-weight: bold; }}
.footer {{ fill: #707070; }}
rect {{ stroke: #ffffff; stroke-width: 0.5; }}
.frame:hover rect {{ stroke: #000000; }}
</style>
<rect x="0" y="0" width="{WIDTH:.0}" height="{height:.0}" fill="#f8f8f8"/>
<text x="12" y="24" class="banner">{banner}</text>
"##,
        banner = escape_xml(title)
    );
    if root.count == 0 {
        let _ = write!(
            out,
            r#"<text x="12" y="{y:.1}">no samples captured</text>"#,
            y = TOP_PAD + FRAME_H - 4.5
        );
        out.push('\n');
    } else {
        let per_sample = WIDTH / root.count as f64;
        let mut child_x = 0.0;
        for (name, child) in &root.children {
            render_node(&mut out, name, child, child_x, 0, per_sample, root.count);
            child_x += child.count as f64 * per_sample;
        }
    }
    let _ = write!(
        out,
        r#"<text x="12" y="{y:.1}" class="footer">{n} samples, {m} distinct stacks</text>
</svg>
"#,
        y = height - 8.0,
        n = root.count,
        m = counts.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts() -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        counts.insert("session;eval;eval.par_chunk".to_string(), 40);
        counts.insert("session;eval".to_string(), 10);
        counts.insert("session;split".to_string(), 25);
        counts
    }

    #[test]
    fn rendering_is_deterministic() {
        let counts = sample_counts();
        let a = flamegraph_svg(&counts, "determinism check");
        let b = flamegraph_svg(&counts, "determinism check");
        assert_eq!(
            a, b,
            "two renders of the same sample set must be byte-identical"
        );
    }

    #[test]
    fn structure_holds_one_rect_per_visible_frame() {
        let svg = flamegraph_svg(&sample_counts(), "t");
        // frames: session, eval, eval.par_chunk, split — all wide enough
        assert_eq!(svg.matches(r#"<g class="frame">"#).count(), 4);
        assert_eq!(svg.matches("<title>").count(), 4);
        assert!(svg.contains("session (75 samples, 100.00%)"));
        assert!(svg.contains("eval.par_chunk (40 samples, 53.33%)"));
        assert!(svg.starts_with("<?xml"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn sliver_frames_are_elided_but_layout_survives() {
        let mut counts = BTreeMap::new();
        counts.insert("root;big".to_string(), 100_000);
        counts.insert("root;tiny".to_string(), 1); // far below MIN_FRAME_W
        let svg = flamegraph_svg(&counts, "t");
        assert_eq!(
            svg.matches(r#"<g class="frame">"#).count(),
            2,
            "root + big; tiny elided"
        );
        assert!(!svg.contains(">tiny<"));
    }

    #[test]
    fn names_are_xml_escaped() {
        let mut counts = BTreeMap::new();
        counts.insert("a<b>&\"c\"".to_string(), 50);
        let svg = flamegraph_svg(&counts, "<&>");
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(svg.contains("&lt;&amp;&gt;"));
        assert!(!svg.contains("a<b>"));
    }

    #[test]
    fn empty_profile_renders_a_placeholder() {
        let svg = flamegraph_svg(&BTreeMap::new(), "empty");
        assert!(svg.contains("no samples captured"));
        assert!(svg.contains("0 samples, 0 distinct stacks"));
    }

    #[test]
    fn colors_are_stable_per_name() {
        assert_eq!(frame_color("eval"), frame_color("eval"));
        assert_ne!(frame_color("eval"), frame_color("split"));
    }
}
