//! Session timelines: spans + events + metrics in one renderable report.

use std::collections::BTreeMap;
use std::fmt;

use crate::metrics::MetricsSnapshot;
use crate::span::{EventRecord, SpanRecord};

/// A timeline entry that happened at a point in time. Collector events map
/// directly; other sources (e.g. crowd transcripts) are bridged into this
/// shape by their own crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Offset in nanoseconds since the session epoch.
    pub at_ns: u64,
    /// Short category label, e.g. `crowd.verify_fact`.
    pub label: String,
    /// Human-readable payload.
    pub detail: String,
}

impl TimelineEvent {
    /// Bridge a collector [`EventRecord`] into a timeline event.
    pub fn from_record(e: EventRecord) -> Self {
        TimelineEvent {
            at_ns: e.at_ns,
            label: e.name.to_string(),
            detail: e.detail,
        }
    }
}

/// Aggregate duration/count of all spans sharing a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTotal {
    /// Number of spans with this name.
    pub count: usize,
    /// Summed duration across them, in nanoseconds.
    pub total_ns: u64,
}

/// An ordered, renderable record of one cleaning session: the span tree,
/// the merged event stream, and a metrics snapshot.
#[derive(Debug, Clone, Default)]
pub struct SessionTimeline {
    spans: Vec<SpanRecord>,
    events: Vec<TimelineEvent>,
    metrics: MetricsSnapshot,
}

impl SessionTimeline {
    /// Build a timeline; spans and events are sorted chronologically.
    pub fn new(
        mut spans: Vec<SpanRecord>,
        mut events: Vec<TimelineEvent>,
        metrics: MetricsSnapshot,
    ) -> Self {
        spans.sort_by_key(|s| (s.start_ns, s.id));
        events.sort_by(|a, b| a.at_ns.cmp(&b.at_ns).then(a.label.cmp(&b.label)));
        SessionTimeline {
            spans,
            events,
            metrics,
        }
    }

    /// All spans, ordered by start time.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// All events, ordered by time.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// The metrics snapshot taken at session end.
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// Spans with no parent (session roots), in start order.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent.is_none()).collect()
    }

    /// Direct children of span `id`, in start order.
    pub fn children_of(&self, id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Aggregate span durations by span name.
    pub fn phase_totals(&self) -> BTreeMap<&'static str, PhaseTotal> {
        let mut out: BTreeMap<&'static str, PhaseTotal> = BTreeMap::new();
        for s in &self.spans {
            let e = out.entry(s.name).or_default();
            e.count += 1;
            e.total_ns += s.duration_ns;
        }
        out
    }

    /// Wall-clock extent covered by the recorded spans and events, in
    /// nanoseconds.
    pub fn total_ns(&self) -> u64 {
        let start = self
            .spans
            .iter()
            .map(|s| s.start_ns)
            .chain(self.events.iter().map(|e| e.at_ns))
            .min()
            .unwrap_or(0);
        let end = self
            .spans
            .iter()
            .map(|s| s.end_ns())
            .chain(self.events.iter().map(|e| e.at_ns))
            .max()
            .unwrap_or(0);
        end.saturating_sub(start)
    }

    fn render_span(&self, s: &SpanRecord, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!("{indent}- {} {}", s.name, fmt_ns(s.duration_ns)));
        if !s.fields.is_empty() {
            let fields: Vec<String> = s.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!(" [{}]", fields.join(", ")));
        }
        out.push('\n');
        for child in self.children_of(s.id) {
            self.render_span(child, depth + 1, out);
        }
    }

    /// Render the whole session as indented text: span tree, event stream,
    /// metrics.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "session timeline: {} spans, {} events, {} total\n",
            self.spans.len(),
            self.events.len(),
            fmt_ns(self.total_ns())
        ));
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for root in self.roots() {
                self.render_span(root, 1, &mut out);
            }
        }
        if !self.events.is_empty() {
            out.push_str("events:\n");
            for e in &self.events {
                out.push_str(&format!(
                    "  +{:<12} {:<24} {}\n",
                    fmt_ns(e.at_ns),
                    e.label,
                    e.detail
                ));
            }
        }
        if !self.metrics.is_empty() {
            out.push_str("metrics:\n");
            out.push_str(&self.metrics.to_string());
        }
        out
    }
}

impl fmt::Display for SessionTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a nanosecond quantity at a human scale (ns/µs/ms/s).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &'static str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            start_ns: start,
            duration_ns: dur,
            fields: Vec::new(),
        }
    }

    fn sample() -> SessionTimeline {
        SessionTimeline::new(
            vec![
                span(2, Some(1), "clean.deletion_phase", 100, 400),
                span(1, None, "clean.session", 0, 1_000),
                span(3, Some(1), "clean.insertion_phase", 600, 300),
            ],
            vec![TimelineEvent {
                at_ns: 150,
                label: "crowd.verify_fact".to_string(),
                detail: "Goals(...)".to_string(),
            }],
            MetricsSnapshot::default(),
        )
    }

    #[test]
    fn nesting_is_reconstructed_from_parent_links() {
        let t = sample();
        let roots = t.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "clean.session");
        let kids = t.children_of(1);
        assert_eq!(kids.len(), 2);
        // chronological order within the parent
        assert_eq!(kids[0].name, "clean.deletion_phase");
        assert_eq!(kids[1].name, "clean.insertion_phase");
    }

    #[test]
    fn phase_totals_aggregate_by_name() {
        let t = sample();
        let totals = t.phase_totals();
        assert_eq!(totals["clean.session"].count, 1);
        assert_eq!(totals["clean.deletion_phase"].total_ns, 400);
        assert_eq!(t.total_ns(), 1_000);
    }

    #[test]
    fn render_shows_tree_events_and_durations() {
        let t = sample();
        let text = t.render();
        assert!(text.contains("3 spans, 1 events"));
        // child indented under root
        assert!(text.contains("\n  - clean.session"));
        assert!(text.contains("\n    - clean.deletion_phase"));
        assert!(text.contains("crowd.verify_fact"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(950), "950ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
