//! Session timelines: spans + events + metrics in one renderable report.

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::fmt;

use crate::metrics::MetricsSnapshot;
use crate::span::{EventRecord, SpanRecord};

/// A timeline entry that happened at a point in time. Collector events map
/// directly; other sources (e.g. crowd transcripts) are bridged into this
/// shape by their own crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Offset in nanoseconds since the session epoch.
    pub at_ns: u64,
    /// The span live when the event fired, if known (collector events
    /// carry it; bridged sources like crowd transcripts usually don't).
    pub span: Option<u64>,
    /// Short category label, e.g. `crowd.verify_fact`.
    pub label: String,
    /// Human-readable payload.
    pub detail: String,
}

impl TimelineEvent {
    /// Bridge a collector [`EventRecord`] into a timeline event.
    pub fn from_record(e: EventRecord) -> Self {
        TimelineEvent {
            at_ns: e.at_ns,
            span: e.span,
            label: e.name.to_string(),
            detail: e.detail,
        }
    }
}

/// Aggregate duration/count of all spans sharing a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTotal {
    /// Number of spans with this name.
    pub count: usize,
    /// Summed duration across them, in nanoseconds.
    pub total_ns: u64,
}

/// Wall/self-time and question/event attribution for all spans sharing a
/// name; see [`SessionTimeline::attribution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseAttribution {
    /// Number of spans with this name.
    pub count: usize,
    /// Summed span durations (wall time), in nanoseconds.
    pub wall_ns: u64,
    /// Wall time not covered by direct child spans, in nanoseconds.
    pub self_ns: u64,
    /// Crowd questions charged to these spans (their `questions=` fields).
    pub questions: u64,
    /// Index probe hits charged to these spans (their `probes=` fields).
    pub probes: u64,
    /// Collector events emitted while a span of this name was innermost.
    pub events: usize,
}

/// An ordered, renderable record of one cleaning session: the span tree,
/// the merged event stream, and a metrics snapshot.
#[derive(Debug, Clone, Default)]
pub struct SessionTimeline {
    spans: Vec<SpanRecord>,
    events: Vec<TimelineEvent>,
    metrics: MetricsSnapshot,
}

impl SessionTimeline {
    /// Build a timeline; spans and events are sorted chronologically.
    pub fn new(
        mut spans: Vec<SpanRecord>,
        mut events: Vec<TimelineEvent>,
        metrics: MetricsSnapshot,
    ) -> Self {
        spans.sort_by_key(|s| (s.start_ns, s.id));
        events.sort_by(|a, b| a.at_ns.cmp(&b.at_ns).then(a.label.cmp(&b.label)));
        SessionTimeline {
            spans,
            events,
            metrics,
        }
    }

    /// All spans, ordered by start time.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// All events, ordered by time.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// The metrics snapshot taken at session end.
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// Spans with no parent (session roots), in start order.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent.is_none()).collect()
    }

    /// Direct children of span `id`, in start order.
    pub fn children_of(&self, id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Aggregate span durations by span name.
    pub fn phase_totals(&self) -> BTreeMap<&'static str, PhaseTotal> {
        let mut out: BTreeMap<&'static str, PhaseTotal> = BTreeMap::new();
        for s in &self.spans {
            let e = out.entry(s.name).or_default();
            e.count += 1;
            e.total_ns += s.duration_ns;
        }
        out
    }

    /// Per-phase attribution: for every span name, the wall time (summed
    /// durations), **self time** (wall minus the time covered by direct
    /// child spans — where the phase itself burned CPU rather than
    /// delegating), crowd questions and index probe hits (summed from the
    /// `questions=` / `probes=` span fields) and collector events
    /// attributed to spans of that name.
    ///
    /// Children evaluated on worker threads may overlap in wall-clock time
    /// (the parallel eval fan-out), so a parent's summed child time can
    /// exceed its own duration; self time saturates at zero there.
    pub fn attribution(&self) -> BTreeMap<&'static str, PhaseAttribution> {
        let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
        let mut name_of: BTreeMap<u64, &'static str> = BTreeMap::new();
        for s in &self.spans {
            name_of.insert(s.id, s.name);
            if let Some(p) = s.parent {
                *child_ns.entry(p).or_insert(0) += s.duration_ns;
            }
        }
        let mut out: BTreeMap<&'static str, PhaseAttribution> = BTreeMap::new();
        for s in &self.spans {
            let e = out.entry(s.name).or_default();
            e.count += 1;
            e.wall_ns += s.duration_ns;
            e.self_ns += s
                .duration_ns
                .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            if let Some(q) = s.field("questions").and_then(|v| v.parse::<u64>().ok()) {
                e.questions += q;
            }
            if let Some(p) = s.field("probes").and_then(|v| v.parse::<u64>().ok()) {
                e.probes += p;
            }
        }
        for ev in &self.events {
            if let Some(name) = ev.span.and_then(|id| name_of.get(&id)) {
                out.entry(name).or_default().events += 1;
            }
        }
        out
    }

    /// Render [`SessionTimeline::attribution`] as an aligned text table,
    /// phases sorted by descending self time.
    pub fn render_attribution(&self) -> String {
        let attribution = self.attribution();
        let mut rows: Vec<(&str, PhaseAttribution)> = attribution.into_iter().collect();
        rows.sort_by_key(|(name, a)| (Reverse(a.self_ns), *name));
        let mut out = String::from(
            "phase                          count        wall        self   questions     probes   events\n",
        );
        for (name, a) in rows {
            out.push_str(&format!(
                "{name:<30} {:>5} {:>11} {:>11} {:>11} {:>10} {:>8}\n",
                a.count,
                fmt_ns(a.wall_ns),
                fmt_ns(a.self_ns),
                a.questions,
                a.probes,
                a.events
            ));
        }
        out
    }

    /// Wall-clock extent covered by the recorded spans and events, in
    /// nanoseconds.
    pub fn total_ns(&self) -> u64 {
        let start = self
            .spans
            .iter()
            .map(|s| s.start_ns)
            .chain(self.events.iter().map(|e| e.at_ns))
            .min()
            .unwrap_or(0);
        let end = self
            .spans
            .iter()
            .map(|s| s.end_ns())
            .chain(self.events.iter().map(|e| e.at_ns))
            .max()
            .unwrap_or(0);
        end.saturating_sub(start)
    }

    fn render_span(&self, s: &SpanRecord, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!("{indent}- {} {}", s.name, fmt_ns(s.duration_ns)));
        if !s.fields.is_empty() {
            let fields: Vec<String> = s.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!(" [{}]", fields.join(", ")));
        }
        out.push('\n');
        for child in self.children_of(s.id) {
            self.render_span(child, depth + 1, out);
        }
    }

    /// Render the whole session as indented text: span tree, event stream,
    /// metrics.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "session timeline: {} spans, {} events, {} total\n",
            self.spans.len(),
            self.events.len(),
            fmt_ns(self.total_ns())
        ));
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for root in self.roots() {
                self.render_span(root, 1, &mut out);
            }
        }
        if !self.events.is_empty() {
            out.push_str("events:\n");
            for e in &self.events {
                out.push_str(&format!(
                    "  +{:<12} {:<24} {}\n",
                    fmt_ns(e.at_ns),
                    e.label,
                    e.detail
                ));
            }
        }
        if !self.metrics.is_empty() {
            out.push_str("metrics:\n");
            out.push_str(&self.metrics.to_string());
        }
        out
    }
}

impl fmt::Display for SessionTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a nanosecond quantity at a human scale (ns/µs/ms/s).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &'static str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            thread: 0,
            start_ns: start,
            duration_ns: dur,
            fields: Vec::new(),
        }
    }

    fn sample() -> SessionTimeline {
        SessionTimeline::new(
            vec![
                span(2, Some(1), "clean.deletion_phase", 100, 400),
                span(1, None, "clean.session", 0, 1_000),
                span(3, Some(1), "clean.insertion_phase", 600, 300),
            ],
            vec![TimelineEvent {
                at_ns: 150,
                span: Some(2),
                label: "crowd.verify_fact".to_string(),
                detail: "Goals(...)".to_string(),
            }],
            MetricsSnapshot::default(),
        )
    }

    #[test]
    fn nesting_is_reconstructed_from_parent_links() {
        let t = sample();
        let roots = t.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "clean.session");
        let kids = t.children_of(1);
        assert_eq!(kids.len(), 2);
        // chronological order within the parent
        assert_eq!(kids[0].name, "clean.deletion_phase");
        assert_eq!(kids[1].name, "clean.insertion_phase");
    }

    #[test]
    fn phase_totals_aggregate_by_name() {
        let t = sample();
        let totals = t.phase_totals();
        assert_eq!(totals["clean.session"].count, 1);
        assert_eq!(totals["clean.deletion_phase"].total_ns, 400);
        assert_eq!(t.total_ns(), 1_000);
    }

    #[test]
    fn render_shows_tree_events_and_durations() {
        let t = sample();
        let text = t.render();
        assert!(text.contains("3 spans, 1 events"));
        // child indented under root
        assert!(text.contains("\n  - clean.session"));
        assert!(text.contains("\n    - clean.deletion_phase"));
        assert!(text.contains("crowd.verify_fact"));
    }

    #[test]
    fn attribution_computes_self_time_questions_and_events() {
        let mut remove = span(2, Some(1), "deletion.remove_answer", 100, 400);
        remove.fields.push(("questions", "3".to_string()));
        let mut remove2 = span(4, Some(1), "deletion.remove_answer", 700, 100);
        remove2.fields.push(("questions", "2".to_string()));
        let mut eval = span(3, Some(2), "eval.assignments", 150, 250);
        eval.fields.push(("probes", "17".to_string()));
        let t = SessionTimeline::new(
            vec![
                span(1, None, "clean.session", 0, 1_000),
                remove,
                eval,
                remove2,
            ],
            vec![
                TimelineEvent {
                    at_ns: 160,
                    span: Some(2),
                    label: "crowd.verify_fact".to_string(),
                    detail: String::new(),
                },
                TimelineEvent {
                    at_ns: 170,
                    span: None, // bridged event with no span attribution
                    label: "crowd.complete".to_string(),
                    detail: String::new(),
                },
            ],
            MetricsSnapshot::default(),
        );
        let a = t.attribution();
        // session: 1000 wall, children (400 + 100) → 500 self
        assert_eq!(a["clean.session"].wall_ns, 1_000);
        assert_eq!(a["clean.session"].self_ns, 500);
        // remove_answer: 500 wall across 2 spans, eval child takes 250
        let removal = a["deletion.remove_answer"];
        assert_eq!(removal.count, 2);
        assert_eq!(removal.wall_ns, 500);
        assert_eq!(removal.self_ns, 250);
        assert_eq!(removal.questions, 5);
        assert_eq!(removal.events, 1);
        // leaf: self == wall, probe hits summed from its `probes=` field
        assert_eq!(a["eval.assignments"].self_ns, 250);
        assert_eq!(a["eval.assignments"].probes, 17);
        assert_eq!(removal.probes, 0);
        let rendered = t.render_attribution();
        assert!(rendered.contains("deletion.remove_answer"), "{rendered}");
        assert!(rendered.lines().count() >= 4);
    }

    #[test]
    fn overlapping_parallel_children_saturate_self_time() {
        // two children on worker threads fully overlap the parent: summed
        // child time (800) exceeds the parent duration (500)
        let t = SessionTimeline::new(
            vec![
                span(1, None, "eval.assignments", 0, 500),
                span(2, Some(1), "eval.par_chunk", 50, 400),
                span(3, Some(1), "eval.par_chunk", 60, 400),
            ],
            Vec::new(),
            MetricsSnapshot::default(),
        );
        let a = t.attribution();
        assert_eq!(a["eval.assignments"].self_ns, 0);
        assert_eq!(a["eval.par_chunk"].wall_ns, 800);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(950), "950ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
