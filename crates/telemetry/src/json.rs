//! Hand-rolled JSON string escaping (the crate is dependency-free, so no
//! serde). Only string escaping is needed; numbers are written with
//! `Display`, which already produces valid JSON for the integer types used.

/// Append `s` to `out` as a JSON string literal, including the quotes.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esc(s: &str) -> String {
        let mut out = String::new();
        push_json_str(&mut out, s);
        out
    }

    #[test]
    fn escapes_quotes_backslashes_and_control() {
        assert_eq!(esc("plain"), r#""plain""#);
        assert_eq!(esc("a\"b"), r#""a\"b""#);
        assert_eq!(esc("a\\b"), r#""a\\b""#);
        assert_eq!(esc("a\tb\nc"), r#""a\tb\nc""#);
        assert_eq!(esc("\u{1}"), r#""\u0001""#);
        assert_eq!(esc("雪→🦀"), "\"雪→🦀\"");
    }
}
