//! A dependency-free operational HTTP endpoint.
//!
//! [`MetricsServer`] binds a `std::net::TcpListener` and answers:
//!
//! * `GET /metrics` — the current global registry in Prometheus text
//!   format (see [`crate::MetricsSnapshot::to_prometheus_text`]) plus a
//!   constant `qoco_build_info` gauge identifying the binary.
//! * `GET /health` — a one-object JSON liveness summary (uptime, the live
//!   session-progress and serve gauges, profiler sample totals).
//! * `GET /alerts` — the qoco-watch rule states and recent lifecycle
//!   transitions as JSON.
//! * `GET /api/timeseries?metric=…[&window=…]` — the sampled ring of one
//!   metric plus its windowed rate and min/max/last as JSON.
//! * `GET /dashboard` — a self-contained HTML page with inline-SVG
//!   sparklines and the alert table (see [`crate::dashboard_html`]).
//! * `GET /api/requests` — the in-flight request inspector: every request
//!   currently being served, with its id, route, session, current phase
//!   and age (see [`crate::inflight_requests`]).
//!
//! Additional routes — the `/sessions` API of `qoco-serve` — plug in
//! through [`RouteHandler`] in [`ServerOptions`]: the handler is consulted
//! for anything the built-ins do not claim, and its route summaries join
//! the 404 listing. Everything still unclaimed gets a `404` that lists
//! every route that does exist. Each route carries its correct
//! `Content-Type` and every response closes the connection
//! (`Connection: close`).
//!
//! ## Request observability
//!
//! Every request is assigned a **request id**: an inbound `X-Request-Id`
//! header (or the trace id of a W3C `traceparent`) is honored, anything
//! else gets a deterministic `qr-N` from a per-listener counter seeded by
//! [`ServerOptions::request_id_seed`]. The id is echoed back as an
//! `X-Request-Id` response header, stamped on the request's
//! `serve.request` span, marked current on the connection thread (see
//! [`crate::begin_request`]) so the machine step, journal and decision
//! layers underneath can tag their records with it, and written to the
//! structured access log ([`ServerOptions::access_log`]) together with
//! method, route, status, bytes, latency and session. Per-route RED
//! metrics (`serve.requests.<route>.<class>` counters,
//! `serve.latency_ns.<route>` histograms, the `serve.inflight` gauge)
//! flow through the ordinary registry.
//!
//! ## Robustness
//!
//! Connections are served one thread each, with an in-flight cap: excess
//! connections are shed immediately with `429` (counted in
//! `serve.rejected`) instead of queueing behind a stalled peer. Each
//! connection gets a *wall-clock* deadline for its whole request head — a
//! slow-loris client dripping one byte per second is cut off with `408`
//! when the deadline lapses, even though no single `read()` ever times
//! out. Request bodies are bounded ([`ServerOptions::max_body_bytes`],
//! `413` beyond), and a request line longer than [`MAX_REQUEST_LINE`]
//! with no line break in sight is cut off with `414`.
//!
//! The server reads the *global* registry and watch directly, so it
//! reflects live values mid-session (unlike exporters that consume an
//! end-of-session snapshot). Dropping the guard shuts the listener down.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::push_json_str;

/// One parsed HTTP request, as handed to a [`RouteHandler`].
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …).
    pub method: String,
    /// The path with the query string stripped (`/sessions/s1/answers`).
    pub route: String,
    /// The raw query string (no leading `?`; empty if none).
    pub query: String,
    /// The request body (empty unless the client sent `Content-Length`).
    pub body: Vec<u8>,
    /// The request id: the sanitized inbound `X-Request-Id` (or
    /// `traceparent` trace id), else a listener-generated `qr-N`. Never
    /// empty by the time a [`RouteHandler`] sees the request.
    pub request_id: String,
}

/// A response a [`RouteHandler`] produces.
pub struct HttpResponse {
    /// Full status line tail, e.g. `"200 OK"`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: &'static str, body: String) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A plain-text response.
    pub fn text(status: &'static str, body: String) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }
}

/// Pluggable routes consulted for requests the built-in routes do not
/// claim. Handlers run on the per-connection thread and must be
/// `Send + Sync`; return `None` to fall through to the 404.
pub trait RouteHandler: Send + Sync {
    /// Answer `req`, or `None` if this handler does not own the route.
    fn handle(&self, req: &HttpRequest) -> Option<HttpResponse>;

    /// Route summaries (e.g. `"POST /sessions"`) appended to the 404
    /// body's route list.
    fn route_summaries(&self) -> Vec<String> {
        Vec::new()
    }
}

/// Tunables for [`MetricsServer::start_with`]; `Default` matches the
/// plain [`MetricsServer::start`].
pub struct ServerOptions {
    /// Extra routes; `None` serves only the built-ins.
    pub handler: Option<Arc<dyn RouteHandler>>,
    /// In-flight connection cap; excess connections get `429` and count
    /// into `serve.rejected`.
    pub max_connections: usize,
    /// Request-body cap; larger `Content-Length` gets `413`.
    pub max_body_bytes: usize,
    /// Wall-clock allowance for reading one complete request (head and
    /// body); a drip-feeding client is cut off with `408` when it lapses.
    pub read_deadline: Duration,
    /// Structured JSONL access log; `None` logs nothing.
    pub access_log: Option<Arc<crate::AccessLog>>,
    /// First value of the per-listener counter that mints `qr-N` request
    /// ids for requests arriving without one. Deterministic by design: a
    /// replayed request sequence against a fresh listener reproduces the
    /// same ids.
    pub request_id_seed: u64,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            handler: None,
            max_connections: 64,
            max_body_bytes: 1 << 20,
            read_deadline: Duration::from_secs(5),
            access_log: None,
            request_id_seed: 1,
        }
    }
}

/// A running metrics endpoint; see the module docs. Dropping it stops the
/// accept loop and joins the serving thread.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks an ephemeral
    /// port — read it back with [`MetricsServer::local_addr`]) and start
    /// serving the built-in routes with default [`ServerOptions`].
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        MetricsServer::start_with(addr, ServerOptions::default())
    }

    /// [`MetricsServer::start`] with explicit options (extra routes,
    /// connection cap, body cap, read deadline).
    pub fn start_with(addr: &str, options: ServerOptions) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let started = Instant::now();
        let options = Arc::new(options);
        let in_flight = Arc::new(AtomicUsize::new(0));
        let request_ids = Arc::new(AtomicU64::new(options.request_id_seed));
        let handle = std::thread::Builder::new()
            .name("qoco-metrics".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    // Shed before spawning: a stalled peer holds a slot,
                    // it must not hold the accept loop.
                    let live = in_flight.fetch_add(1, Ordering::SeqCst);
                    if live >= options.max_connections {
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        crate::counter_add("serve.rejected", 1);
                        crate::counter_add("serve.rejected.cap", 1);
                        let received = Instant::now();
                        let rid = next_request_id(&request_ids);
                        let resp = HttpResponse::text(
                            "429 Too Many Requests",
                            "connection limit reached, retry later\n".to_string(),
                        );
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                        let _ = write_response(&mut stream, &resp, Some(&rid));
                        drain_unread(&mut stream);
                        log_access(&options, received, &rid, "-", "-", &resp, None);
                        continue;
                    }
                    let options = options.clone();
                    let slot = in_flight.clone();
                    let ids = request_ids.clone();
                    let spawned = std::thread::Builder::new()
                        .name("qoco-serve-conn".to_string())
                        .spawn(move || {
                            crate::gauge_add("serve.inflight", 1.0);
                            let _ = serve_one(stream, started, &options, &ids);
                            crate::gauge_add("serve.inflight", -1.0);
                            slot.fetch_sub(1, Ordering::SeqCst);
                        });
                    if spawned.is_err() {
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept() the serving thread is parked in.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A request line longer than this (with no line break in sight) is cut
/// off with `414` instead of being buffered further. Real scrapers send
/// `GET /metrics HTTP/1.1` — anything approaching this bound is garbage.
const MAX_REQUEST_LINE: usize = 1024;

/// The `GET /health` body: a single JSON object with server uptime, the
/// live session-progress gauges (0 when no session has set them), the
/// serve-layer session gauges, and the profiler's process-lifetime sample
/// totals.
fn health_body(started: Instant) -> String {
    let snapshot = crate::metrics().snapshot();
    let gauge = |name: &str| snapshot.gauges.get(name).copied().unwrap_or(0.0);
    let (samples, dropped) = crate::sample_totals();
    format!(
        concat!(
            "{{\"status\":\"ok\",\"uptime_s\":{:.3},\"session_active\":{},",
            "\"questions_asked\":{},\"witnesses_open\":{},",
            "\"sessions\":{{\"active\":{},\"parked\":{}}},",
            "\"profile\":{{\"samples\":{},\"dropped\":{}}}}}\n"
        ),
        started.elapsed().as_secs_f64(),
        crate::enabled(),
        gauge("session.questions_asked"),
        gauge("session.witnesses_open"),
        gauge("sessions.active"),
        gauge("sessions.parked"),
        samples,
        dropped,
    )
}

/// Push `v` as a JSON number, or `null` when absent/non-finite.
fn push_json_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) if v.is_finite() => out.push_str(&format!("{v}")),
        _ => out.push_str("null"),
    }
}

/// The `GET /metrics` body: Prometheus exposition plus the constant
/// `qoco_build_info` gauge, so every scrape is attributable to a build.
fn metrics_body() -> String {
    let mut text = crate::metrics().snapshot().to_prometheus_text();
    let b = crate::build_info();
    text.push_str("# HELP qoco_build_info Build identity (always 1; labels carry the info).\n");
    text.push_str("# TYPE qoco_build_info gauge\n");
    text.push_str(&format!(
        "qoco_build_info{{version=\"{}\",git=\"{}\",host_parallelism=\"{}\"}} 1\n",
        b.version, b.git, b.host_parallelism
    ));
    text
}

/// The `GET /alerts` body: watch liveness, per-rule lifecycle state, and
/// the recent transition log.
fn alerts_body() -> String {
    let mut out = String::from("{\"watch\":");
    match crate::watch() {
        None => out.push_str("false,\"tick\":0,\"states\":[],\"transitions\":[]"),
        Some(w) => {
            out.push_str(&format!("true,\"tick\":{},\"states\":[", w.ticks()));
            for (i, s) in w.alert_states().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                push_json_str(&mut out, &s.name);
                out.push_str(",\"rule\":");
                push_json_str(&mut out, &s.rule);
                out.push_str(&format!(
                    ",\"severity\":\"{}\",\"state\":\"{}\",\"last_value\":",
                    s.severity, s.state
                ));
                push_json_f64(&mut out, s.last_value);
                out.push_str(&format!(
                    ",\"fired\":{},\"resolved\":{}}}",
                    s.fired, s.resolved
                ));
            }
            out.push_str("],\"transitions\":[");
            for (i, t) in w.recent_transitions().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"tick\":{},\"at_ns\":{},\"rule\":",
                    t.tick, t.at_ns
                ));
                push_json_str(&mut out, &t.rule);
                out.push_str(&format!(",\"to\":\"{}\",\"value\":", t.to));
                push_json_f64(&mut out, t.value);
                out.push('}');
            }
            out.push(']');
        }
    }
    out.push_str("}\n");
    out
}

/// The `GET /api/timeseries` body (status, JSON). `metric` is required;
/// `window` (rule-grammar duration, default 60s) bounds the rate and
/// min/max/last derivations.
fn timeseries_body(query: &str) -> (&'static str, String) {
    let mut metric = None;
    let mut window = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        match k {
            "metric" => metric = Some(v.to_string()),
            "window" => window = Some(v.to_string()),
            _ => {}
        }
    }
    let Some(metric) = metric.filter(|m| !m.is_empty()) else {
        return (
            "400 Bad Request",
            "{\"error\":\"missing `metric` query parameter\"}\n".to_string(),
        );
    };
    let window_ns = match window.as_deref().map(crate::alerts::parse_duration) {
        None => 60 * crate::LOGICAL_TICK_NS,
        Some(Ok(ns)) if ns > 0 => ns,
        Some(other) => {
            let mut out = String::from("{\"error\":");
            let msg = match other {
                Ok(_) => "window must be positive".to_string(),
                Err(e) => e,
            };
            push_json_str(&mut out, &msg);
            out.push_str("}\n");
            return ("400 Bad Request", out);
        }
    };
    let Some(w) = crate::watch() else {
        return (
            "503 Service Unavailable",
            "{\"error\":\"no watch is running (start qoco-cli with --watch-rules)\"}\n".to_string(),
        );
    };
    let samples = w.store().samples(&metric);
    if samples.is_empty() {
        let mut out = String::from("{\"error\":\"no samples for metric\",\"metric\":");
        push_json_str(&mut out, &metric);
        out.push_str(",\"known\":[");
        for (i, name) in w.store().names().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
        }
        out.push_str("]}\n");
        return ("404 Not Found", out);
    }
    let now_ns = samples.last().map(|s| s.at_ns).unwrap_or(0);
    let mut out = String::from("{\"metric\":");
    push_json_str(&mut out, &metric);
    out.push_str(&format!(
        ",\"window_ns\":{window_ns},\"now_ns\":{now_ns},\"rate_per_s\":"
    ));
    push_json_f64(&mut out, w.store().rate(&metric, window_ns, now_ns));
    out.push_str(",\"stats\":");
    match w.store().window_stats(&metric, window_ns, now_ns) {
        None => out.push_str("null"),
        Some(st) => {
            out.push_str("{\"min\":");
            push_json_f64(&mut out, Some(st.min));
            out.push_str(",\"max\":");
            push_json_f64(&mut out, Some(st.max));
            out.push_str(",\"last\":");
            push_json_f64(&mut out, Some(st.last));
            out.push_str(&format!(",\"count\":{}}}", st.count));
        }
    }
    out.push_str(",\"samples\":[");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"tick\":{},\"at_ns\":{},\"value\":",
            s.tick, s.at_ns
        ));
        push_json_f64(&mut out, Some(s.value));
        out.push('}');
    }
    out.push_str("]}\n");
    ("200 OK", out)
}

/// How reading one request ended.
enum ReadOutcome {
    /// A complete request (head fully read; body as advertised).
    Request(HttpRequest),
    /// The client earned an early error response.
    Reject(Box<RejectInfo>),
}

/// Everything known about a rejected request: the error response, the
/// labeled reason feeding `serve.rejected.<reason>`, and whatever request
/// metadata had been parsed before the reject (`"-"` / `None` when the
/// reject fired before the head was readable).
struct RejectInfo {
    response: HttpResponse,
    reason: &'static str,
    method: String,
    route: String,
    request_id: Option<String>,
}

impl RejectInfo {
    /// A reject that fired before any of the head could be parsed.
    fn early(response: HttpResponse, reason: &'static str) -> ReadOutcome {
        ReadOutcome::Reject(Box::new(RejectInfo {
            response,
            reason,
            method: "-".to_string(),
            route: "-".to_string(),
            request_id: None,
        }))
    }
}

/// The labeled sibling of the legacy `serve.rejected` total. Static names,
/// because the reason vocabulary is closed: `cap` (connection/session
/// caps), `uri` (request-line and head bounds), `deadline` (slow reads),
/// `body` (body cap).
fn reject_reason_counter(reason: &str) -> &'static str {
    match reason {
        "cap" => "serve.rejected.cap",
        "uri" => "serve.rejected.uri",
        "deadline" => "serve.rejected.deadline",
        "body" => "serve.rejected.body",
        _ => "serve.rejected.other",
    }
}

/// Mint the next `qr-N` id from the per-listener counter.
fn next_request_id(ids: &AtomicU64) -> String {
    format!("qr-{}", ids.fetch_add(1, Ordering::Relaxed))
}

/// An inbound request id, made safe to echo into a response header and an
/// access-log line: printable ASCII only (no CR/LF header injection),
/// bounded length. `None` when nothing survives.
fn sanitize_request_id(raw: &str) -> Option<String> {
    let cleaned: String = raw
        .trim()
        .chars()
        .filter(|c| c.is_ascii_graphic())
        .take(128)
        .collect();
    (!cleaned.is_empty()).then_some(cleaned)
}

/// The trace-id component of a W3C `traceparent` header
/// (`00-<32 hex>-<16 hex>-<2 hex>`), if well-formed.
fn traceparent_trace_id(raw: &str) -> Option<String> {
    raw.trim()
        .split('-')
        .nth(1)
        .filter(|t| t.len() == 32 && t.chars().all(|c| c.is_ascii_hexdigit()))
        .map(str::to_string)
}

/// Read one request under the wall-clock deadline; see the module docs.
fn read_request(stream: &mut TcpStream, options: &ServerOptions) -> std::io::Result<ReadOutcome> {
    let deadline = Instant::now() + options.read_deadline;
    // Per-read timeout well under the deadline, so the deadline check
    // runs even against a silent peer.
    let slice = Duration::from_millis(250).min(options.read_deadline);
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_REQUEST_LINE && !buf.contains(&b'\n') {
            return Ok(RejectInfo::early(
                HttpResponse::text("414 URI Too Long", "request line too long\n".to_string()),
                "uri",
            ));
        }
        if buf.len() >= 64 * 1024 {
            return Ok(RejectInfo::early(
                HttpResponse::text(
                    "431 Request Header Fields Too Large",
                    "request head too large\n".to_string(),
                ),
                "uri",
            ));
        }
        if Instant::now() >= deadline {
            return Ok(RejectInfo::early(
                HttpResponse::text(
                    "408 Request Timeout",
                    "request head deadline exceeded\n".to_string(),
                ),
                "deadline",
            ));
        }
        stream.set_read_timeout(Some(slice))?;
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Peer closed mid-head: nothing to answer.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Loop: the deadline check above decides when to give up.
            }
            Err(e) => return Err(e),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut request_line = head.lines().next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("").to_string();
    let path = request_line.next().unwrap_or("").to_string();
    let (route, query) = path.split_once('?').unwrap_or((path.as_str(), ""));
    let mut content_length = 0usize;
    let mut inbound_id: Option<String> = None;
    let mut trace_id: Option<String> = None;
    for (k, v) in head.lines().skip(1).filter_map(|l| l.split_once(':')) {
        if k.eq_ignore_ascii_case("content-length") {
            content_length = v.trim().parse().unwrap_or(0);
        } else if k.eq_ignore_ascii_case("x-request-id") {
            inbound_id = sanitize_request_id(v);
        } else if k.eq_ignore_ascii_case("traceparent") {
            trace_id = traceparent_trace_id(v);
        }
    }
    // An explicit X-Request-Id beats the traceparent's trace id.
    let request_id = inbound_id.or(trace_id);
    if content_length > options.max_body_bytes {
        return Ok(ReadOutcome::Reject(Box::new(RejectInfo {
            response: HttpResponse::text(
                "413 Content Too Large",
                format!(
                    "request body of {content_length} bytes exceeds the {} byte cap\n",
                    options.max_body_bytes
                ),
            ),
            reason: "body",
            method,
            route: route.to_string(),
            request_id,
        })));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        if Instant::now() >= deadline {
            return Ok(ReadOutcome::Reject(Box::new(RejectInfo {
                response: HttpResponse::text(
                    "408 Request Timeout",
                    "request body deadline exceeded\n".to_string(),
                ),
                reason: "deadline",
                method: method.clone(),
                route: route.to_string(),
                request_id: request_id.clone(),
            })));
        }
        stream.set_read_timeout(Some(slice))?;
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);
    Ok(ReadOutcome::Request(HttpRequest {
        method,
        route: route.to_string(),
        query: query.to_string(),
        body,
        // Empty means "none inbound": serve_one mints a qr-N before
        // anything else sees the request.
        request_id: request_id.unwrap_or_default(),
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Pull whatever request bytes are still buffered before closing, so the
/// close is a clean FIN instead of an RST that could destroy the error
/// response in flight to the client. One bounded read — not a loop — so a
/// hostile streamer cannot turn the courtesy into a stall.
fn drain_unread(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    let _ = stream.read(&mut sink);
}

fn write_response(
    stream: &mut TcpStream,
    r: &HttpResponse,
    request_id: Option<&str>,
) -> std::io::Result<()> {
    let mut response = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        r.status,
        r.content_type,
        r.body.len(),
    );
    if let Some(rid) = request_id {
        response.push_str("X-Request-Id: ");
        response.push_str(rid);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(&r.body);
    stream.write_all(response.as_bytes())
}

/// Numeric status code of a status line tail like `"200 OK"`.
fn status_code(status: &str) -> u16 {
    status
        .split_whitespace()
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The `{id}` of a `/sessions/{id}/…` route, the access log's fallback
/// when the handler never tagged a session explicitly.
fn session_from_route(route: &str) -> Option<String> {
    let tail = route.strip_prefix("/sessions/")?;
    let id = tail.split('/').next().unwrap_or("");
    (!id.is_empty()).then(|| id.to_string())
}

/// The stable per-route label used in metric names: bounded vocabulary by
/// construction, so interning the composed names cannot leak unboundedly.
fn route_metric_key(method: &str, route: &str) -> &'static str {
    match (method, route) {
        (_, "/metrics") => "metrics",
        (_, "/health") => "health",
        (_, "/alerts") => "alerts",
        (_, "/dashboard") => "dashboard",
        (_, "/api/timeseries") => "timeseries",
        (_, "/api/requests") => "requests",
        ("POST", "/sessions") => "sessions_create",
        ("GET", "/sessions") => "sessions_list",
        _ => match route.rsplit_once('/').map(|(_, leaf)| leaf) {
            Some("pending") if route.starts_with("/sessions/") => "pending",
            Some("answers") if route.starts_with("/sessions/") => "answers",
            Some("report") if route.starts_with("/sessions/") => "report",
            _ => "other",
        },
    }
}

/// The status class label (`2xx`, `3xx`, `4xx`, `5xx`, `other`).
fn status_class(status: &str) -> &'static str {
    match status_code(status) {
        200..=299 => "2xx",
        300..=399 => "3xx",
        400..=499 => "4xx",
        500..=599 => "5xx",
        _ => "other",
    }
}

/// Record the per-route RED metrics for one finished request. All the
/// name-building work is gated so the disabled path stays allocation-free.
fn record_red_metrics(method: &str, route: &str, status: &'static str, latency_ns: u64) {
    if !crate::enabled() {
        return;
    }
    let key = route_metric_key(method, route);
    let class = status_class(status);
    crate::counter_add("serve.requests", 1);
    crate::counter_add(
        crate::intern_metric_name(&format!("serve.requests.{key}.{class}")),
        1,
    );
    crate::histogram_record(
        crate::intern_metric_name(&format!("serve.latency_ns.{key}")),
        latency_ns,
    );
}

/// Queue one access-log line, if a log is configured.
fn log_access(
    options: &ServerOptions,
    received: Instant,
    request_id: &str,
    method: &str,
    route: &str,
    response: &HttpResponse,
    session: Option<String>,
) {
    let Some(log) = options.access_log.as_ref() else {
        return;
    };
    log.record(&crate::AccessLogEntry {
        at_ns: crate::now_ns(),
        request_id: request_id.to_string(),
        method: method.to_string(),
        route: route.to_string(),
        status: status_code(response.status),
        bytes: response.body.len() as u64,
        latency_ns: received.elapsed().as_nanos() as u64,
        session,
    });
}

/// The `GET /api/requests` body: every request currently in flight, with
/// its age against the session clock.
fn requests_body() -> String {
    let now = crate::now_ns();
    let mut out = String::from("{\"requests\":[");
    for (i, r) in crate::inflight_requests().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"request\":");
        push_json_str(&mut out, &r.id);
        out.push_str(",\"method\":");
        push_json_str(&mut out, &r.method);
        out.push_str(",\"route\":");
        push_json_str(&mut out, &r.route);
        out.push_str(",\"session\":");
        match &r.session {
            Some(s) => push_json_str(&mut out, s),
            None => out.push_str("null"),
        }
        out.push_str(",\"phase\":");
        push_json_str(&mut out, r.phase);
        out.push_str(&format!(
            ",\"age_ns\":{}}}",
            now.saturating_sub(r.started_ns)
        ));
    }
    out.push_str("]}\n");
    out
}

/// Handle one connection: read the request, answer, close. Every path —
/// reject or dispatch — counts its RED metrics, echoes the request id,
/// and leaves an access-log line.
fn serve_one(
    mut stream: TcpStream,
    started: Instant,
    options: &ServerOptions,
    ids: &AtomicU64,
) -> std::io::Result<()> {
    let received = Instant::now();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut req = match read_request(&mut stream, options)? {
        ReadOutcome::Request(req) => req,
        ReadOutcome::Reject(info) => {
            crate::counter_add("serve.rejected", 1);
            crate::counter_add(reject_reason_counter(info.reason), 1);
            let rid = info
                .request_id
                .clone()
                .unwrap_or_else(|| next_request_id(ids));
            record_red_metrics(
                &info.method,
                &info.route,
                info.response.status,
                received.elapsed().as_nanos() as u64,
            );
            let out = write_response(&mut stream, &info.response, Some(&rid));
            drain_unread(&mut stream);
            log_access(
                options,
                received,
                &rid,
                &info.method,
                &info.route,
                &info.response,
                None,
            );
            return out;
        }
    };
    if req.request_id.is_empty() {
        req.request_id = next_request_id(ids);
    }
    // Mark the connection thread: everything the handler does underneath —
    // the machine step, the journal append, the decision dispatch — can
    // now tag its records with this request id.
    let token = crate::begin_request(&req.request_id, &req.method, &req.route);
    let mut span = crate::span("serve.request")
        .field("request", &req.request_id)
        .field("method", &req.method)
        .field("route", &req.route);
    crate::set_request_phase("handler");

    const PROM_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";
    const HTML: &str = "text/html; charset=utf-8";
    let response = match (req.method.as_str(), req.route.as_str()) {
        ("GET", "/metrics") => HttpResponse {
            status: "200 OK",
            content_type: PROM_TEXT,
            body: metrics_body(),
        },
        ("GET", "/health") => HttpResponse::json("200 OK", health_body(started)),
        ("GET", "/alerts") => HttpResponse::json("200 OK", alerts_body()),
        ("GET", "/dashboard") => HttpResponse {
            status: "200 OK",
            content_type: HTML,
            body: crate::dashboard_html(),
        },
        ("GET", "/api/timeseries") => {
            let (status, body) = timeseries_body(&req.query);
            HttpResponse::json(status, body)
        }
        ("GET", "/api/requests") => HttpResponse::json("200 OK", requests_body()),
        _ => match options.handler.as_ref().and_then(|h| h.handle(&req)) {
            Some(resp) => resp,
            None if req.method == "GET" => {
                let mut routes = String::from(
                    "GET /metrics, GET /health, GET /alerts, GET /dashboard, \
                     GET /api/timeseries?metric=<name>[&window=<dur>], GET /api/requests",
                );
                if let Some(h) = options.handler.as_ref() {
                    for summary in h.route_summaries() {
                        routes.push_str(", ");
                        routes.push_str(&summary);
                    }
                }
                HttpResponse::text(
                    "404 Not Found",
                    format!("no such route: {}\nroutes: {routes}\n", req.route),
                )
            }
            None => HttpResponse::text(
                "405 Method Not Allowed",
                "method not allowed on this route\n".to_string(),
            ),
        },
    };
    crate::set_request_phase("write");
    span.record("status", response.status);
    record_red_metrics(
        &req.method,
        &req.route,
        response.status,
        received.elapsed().as_nanos() as u64,
    );
    let out = write_response(&mut stream, &response, Some(&req.request_id));
    let session = crate::end_request(token)
        .and_then(|r| r.session)
        .or_else(|| session_from_route(&req.route));
    span.finish();
    log_access(
        options,
        received,
        &req.request_id,
        &req.method,
        &req.route,
        &response,
        session,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryCollector;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: qoco\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn http_post(addr: SocketAddr, path: &str, body: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
        write!(
            stream,
            "POST {path} HTTP/1.1\r\nHost: qoco\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn scrapes_live_global_metrics() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        crate::counter_add("server.test_counter", 7);
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let response = http_get(server.local_addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("qoco_server_test_counter_total 7\n"));
        // live, not end-of-session: bump again and re-scrape
        crate::counter_add("server.test_counter", 3);
        let response = http_get(server.local_addr(), "/metrics");
        assert!(response.contains("qoco_server_test_counter_total 10\n"));
        drop(server);
        drop(session);
    }

    #[test]
    fn unknown_paths_get_404_naming_the_real_routes() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let response = http_get(server.local_addr(), "/other");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        assert!(
            response.contains("routes: GET /metrics, GET /health"),
            "404 must enumerate the routes that exist: {response}"
        );
        assert!(response.contains("no such route: /other"), "{response}");
    }

    #[test]
    fn health_reports_uptime_session_gauges_and_sample_totals() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        crate::gauge_add("session.questions_asked", 5.0);
        crate::gauge_set("session.witnesses_open", 2.0);
        crate::gauge_set("sessions.active", 3.0);
        crate::gauge_set("sessions.parked", 2.0);
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let response = http_get(server.local_addr(), "/health");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: application/json"));
        assert!(response.contains("\"status\":\"ok\""));
        assert!(response.contains("\"session_active\":true"));
        assert!(response.contains("\"questions_asked\":5"));
        assert!(response.contains("\"witnesses_open\":2"));
        assert!(response.contains("\"sessions\":{\"active\":3,\"parked\":2}"));
        assert!(response.contains("\"uptime_s\":"));
        assert!(response.contains("\"profile\":{\"samples\":"));
        drop(server);
        drop(session);
    }

    #[test]
    fn every_route_carries_its_content_type_and_connection_close() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        for (path, content_type) in [
            (
                "/metrics",
                "Content-Type: text/plain; version=0.0.4; charset=utf-8",
            ),
            ("/health", "Content-Type: application/json"),
            ("/alerts", "Content-Type: application/json"),
            ("/api/timeseries?metric=x", "Content-Type: application/json"),
            ("/api/requests", "Content-Type: application/json"),
            ("/dashboard", "Content-Type: text/html; charset=utf-8"),
            // error routes answer with headers too: the 404 route table…
            ("/nope", "Content-Type: text/plain; charset=utf-8"),
        ] {
            let response = http_get(addr, path);
            assert!(response.contains(content_type), "{path}: {response}");
            assert!(response.contains("Connection: close"), "{path}: {response}");
            assert!(response.contains("X-Request-Id: "), "{path}: {response}");
        }
        // …the 405 for an unclaimed method…
        let response = http_post(addr, "/metrics", "x");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        assert!(
            response.contains("Content-Type: text/plain; charset=utf-8"),
            "{response}"
        );
        assert!(response.contains("Connection: close"), "{response}");
        assert!(response.contains("X-Request-Id: "), "{response}");
        // …and a pre-dispatch reject (414).
        let mut hostile = TcpStream::connect(addr).unwrap();
        hostile
            .write_all(&vec![b'A'; 2 * MAX_REQUEST_LINE])
            .unwrap();
        let mut response = String::new();
        let _ = hostile.read_to_string(&mut response);
        assert!(response.starts_with("HTTP/1.1 414"), "{response}");
        assert!(
            response.contains("Content-Type: text/plain; charset=utf-8"),
            "{response}"
        );
        assert!(response.contains("Connection: close"), "{response}");
        assert!(response.contains("X-Request-Id: "), "{response}");
    }

    #[test]
    fn inbound_request_ids_pass_through_and_absent_ones_are_generated() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        // passthrough: an explicit X-Request-Id is echoed verbatim
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /health HTTP/1.1\r\nHost: qoco\r\nX-Request-Id: trace-me-42\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("X-Request-Id: trace-me-42"), "{response}");
        // traceparent fallback: the trace-id component is honored
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /health HTTP/1.1\r\nHost: qoco\r\n\
             traceparent: 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.contains("X-Request-Id: 0af7651916cd43dd8448eb211c80319c"),
            "{response}"
        );
        // an X-Request-Id beats a traceparent when both are present
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /health HTTP/1.1\r\nHost: qoco\r\nX-Request-Id: winner\r\n\
             traceparent: 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("X-Request-Id: winner"), "{response}");
        // a hostile id is sanitized, never echoed with CR/LF intact
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /health HTTP/1.1\r\nHost: qoco\r\nX-Request-Id: a\tb evil\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("X-Request-Id: abevil"), "{response}");
        // generation: no inbound id → deterministic qr-N from the listener
        let response = http_get(addr, "/health");
        assert!(response.contains("X-Request-Id: qr-"), "{response}");
    }

    #[test]
    fn generated_ids_count_up_from_the_listener_seed() {
        let server = MetricsServer::start_with(
            "127.0.0.1:0",
            ServerOptions {
                request_id_seed: 70,
                ..ServerOptions::default()
            },
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let first = http_get(addr, "/health");
        let second = http_get(addr, "/health");
        assert!(first.contains("X-Request-Id: qr-70"), "{first}");
        assert!(second.contains("X-Request-Id: qr-71"), "{second}");
    }

    #[test]
    fn rejects_are_counted_by_reason_and_red_metrics_cover_routes() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector.clone());
        let server = MetricsServer::start_with(
            "127.0.0.1:0",
            ServerOptions {
                max_body_bytes: 64,
                ..ServerOptions::default()
            },
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        // body cap → serve.rejected{reason=body} and the legacy total
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /sessions HTTP/1.1\r\nHost: qoco\r\nContent-Length: 10000000\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        // request-line bound → serve.rejected{reason=uri}
        let mut hostile = TcpStream::connect(addr).unwrap();
        hostile
            .write_all(&vec![b'A'; 2 * MAX_REQUEST_LINE])
            .unwrap();
        let mut out = String::new();
        let _ = hostile.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 414"), "{out}");
        // a served route records its RED counter and latency histogram
        let response = http_get(addr, "/health");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        drop(server);
        let snap = crate::metrics().snapshot();
        drop(session);
        assert_eq!(snap.counter("serve.rejected"), 2, "legacy total");
        assert_eq!(snap.counter("serve.rejected.body"), 1);
        assert_eq!(snap.counter("serve.rejected.uri"), 1);
        assert_eq!(snap.counter("serve.requests.health.2xx"), 1);
        assert!(snap.histograms.contains_key("serve.latency_ns.health"));
        assert!(
            snap.counter("serve.requests") >= 1,
            "route-blind total for cheap dashboards"
        );
    }

    #[test]
    fn api_requests_lists_the_in_flight_inspector() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /api/requests HTTP/1.1\r\nHost: qoco\r\nX-Request-Id: watch-me\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        // the inspector request observes at least itself
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("\"request\":\"watch-me\""), "{response}");
        assert!(
            response.contains("\"route\":\"/api/requests\""),
            "{response}"
        );
        assert!(response.contains("\"phase\":\"handler\""), "{response}");
        assert!(response.contains("\"age_ns\":"), "{response}");
        drop(server);
        // nothing lingers once served
        assert!(crate::inflight_requests().is_empty());
        drop(session);
    }

    #[test]
    fn metrics_exposition_includes_build_info() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let response = http_get(server.local_addr(), "/metrics");
        assert!(
            response.contains("# TYPE qoco_build_info gauge"),
            "{response}"
        );
        let b = crate::build_info();
        assert!(
            response.contains(&format!(
                "qoco_build_info{{version=\"{}\",git=\"{}\",host_parallelism=\"{}\"}} 1",
                b.version, b.git, b.host_parallelism
            )),
            "{response}"
        );
    }

    #[test]
    fn watch_routes_serve_alerts_timeseries_and_dashboard() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        // without a watch: /alerts degrades gracefully, /api/timeseries 503s
        let response = http_get(addr, "/alerts");
        assert!(response.contains("\"watch\":false"), "{response}");
        let response = http_get(addr, "/api/timeseries?metric=crowd.faults");
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        // missing metric param is the caller's error, watch or not
        let response = http_get(addr, "/api/timeseries");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        let rules = crate::parse_rules("rule faults: rate(crowd.faults, 5s) > 1/s => warn")
            .expect("valid rule");
        let guard = crate::start_watch(rules, crate::WatchTick::Logical);
        for _ in 0..3 {
            crate::counter_add("crowd.faults", 4);
            crate::watch_tick();
        }
        let response = http_get(addr, "/alerts");
        assert!(response.contains("\"watch\":true"), "{response}");
        assert!(response.contains("\"name\":\"faults\""), "{response}");
        assert!(response.contains("\"state\":\"firing\""), "{response}");
        let response = http_get(addr, "/api/timeseries?metric=crowd.faults&window=5s");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(
            response.contains("\"metric\":\"crowd.faults\""),
            "{response}"
        );
        assert!(response.contains("\"samples\":[{\"tick\":1"), "{response}");
        assert!(response.contains("\"rate_per_s\":"), "{response}");
        let response = http_get(addr, "/api/timeseries?metric=unknown.metric");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        assert!(response.contains("\"known\":["), "{response}");
        let response = http_get(addr, "/api/timeseries?metric=crowd.faults&window=bogus");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        let response = http_get(addr, "/dashboard");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(
            response.contains("<svg"),
            "live dashboard draws sparklines: {response}"
        );
        drop(guard);
        drop(server);
        drop(session);
    }

    #[test]
    fn slow_or_malformed_clients_cannot_wedge_the_endpoint() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        // a client streaming an endless request line is cut off with 414
        // instead of being buffered until the head limit
        let mut hostile = TcpStream::connect(addr).unwrap();
        hostile
            .write_all(&vec![b'A'; 2 * MAX_REQUEST_LINE])
            .unwrap();
        let mut response = String::new();
        let _ = hostile.read_to_string(&mut response);
        assert!(response.starts_with("HTTP/1.1 414"), "{response}");
        // a client that connects and then goes silent mid-head is dropped
        // by the read deadline rather than parking the server forever…
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(b"GET /metr").unwrap();
        // …so a well-formed scrape queued behind it is still served
        let response = http_get(addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        drop(stalled);
    }

    #[test]
    fn slow_loris_is_cut_off_by_the_wall_clock_deadline() {
        // drip bytes fast enough that no single read ever times out, but
        // never finish the head: the wall-clock deadline must fire
        let server = MetricsServer::start_with(
            "127.0.0.1:0",
            ServerOptions {
                read_deadline: Duration::from_millis(600),
                ..ServerOptions::default()
            },
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let mut loris = TcpStream::connect(addr).unwrap();
        let started = Instant::now();
        loris.write_all(b"GET /metrics HTTP/1.1\r\n").unwrap();
        // drip header bytes faster than any per-read timeout, spanning
        // most of the deadline, so only the wall clock can cut us off
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(150));
            loris.write_all(b"X").unwrap();
        }
        let mut deadline_response = String::new();
        loris.read_to_string(&mut deadline_response).unwrap();
        assert!(
            deadline_response.starts_with("HTTP/1.1 408"),
            "{deadline_response}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline must fire promptly, took {:?}",
            started.elapsed()
        );
        // the endpoint is still healthy afterwards
        let response = http_get(addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    }

    #[test]
    fn oversized_bodies_get_413_before_being_read() {
        let server = MetricsServer::start_with(
            "127.0.0.1:0",
            ServerOptions {
                max_body_bytes: 64,
                ..ServerOptions::default()
            },
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        // advertise a huge body; never send it — the cap must trip on the
        // Content-Length header alone
        write!(
            stream,
            "POST /sessions HTTP/1.1\r\nHost: qoco\r\nContent-Length: 10000000\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        // a small body still reaches dispatch (404: no handler installed)
        let response = http_post(addr, "/sessions", "{}");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    #[test]
    fn connection_cap_sheds_with_429() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        let before = crate::metrics()
            .snapshot()
            .counters
            .get("serve.rejected")
            .copied()
            .unwrap_or(0);
        let server = MetricsServer::start_with(
            "127.0.0.1:0",
            ServerOptions {
                max_connections: 1,
                read_deadline: Duration::from_secs(2),
                ..ServerOptions::default()
            },
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        // occupy the only slot with a connection that never completes
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(b"GET /he").unwrap();
        // give the accept loop a moment to hand the slot over
        std::thread::sleep(Duration::from_millis(100));
        let response = http_get(addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        let after = crate::metrics()
            .snapshot()
            .counters
            .get("serve.rejected")
            .copied()
            .unwrap_or(0);
        assert!(after > before, "serve.rejected must count the shed");
        drop(stalled);
        drop(server);
        drop(session);
    }

    #[test]
    fn custom_route_handlers_extend_the_server() {
        struct Hello;
        impl RouteHandler for Hello {
            fn handle(&self, req: &HttpRequest) -> Option<HttpResponse> {
                match (req.method.as_str(), req.route.as_str()) {
                    ("POST", "/hello") => Some(HttpResponse::json(
                        "200 OK",
                        format!(
                            "{{\"echo\":{}}}\n",
                            String::from_utf8_lossy(&req.body).trim()
                        ),
                    )),
                    _ => None,
                }
            }
            fn route_summaries(&self) -> Vec<String> {
                vec!["POST /hello".to_string()]
            }
        }
        let server = MetricsServer::start_with(
            "127.0.0.1:0",
            ServerOptions {
                handler: Some(Arc::new(Hello)),
                ..ServerOptions::default()
            },
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let response = http_post(addr, "/hello", "42");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("{\"echo\":42}"), "{response}");
        // built-ins still win and the 404 lists the handler's routes
        let response = http_get(addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        let response = http_get(addr, "/nope");
        assert!(response.contains("POST /hello"), "{response}");
        // a non-GET the handler does not claim is still a 405
        let response = http_post(addr, "/metrics", "x");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    #[test]
    fn shutdown_is_clean_and_port_is_released() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        drop(server);
        // the listener is gone: either refused outright or accepted by the
        // OS backlog and immediately closed without a response
        let mut ok = false;
        for _ in 0..10 {
            match TcpStream::connect(addr) {
                Err(_) => {
                    ok = true;
                    break;
                }
                Ok(mut stream) => {
                    let _ = write!(stream, "GET /metrics HTTP/1.1\r\n\r\n");
                    let mut out = String::new();
                    if stream.read_to_string(&mut out).is_err() || out.is_empty() {
                        ok = true;
                        break;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(ok, "listener still serving after drop");
    }
}
